//! Criterion microbenchmarks of the mechanisms on CORD's critical path:
//! clock comparisons (§2.7.2 notes these must be "simple dedicated
//! circuitry" — here we check they are nanosecond-scale in software),
//! line-history updates, and full detector access handling.

use cord_clocks::policy::ClockPolicy;
use cord_clocks::scalar::ScalarTime;
use cord_clocks::vector::VectorClock;
use cord_clocks::window16;
use cord_core::history::LineHistory;
use cord_core::{CordConfig, CordDetector};
use cord_sim::observer::{AccessEvent, AccessKind, AccessPath, CoreId, MemoryObserver};
use cord_trace::types::{Addr, ThreadId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_clock_compares(c: &mut Criterion) {
    let mut g = c.benchmark_group("clocks");
    let policy = ClockPolicy::cord();
    g.bench_function("scalar_race_test", |b| {
        b.iter(|| {
            let clk = black_box(ScalarTime::new(12345));
            let ts = black_box(ScalarTime::new(12340));
            black_box(clk.is_race_with(ts) | policy.is_synchronized(clk, ts))
        })
    });
    g.bench_function("window16_race_test", |b| {
        b.iter(|| {
            let clk = black_box(0xFFF0u16);
            let ts = black_box(0x0010u16);
            black_box(
                window16::is_race_with(clk, ts) | window16::is_synchronized_after(clk, ts, 16),
            )
        })
    });
    let a = VectorClock::from_components(vec![5, 9, 2, 7]);
    let b4 = VectorClock::from_components(vec![5, 10, 2, 7]);
    g.bench_function("vector_le_4", |b| {
        b.iter(|| black_box(black_box(&a).le(black_box(&b4))))
    });
    let a16 = VectorClock::from_components((0..16).collect());
    let b16 = VectorClock::from_components((1..17).collect());
    g.bench_function("vector_le_16", |b| {
        b.iter(|| black_box(black_box(&a16).le(black_box(&b16))))
    });
    g.finish();
}

fn bench_line_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_history");
    g.bench_function("push_and_set", |b| {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            h.push_stamp(ScalarTime::new(t), 2);
            h.newest_mut()
                .unwrap()
                .set((t % 16) as usize, t.is_multiple_of(2));
            black_box(h.any_conflict((t % 16) as usize, true))
        })
    });
    g.finish();
}

/// The walker's stale-entry partition must stay linear in the history
/// size: the timings at 1k and 10k entries should scale ~10x, not
/// ~100x (the old remove-and-reinsert rebuild was quadratic — each
/// surviving entry was re-pushed at the front of the vector).
fn bench_walker_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("walker_partition");
    for &n in &[1_000u64, 10_000] {
        // Newest-first, alternating stale/live stamps so the partition
        // moves half the entries.
        let mut proto: LineHistory<ScalarTime> = LineHistory::new();
        for t in 1..=n {
            proto.push_stamp(
                ScalarTime::new(if t % 2 == 0 { t } else { t / 2 }),
                n as usize,
            );
        }
        let bound = n / 2;
        g.bench_function(format!("take_entries_where_{n}"), |b| {
            b.iter(|| {
                // The clone is O(n) setup noise shared by both sizes;
                // it cannot mask a quadratic partition.
                let mut h = proto.clone();
                black_box(h.take_entries_where(|e| e.stamp.ticks() < bound))
            })
        });
    }
    g.finish();
}

/// Stage-by-stage decomposition of the per-access pipeline, in the
/// order the detector executes them: the L1/L2 tag probe, the shadow
/// history lookup (dense `LineTable` indexing), the timestamp
/// synchronization check, and the per-word race check. Comparing these
/// against `detector/cord_on_access_l1_hit` shows where the end-to-end
/// budget goes.
fn bench_pipeline_stages(c: &mut Criterion) {
    use cord_core::LineTable;
    use cord_sim::cache::{Cache, Mesi};
    use cord_sim::config::CacheGeometry;
    use cord_trace::types::LineAddr;

    let mut g = c.benchmark_group("stages");

    // Stage 1: cache tag lookup. Warm an 8 KiB 4-way L1 and probe a
    // resident line (hit) and an absent one (miss).
    let mut l1 = Cache::new(CacheGeometry::new(8 * 1024, 4));
    for i in 0..64u64 {
        l1.insert(LineAddr(i), Mesi::Shared);
    }
    g.bench_function("cache_lookup_hit", |b| {
        b.iter(|| black_box(l1.probe(black_box(LineAddr(17)))))
    });
    g.bench_function("cache_lookup_miss", |b| {
        b.iter(|| black_box(l1.probe(black_box(LineAddr(9999)))))
    });

    // Stage 2: shadow history lookup — the dense per-line table probe
    // that replaced HashMap addressing (one state byte + one value
    // index per line).
    let mut tbl: LineTable<LineHistory<ScalarTime>> = LineTable::new();
    for i in 0..64u64 {
        tbl.entry_or_default(LineAddr(i))
            .push_stamp(ScalarTime::new(100 + i), 2);
    }
    g.bench_function("shadow_history_lookup", |b| {
        b.iter(|| black_box(tbl.get(black_box(LineAddr(17)))))
    });

    // Stage 3: timestamp check — check filter plus the scalar
    // synchronized-order test against the newest stamp.
    let policy = ClockPolicy::cord();
    let mut h: LineHistory<ScalarTime> = LineHistory::new();
    h.push_stamp(ScalarTime::new(100), 2);
    h.push_stamp(ScalarTime::new(140), 2);
    h.newest_mut().expect("entry").set(3, true);
    g.bench_function("timestamp_check", |b| {
        b.iter(|| {
            let h = black_box(&h);
            let clk = black_box(ScalarTime::new(150));
            let newest = h.newest().expect("entry");
            black_box(h.filter_allows(false) && policy.is_synchronized(clk, newest.stamp))
        })
    });

    // Stage 4: race check — the per-word conflict-bit scan over both
    // history entries plus the unsynchronized-order test.
    g.bench_function("race_check", |b| {
        b.iter(|| {
            let h = black_box(&h);
            let clk = black_box(ScalarTime::new(150));
            let newest = h.newest().expect("entry");
            black_box(h.any_conflict(black_box(3), false) && clk.is_race_with(newest.stamp))
        })
    });
    g.finish();
}

fn bench_detector_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector");
    g.bench_function("cord_on_access_l1_hit", |b| {
        let mut det = CordDetector::new(CordConfig::paper(), 4, 4);
        // Warm the line so subsequent accesses take the bit-hit path.
        let warm = AccessEvent {
            core: CoreId(0),
            thread: ThreadId(0),
            addr: Addr::new(0x40),
            kind: AccessKind::DataRead,
            path: AccessPath::FillFromMemory,
            instr_index: 0,
            cycle: 0,
        };
        det.on_access(&warm);
        let hit = AccessEvent {
            path: AccessPath::L1Hit,
            instr_index: 1,
            ..warm
        };
        b.iter(|| black_box(det.on_access(black_box(&hit))))
    });
    g.bench_function("cord_on_access_miss", |b| {
        let mut det = CordDetector::new(CordConfig::paper(), 4, 4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ev = AccessEvent {
                core: CoreId((i % 4) as u8),
                thread: ThreadId((i % 4) as u16),
                addr: Addr::new((i % 512) * 64),
                kind: AccessKind::DataWrite,
                path: AccessPath::FillFromMemory,
                instr_index: i,
                cycle: i,
            };
            black_box(det.on_access(black_box(&ev)))
        })
    });
    g.finish();
}

/// End-to-end run benchmark: a full `Machine::run` of the fft kernel —
/// the unit of work the (app × run × configuration) injection matrix
/// repeats thousands of times per figure. `sweep_cell` measures the
/// same work through `SweepRunner::run_detector`, i.e. including the
/// sweep layer's detector construction and dispatch.
fn bench_engine_end_to_end(c: &mut Criterion) {
    use cord_bench::sweep::ScaleClassOpt;
    use cord_bench::{DetectorConfig, SweepOptions, SweepRunner};
    use cord_sim::config::MachineConfig;
    use cord_sim::engine::{InjectionPlan, Machine};
    use cord_workloads::{kernel, AppKind, ScaleClass};

    let w = kernel(AppKind::Fft, ScaleClass::Tiny, 4, 2006);
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("run_cord_d16_fft_tiny", |b| {
        b.iter(|| {
            let det = CordDetector::new(CordConfig::paper(), 4, 4);
            let m = Machine::new(
                MachineConfig::paper_4core(),
                &w,
                det,
                2006,
                InjectionPlan::none(),
            );
            black_box(m.run().expect("clean run completes"))
        })
    });
    let opts = SweepOptions {
        scale: ScaleClassOpt::Tiny,
        ..SweepOptions::default()
    };
    let runner = SweepRunner::new(opts);
    g.bench_function("sweep_cell_fft_tiny", |b| {
        b.iter(|| {
            for cfg in [
                DetectorConfig::Cord { d: 16 },
                DetectorConfig::Ideal,
                DetectorConfig::VcL2Cache,
            ] {
                black_box(
                    runner
                        .run_detector(cfg, &w, 2006, InjectionPlan::none())
                        .expect("clean run completes"),
                );
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_clock_compares,
    bench_line_history,
    bench_walker_partition,
    bench_pipeline_stages,
    bench_detector_access,
    bench_engine_end_to_end
);
criterion_main!(benches);
