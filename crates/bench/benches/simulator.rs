//! Criterion benchmarks of whole simulated runs: the baseline machine,
//! the machine with CORD attached (the Figure 11 comparison in
//! miniature), and the Ideal oracle.

use cord_core::{CordConfig, CordDetector};
use cord_detectors::IdealDetector;
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_sim::observer::NullObserver;
use cord_workloads::{kernel, AppKind, ScaleClass};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_simulated_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_runs");
    g.sample_size(20);
    for app in [AppKind::Cholesky, AppKind::Fft, AppKind::Barnes] {
        let w = kernel(app, ScaleClass::Tiny, 4, 42);
        g.bench_function(format!("{}_baseline", w.name()), |b| {
            b.iter(|| {
                let m = Machine::new(
                    MachineConfig::paper_4core(),
                    &w,
                    NullObserver,
                    1,
                    InjectionPlan::none(),
                );
                black_box(m.run().expect("ok").0.stats.cycles)
            })
        });
        g.bench_function(format!("{}_cord", w.name()), |b| {
            b.iter(|| {
                let det = CordDetector::new(CordConfig::paper(), 4, 4);
                let m = Machine::new(
                    MachineConfig::paper_4core(),
                    &w,
                    det,
                    1,
                    InjectionPlan::none(),
                );
                black_box(m.run().expect("ok").0.stats.cycles)
            })
        });
        g.bench_function(format!("{}_ideal", w.name()), |b| {
            b.iter(|| {
                let det = IdealDetector::new(4);
                let m = Machine::new(
                    MachineConfig::infinite_cache(),
                    &w,
                    det,
                    1,
                    InjectionPlan::none(),
                );
                black_box(m.run().expect("ok").0.stats.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulated_runs);
criterion_main!(benches);
