//! Command-line harness regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p cord-bench --bin figures -- all
//! cargo run --release -p cord-bench --bin figures -- fig12 --injections 50
//! cargo run --release -p cord-bench --bin figures -- fig11 --scale paper
//! ```
//!
//! Subcommands: `table1`, `fig10`..`fig17`, `logsize`, `area`, `replay`,
//! `ablations`, `cachestats`, `replaypar`, `directory`, `recordonly`,
//! `cachesweep`, `threadsweep`, `all`. Options: `--injections N`,
//! `--scale tiny|small|paper`, `--seed S`, `--json PATH` (dump the raw
//! sweep results).

use cord_bench::figures;
use cord_bench::sweep::{ScaleClassOpt, SweepOptions, SweepResults};
use cord_workloads::ScaleClass;
use std::time::Instant;

struct Args {
    command: String,
    injections: usize,
    scale: ScaleClassOpt,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        injections: 24,
        scale: ScaleClassOpt::Small,
        seed: 2006,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    let mut first = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--injections" => {
                args.injections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--injections needs a number");
            }
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("tiny") => ScaleClassOpt::Tiny,
                    Some("small") => ScaleClassOpt::Small,
                    Some("paper") => ScaleClassOpt::Paper,
                    other => panic!("unknown scale {other:?}"),
                };
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--json" => {
                args.json = Some(it.next().expect("--json needs a path"));
            }
            cmd if first => {
                args.command = cmd.to_string();
            }
            other => panic!("unknown argument {other}"),
        }
        first = false;
    }
    args
}

fn scale_of(s: ScaleClassOpt) -> ScaleClass {
    s.into()
}

fn main() {
    let args = parse_args();
    let opts = SweepOptions {
        injections_per_app: args.injections,
        scale: args.scale,
        threads: 4,
        seed: args.seed,
    };
    let needs_sweep = matches!(
        args.command.as_str(),
        "fig10" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "fig17" | "all"
    );
    let sweep: Option<SweepResults> = if needs_sweep {
        eprintln!(
            "running injection sweep: {} injections/app at {:?} scale...",
            opts.injections_per_app, opts.scale
        );
        let t0 = Instant::now();
        let s = figures::default_sweep(&opts);
        eprintln!("sweep done in {:.1}s", t0.elapsed().as_secs_f64());
        if let Some(path) = &args.json {
            std::fs::write(path, serde_json::to_string_pretty(&s).expect("serialize"))
                .expect("write json");
            eprintln!("raw sweep results written to {path}");
        }
        Some(s)
    } else {
        None
    };

    let scale = scale_of(args.scale);
    let cmd = args.command.as_str();
    if cmd == "table1" || cmd == "all" {
        println!("{}", figures::table1(scale));
    }
    if let Some(s) = &sweep {
        if cmd == "fig10" || cmd == "all" {
            println!("{}", figures::fig10(s));
        }
    }
    if cmd == "fig11" || cmd == "all" {
        println!("{}", figures::fig11(scale, &[args.seed, args.seed + 1, args.seed + 2]));
    }
    if let Some(s) = &sweep {
        for (name, f) in [
            ("fig12", figures::fig12 as fn(&SweepResults) -> figures::FigureTable),
            ("fig13", figures::fig13),
            ("fig14", figures::fig14),
            ("fig15", figures::fig15),
            ("fig16", figures::fig16),
            ("fig17", figures::fig17),
        ] {
            if cmd == name || cmd == "all" {
                println!("{}", f(s));
            }
        }
    }
    if cmd == "logsize" || cmd == "all" {
        println!("{}", figures::logsize(scale, args.seed));
    }
    if cmd == "area" || cmd == "all" {
        println!("{}", figures::area_table());
    }
    if cmd == "replay" || cmd == "all" {
        println!("{}", figures::replay_check(ScaleClass::Tiny, args.seed, 2));
    }
    if cmd == "ablations" || cmd == "all" {
        println!(
            "{}",
            figures::ablations(ScaleClass::Tiny, args.seed, args.injections.min(10))
        );
    }
    if cmd == "cachestats" || cmd == "all" {
        println!("{}", figures::cache_stats(scale, args.seed));
    }
    if cmd == "replaypar" || cmd == "all" {
        println!("{}", figures::replay_concurrency(scale, args.seed));
    }
    if cmd == "directory" || cmd == "all" {
        println!("{}", figures::directory_extension(scale, args.seed));
    }
    if cmd == "recordonly" || cmd == "all" {
        println!("{}", figures::record_only_cost(scale, args.seed));
    }
    if cmd == "cachesweep" {
        println!("{}", figures::cache_size_sweep(args.seed, args.injections.min(16)));
    }
    if cmd == "threadsweep" {
        println!("{}", figures::thread_sweep(args.seed, args.injections.min(16)));
    }
}
