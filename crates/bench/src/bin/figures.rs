//! Command-line harness regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p cord-bench --bin figures -- all
//! cargo run --release -p cord-bench --bin figures -- fig12 --injections 50
//! cargo run --release -p cord-bench --bin figures -- fig11 --scale paper
//! cargo run --release -p cord-bench --bin figures -- all --checkpoint sweep.ckpt.json
//! ```
//!
//! Subcommands: `table1`, `fig10`..`fig17`, `logsize`, `area`, `replay`,
//! `ablations`, `cachestats`, `replaypar`, `directory`, `recordonly`,
//! `lockfree`, `cachesweep`, `threadsweep`, `scaling`, `all`. Options:
//! `--injections N`, `--scale tiny|small|paper`, `--seed S`, `--jobs N`
//! (sweep worker threads; defaults to the host's available parallelism,
//! output is bit-identical for every value), `--cores N` (simulated
//! core count for sweep subcommands; default 4), `--backend
//! snooping|directory` (coherence backend for sweep subcommands;
//! default snooping), `--json PATH` (dump the raw sweep results — or,
//! for `scaling`, the `BENCH_scaling.json` document), `--checkpoint
//! PATH` (persist partial sweep results after every app and resume
//! from them on restart), `--trace-dir DIR` (write per-run event
//! traces as JSON, one file per app/run/config cell), `--metrics-out
//! PATH` (write the sweep's aggregate metrics and wall-clock profile
//! as JSON). See EXPERIMENTS.md for the trace and metrics schemas.

use cord_bench::figures;
use cord_bench::runner::SweepRunner;
use cord_bench::sweep::{CoherenceOpt, ScaleClassOpt, SweepOptions, SweepResults};
use cord_bench::DetectorConfig;
use cord_json::ToJson;
use cord_pool::Pool;
use cord_workloads::ScaleClass;
use std::error::Error;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Args {
    command: String,
    injections: usize,
    scale: ScaleClassOpt,
    seed: u64,
    jobs: usize,
    cores: usize,
    backend: CoherenceOpt,
    json: Option<String>,
    checkpoint: Option<String>,
    trace_dir: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "all".to_string(),
        injections: 24,
        scale: ScaleClassOpt::Small,
        seed: 2006,
        jobs: Pool::available_parallelism(),
        cores: 4,
        backend: CoherenceOpt::Snooping,
        json: None,
        checkpoint: None,
        trace_dir: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    let mut first = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--injections" => {
                args.injections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--injections needs a number")?;
            }
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("tiny") => ScaleClassOpt::Tiny,
                    Some("small") => ScaleClassOpt::Small,
                    Some("paper") => ScaleClassOpt::Paper,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs a number")?;
            }
            "--cores" => {
                args.cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cores needs a number")?;
            }
            "--backend" => {
                let name = it.next().ok_or("--backend needs snooping|directory")?;
                args.backend = CoherenceOpt::from_name(&name)
                    .ok_or_else(|| format!("unknown backend {name:?}"))?;
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?);
            }
            "--checkpoint" => {
                args.checkpoint = Some(it.next().ok_or("--checkpoint needs a path")?);
            }
            "--trace-dir" => {
                args.trace_dir = Some(it.next().ok_or("--trace-dir needs a directory")?);
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            cmd if first => {
                args.command = cmd.to_string();
            }
            other => return Err(format!("unknown argument {other}")),
        }
        first = false;
    }
    Ok(args)
}

fn scale_of(s: ScaleClassOpt) -> ScaleClass {
    s.into()
}

fn main() -> Result<(), Box<dyn Error>> {
    let args = parse_args()?;
    let opts = SweepOptions {
        injections_per_app: args.injections,
        scale: args.scale,
        threads: 4,
        seed: args.seed,
        cores: args.cores,
        backend: args.backend,
        ..SweepOptions::default()
    };
    let needs_sweep = matches!(
        args.command.as_str(),
        "fig10" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "fig17" | "all"
    );
    let sweep: Option<SweepResults> = if needs_sweep {
        eprintln!(
            "running injection sweep: {} injections/app at {:?} scale on {} worker(s)...",
            opts.injections_per_app, opts.scale, args.jobs
        );
        let t0 = Instant::now();
        let configs = DetectorConfig::all_for_sweep();
        // Throttled stderr progress line (at most ~3/s).
        let last_print: Mutex<Option<Instant>> = Mutex::new(None);
        let mut runner = SweepRunner::new(opts).jobs(args.jobs).progress(move |p| {
            let mut last = match last_print.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            let due = last.is_none_or(|t| t.elapsed() >= Duration::from_millis(300));
            if !(due || p.jobs_done == p.jobs_total) {
                return;
            }
            *last = Some(Instant::now());
            let eta = match p.eta {
                Some(d) => format!("{:.1}s", d.as_secs_f64()),
                None => "?".to_string(),
            };
            eprintln!(
                "  [{}] {}/{} jobs, {}/{} apps, {} failed, {:.0}% util, eta {}",
                p.phase,
                p.jobs_done,
                p.jobs_total,
                p.apps_done,
                p.apps_total,
                p.jobs_failed,
                100.0 * p.utilization,
                eta
            );
        });
        if let Some(path) = &args.checkpoint {
            runner = runner.checkpoint(path);
        }
        if let Some(dir) = &args.trace_dir {
            runner = runner.trace_dir(dir);
        }
        if let Some(path) = &args.metrics_out {
            runner = runner.metrics_out(path);
        }
        let s = runner.run(&configs)?;
        eprintln!("sweep done in {:.1}s", t0.elapsed().as_secs_f64());
        if let Some(dir) = &args.trace_dir {
            eprintln!("per-run event traces written to {dir}/");
        }
        if let Some(path) = &args.metrics_out {
            eprintln!("aggregate metrics written to {path}");
        }
        let failures = figures::failure_summary(&s);
        if !failures.is_empty() {
            eprint!("{failures}");
        }
        if let Some(path) = &args.json {
            std::fs::write(path, s.to_json().to_string_pretty())?;
            eprintln!("raw sweep results written to {path}");
        }
        Some(s)
    } else {
        None
    };

    let scale = scale_of(args.scale);
    let cmd = args.command.as_str();
    if cmd == "table1" || cmd == "all" {
        println!("{}", figures::table1(scale));
    }
    if let Some(s) = &sweep {
        if cmd == "fig10" || cmd == "all" {
            println!("{}", figures::fig10(s));
        }
    }
    if cmd == "fig11" || cmd == "all" {
        println!(
            "{}",
            figures::fig11(scale, &[args.seed, args.seed + 1, args.seed + 2])?
        );
    }
    if let Some(s) = &sweep {
        for (name, f) in [
            (
                "fig12",
                figures::fig12 as fn(&SweepResults) -> figures::FigureTable,
            ),
            ("fig13", figures::fig13),
            ("fig14", figures::fig14),
            ("fig15", figures::fig15),
            ("fig16", figures::fig16),
            ("fig17", figures::fig17),
        ] {
            if cmd == name || cmd == "all" {
                println!("{}", f(s));
            }
        }
        let failures = figures::failure_summary(s);
        if !failures.is_empty() {
            println!("{failures}");
        }
    }
    if cmd == "logsize" || cmd == "all" {
        println!("{}", figures::logsize(scale, args.seed)?);
    }
    if cmd == "area" || cmd == "all" {
        println!("{}", figures::area_table());
    }
    if cmd == "replay" || cmd == "all" {
        println!("{}", figures::replay_check(ScaleClass::Tiny, args.seed, 2));
    }
    if cmd == "ablations" || cmd == "all" {
        println!(
            "{}",
            figures::ablations(ScaleClass::Tiny, args.seed, args.injections.min(10))?
        );
    }
    if cmd == "cachestats" || cmd == "all" {
        println!("{}", figures::cache_stats(scale, args.seed)?);
    }
    if cmd == "replaypar" || cmd == "all" {
        println!("{}", figures::replay_concurrency(scale, args.seed)?);
    }
    if cmd == "directory" || cmd == "all" {
        println!("{}", figures::directory_extension(scale, args.seed)?);
    }
    if cmd == "recordonly" || cmd == "all" {
        println!("{}", figures::record_only_cost(scale, args.seed)?);
    }
    if cmd == "lockfree" || cmd == "all" {
        println!("{}", figures::lockfree_family(ScaleClass::Tiny, args.seed)?);
    }
    if cmd == "cachesweep" {
        println!(
            "{}",
            figures::cache_size_sweep(args.seed, args.injections.min(16))?
        );
    }
    if cmd == "threadsweep" {
        println!(
            "{}",
            figures::thread_sweep(args.seed, args.injections.min(16))?
        );
    }
    if cmd == "scaling" {
        let report = figures::cores_scaling(args.seed, args.injections.min(4))?;
        println!("{}", report.table());
        if let Some(path) = &args.json {
            std::fs::write(path, report.to_json().to_string_pretty())?;
            eprintln!("scaling curve written to {path}");
        }
    }
    Ok(())
}
