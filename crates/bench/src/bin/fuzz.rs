//! Command-line driver for differential fuzz campaigns (`cord-fuzz`).
//!
//! ```text
//! cargo run --release -p cord-bench --bin fuzz -- --seed 1 --count 200
//! cargo run --release -p cord-bench --bin fuzz -- --mode race-free --jobs 8
//! cargo run --release -p cord-bench --bin fuzz -- --corpus-dir fuzz-corpus
//! cargo run --release -p cord-bench --bin fuzz -- replay crates/fuzz/corpus
//! ```
//!
//! Default command runs a campaign: `--seed S` (master seed), `--count
//! N` (cases), `--jobs N` (worker threads; the report is bit-identical
//! for every value), `--mode mixed|race-free`, `--corpus-dir DIR`
//! (write shrunk reproducers for failing cases), `--budget-secs N`
//! (wall-clock safety valve; when it fires the report says so),
//! `--no-inject` / `--no-rerun` (trim the battery), `--lockfree`
//! (restrict generation to the atomic/CAS-loop sync vocabulary so
//! the campaign exercises lock-free topologies only). The `replay DIR`
//! subcommand loads every reproducer in DIR and re-runs the full
//! oracle battery on each.
//!
//! The report goes to stdout and is deterministic; progress chatter
//! goes to stderr. Exit status is non-zero when any oracle invariant
//! failed.

use cord_fuzz::campaign::{run_campaign, CampaignConfig, GenMode};
use cord_fuzz::corpus;
use cord_fuzz::gen::GenConfig;
use cord_fuzz::oracle::OracleOptions;
use std::error::Error;
use std::path::PathBuf;

struct Args {
    command: String,
    replay_dir: Option<String>,
    seed: u64,
    count: usize,
    jobs: usize,
    mode: GenMode,
    corpus_dir: Option<String>,
    budget_secs: Option<u64>,
    inject: bool,
    rerun: bool,
    lockfree: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "campaign".to_string(),
        replay_dir: None,
        seed: 1,
        count: 200,
        jobs: cord_pool::Pool::available_parallelism(),
        mode: GenMode::Mixed,
        corpus_dir: None,
        budget_secs: None,
        inject: true,
        rerun: true,
        lockfree: false,
    };
    let mut it = std::env::args().skip(1);
    let mut first = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--count" => {
                args.count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--count needs a number")?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--jobs needs a positive number")?;
            }
            "--mode" => {
                let m = it.next().ok_or("--mode needs mixed|race-free")?;
                args.mode = GenMode::parse(&m).ok_or(format!("unknown mode {m:?}"))?;
            }
            "--corpus-dir" => {
                args.corpus_dir = Some(it.next().ok_or("--corpus-dir needs a path")?);
            }
            "--budget-secs" => {
                args.budget_secs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--budget-secs needs a number")?,
                );
            }
            "--no-inject" => args.inject = false,
            "--no-rerun" => args.rerun = false,
            "--lockfree" => args.lockfree = true,
            other if first && !other.starts_with("--") => {
                args.command = other.to_string();
                if args.command == "replay" {
                    args.replay_dir = Some(it.next().ok_or("replay needs a directory")?);
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        first = false;
    }
    Ok(args)
}

fn campaign(args: &Args) -> Result<i32, Box<dyn Error>> {
    let mut oracle = OracleOptions::default();
    if !args.inject {
        oracle.max_injections = 0;
    }
    if !args.rerun {
        oracle.check_rerun = false;
    }
    let cfg = CampaignConfig {
        master_seed: args.seed,
        count: args.count,
        jobs: args.jobs,
        mode: args.mode,
        gen: GenConfig {
            lockfree: args.lockfree,
            ..GenConfig::default()
        },
        oracle,
        corpus_dir: args.corpus_dir.clone().map(PathBuf::from),
        budget_secs: args.budget_secs,
        ..CampaignConfig::default()
    };
    eprintln!(
        "fuzzing: {} cases, mode {}, {} jobs, master seed {:#x}",
        cfg.count,
        cfg.mode.name(),
        cfg.jobs,
        cfg.master_seed
    );
    let report = run_campaign(&cfg, |done, total| {
        eprintln!("  {done}/{total} cases");
    });
    print!("{}", report.render());
    Ok(if report.failures() == 0 { 0 } else { 1 })
}

fn replay(dir: &str) -> Result<i32, Box<dyn Error>> {
    let entries = corpus::load_dir(std::path::Path::new(dir))?;
    eprintln!("replaying {} reproducers from {dir}", entries.len());
    let opts = OracleOptions::default();
    let mut failures = 0usize;
    for (path, rep) in &entries {
        let report = corpus::replay(rep, &opts);
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        if report.passed() {
            println!(
                "PASS {name} (events {}, truth races {})",
                report.events, report.truth_races
            );
        } else {
            failures += 1;
            println!("FAIL {name}");
            for v in &report.violations {
                println!("  {v}");
            }
        }
    }
    println!("replay: {} reproducers, {failures} failures", entries.len());
    Ok(if failures == 0 { 0 } else { 1 })
}

fn main() -> Result<(), Box<dyn Error>> {
    let args = parse_args().map_err(|e| format!("{e} (see the doc comment atop fuzz.rs)"))?;
    let code = match args.command.as_str() {
        "campaign" => campaign(&args)?,
        "replay" => {
            let dir = args
                .replay_dir
                .as_deref()
                .ok_or("replay needs a directory")?;
            replay(dir)?
        }
        other => return Err(format!("unknown command {other:?}").into()),
    };
    std::process::exit(code);
}
