//! Refactor guard: a fixed two-app mini sweep whose results JSON and
//! checkpoint bytes are committed as fixtures under
//! `crates/bench/tests/fixtures/refactor_guard/`.
//!
//! `scripts/ci.sh` re-runs the sweep into a temp directory and
//! byte-diffs `results.json` and `checkpoint.json` against the
//! fixtures, so any engine/detector refactor must prove it preserved
//! behaviour exactly. With `--bench FILE` it additionally times the
//! end-to-end sweep hot path (the same `SweepRunner::run_detector` cell
//! the injection matrix executes) and records the measurement as JSON.
//!
//! Usage:
//!
//! ```sh
//! refactor_guard OUT_DIR            # write results.json + checkpoint.json
//! refactor_guard --bench BENCH.json # time the sweep hot path
//! ```

use cord_bench::sweep::ScaleClassOpt;
use cord_bench::{DetectorConfig, SweepOptions, SweepRunner};
use cord_json::{obj, Json, ToJson};
use cord_sim::engine::InjectionPlan;
use cord_workloads::{kernel, AppKind, ScaleClass};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// The pinned mini-sweep: everything here is part of the fixture
/// contract — changing any value invalidates the committed fixtures.
fn guard_options() -> SweepOptions {
    SweepOptions {
        injections_per_app: 3,
        scale: ScaleClassOpt::Tiny,
        threads: 4,
        seed: 2006,
        include_releases: true,
        spin_waits: None,
        // The scaling axes stay at their defaults (4-core snooping):
        // the guard pins the legacy machine byte-for-byte.
        ..SweepOptions::default()
    }
}

const GUARD_APPS: [AppKind; 2] = [AppKind::Fft, AppKind::WaterN2];

fn guard_configs() -> Vec<DetectorConfig> {
    vec![
        DetectorConfig::Cord { d: 16 },
        DetectorConfig::VcL2Cache,
        DetectorConfig::VcInfCache,
    ]
}

fn run_guard(out_dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let checkpoint = out_dir.join("checkpoint.json");
    // A stale checkpoint would short-circuit the sweep and mask drift.
    if checkpoint.exists() {
        std::fs::remove_file(&checkpoint)?;
    }
    let results = SweepRunner::new(guard_options())
        .jobs(1)
        .apps(&GUARD_APPS)
        .checkpoint(&checkpoint)
        .run(&guard_configs())?;
    std::fs::write(
        out_dir.join("results.json"),
        results.to_json().to_string_pretty(),
    )?;
    Ok(())
}

/// Times the sweep's innermost cell end to end: one CORD run, one Ideal
/// run, and one VC-L2 run of the fft kernel, exactly as an injection
/// sweep executes them.
fn run_bench(out: &Path) -> std::io::Result<()> {
    let opts = guard_options();
    let runner = SweepRunner::new(opts);
    let w = kernel(AppKind::Fft, ScaleClass::Tiny, opts.threads, opts.seed);
    let cell = |i: u64| {
        for cfg in [
            DetectorConfig::Cord { d: 16 },
            DetectorConfig::Ideal,
            DetectorConfig::VcL2Cache,
        ] {
            runner
                .run_detector(cfg, &w, opts.seed.wrapping_add(i), InjectionPlan::none())
                .expect("clean bench run completes");
        }
    };
    // Warmup, then a fixed iteration count timed as one block.
    for i in 0..3 {
        cell(i);
    }
    const ITERS: u64 = 20;
    let start = Instant::now();
    for i in 0..ITERS {
        cell(i);
    }
    let elapsed = start.elapsed();
    let mean_ns = elapsed.as_nanos() as f64 / ITERS as f64;
    let doc = obj(vec![
        ("bench", Json::Str("engine_end_to_end_sweep_cell".into())),
        ("app", Json::Str("fft-tiny".into())),
        (
            "configs",
            vec![
                "CORD-D16".to_string(),
                "Ideal".to_string(),
                "L2Cache(VC)".to_string(),
            ]
            .to_json(),
        ),
        ("iters", ITERS.to_json()),
        ("mean_ns_per_cell", mean_ns.to_json()),
        ("cells_per_sec", (1e9 / mean_ns).to_json()),
    ]);
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(out, doc.to_string_pretty())?;
    println!("engine end-to-end: {:.3} ms/cell", mean_ns / 1e6);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let res = match args.as_slice() {
        [flag, path] if flag == "--bench" => run_bench(Path::new(path)),
        [out_dir] => run_guard(Path::new(out_dir)),
        _ => {
            eprintln!("usage: refactor_guard OUT_DIR | refactor_guard --bench BENCH.json");
            return ExitCode::FAILURE;
        }
    };
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("refactor_guard: {e}");
            ExitCode::FAILURE
        }
    }
}
