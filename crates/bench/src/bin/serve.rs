//! Command-line driver for streaming detection (`cord-serve`).
//!
//! ```text
//! cargo run --release -p cord-bench --bin serve -- daemon --socket /tmp/cord.sock
//! cargo run --release -p cord-bench --bin serve -- capture --app fft --config CORD-D16 --out fft.stream
//! cargo run --release -p cord-bench --bin serve -- replay --socket /tmp/cord.sock --capture fft.stream
//! cargo run --release -p cord-bench --bin serve -- status --socket /tmp/cord.sock
//! cargo run --release -p cord-bench --bin serve -- smoke
//! ```
//!
//! * `daemon` runs the detection service in the foreground until a
//!   `shutdown` query arrives.
//! * `capture` simulates a workload with a capture tee and writes the
//!   wire-encoded event stream; the file is exactly what a daemon
//!   session consumes.
//! * `replay` streams a capture through a running daemon and prints the
//!   drained race report (canonical bytes) to stdout.
//! * `status` / `races` / `metrics` / `shutdown` are one-shot queries.
//! * `smoke` is the CI gate: it spawns a daemon as a child process,
//!   captures a small workload matrix, replays every capture, and
//!   byte-compares each daemon report against inline detection,
//!   exiting non-zero on any divergence.

use cord_core::{CaptureObserver, DetectorSink, ObsCtx, SinkObserver};
use cord_detectors::DetectorConfig;
use cord_obs::wire::{encode_capture, StreamGeometry};
use cord_obs::{StreamEvent, StreamHeader};
use cord_serve::{Daemon, DaemonConfig, Query, ServeClient};
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_trace::program::Workload;
use cord_workloads::{all_apps, kernel, ScaleClass};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn socket_arg(args: &[String]) -> PathBuf {
    PathBuf::from(flag_value(args, "--socket").unwrap_or_else(|| fail("--socket PATH is required")))
}

fn workload_for(app_name: &str, threads: usize, seed: u64) -> Workload {
    let app = all_apps()
        .into_iter()
        .find(|a| a.name() == app_name)
        .unwrap_or_else(|| fail(format!("unknown app `{app_name}`")));
    kernel(app, ScaleClass::Small, threads, seed)
}

/// Runs `workload` under `config` with a capture tee; returns the
/// captured events and the inline report's canonical bytes.
fn capture_run(
    workload: &Workload,
    machine: &MachineConfig,
    config: DetectorConfig,
    seed: u64,
) -> Result<(Vec<StreamEvent>, Vec<u8>), Box<dyn Error>> {
    let threads = workload.num_threads();
    let sink = config.build_sink(threads, machine.cores, seed, ObsCtx::disabled());
    let obs = CaptureObserver::new(SinkObserver::new(sink));
    let m = Machine::new(machine.clone(), workload, obs, seed, InjectionPlan::none());
    let (_, obs) = m.run()?;
    let (mut adapter, events) = obs.into_parts();
    let inline = adapter.sink_mut().drain().to_bytes();
    Ok((events, inline))
}

fn encode_run(
    workload: &Workload,
    machine: &MachineConfig,
    config: DetectorConfig,
    seed: u64,
    events: &[StreamEvent],
) -> Vec<u8> {
    let geometry = StreamGeometry::new(workload.num_threads(), machine.cores, workload.layout());
    let header = StreamHeader::new(workload.name(), &config.label(), seed, geometry);
    encode_capture(&header, events)
}

fn cmd_daemon(args: &[String]) -> Result<(), Box<dyn Error>> {
    let mut cfg = DaemonConfig {
        socket: socket_arg(args),
        snapshot: flag_value(args, "--snapshot").map(PathBuf::from),
        ..DaemonConfig::default()
    };
    if let Some(n) = flag_value(args, "--snapshot-every") {
        cfg.snapshot_every = n.parse()?;
    }
    if let Some(n) = flag_value(args, "--queue-depth") {
        cfg.queue_depth = n.parse()?;
    }
    if let Some(n) = flag_value(args, "--shards") {
        cfg.shards = n.parse()?;
    }
    eprintln!("serve: listening on {}", cfg.socket.display());
    Daemon::new(cfg).run()?;
    Ok(())
}

fn cmd_capture(args: &[String]) -> Result<(), Box<dyn Error>> {
    let app = flag_value(args, "--app").unwrap_or_else(|| "fft".to_owned());
    let label = flag_value(args, "--config").unwrap_or_else(|| "CORD-D16".to_owned());
    let seed = flag_value(args, "--seed").map_or(Ok(42), |s| s.parse())?;
    let threads = flag_value(args, "--threads").map_or(Ok(4), |s| s.parse())?;
    let out = flag_value(args, "--out").unwrap_or_else(|| fail("--out FILE is required"));
    let config = DetectorConfig::from_label(&label)
        .unwrap_or_else(|| fail(format!("unknown detector label `{label}`")));

    let workload = workload_for(&app, threads, seed);
    let machine = MachineConfig::paper_4core();
    let (events, inline) = capture_run(&workload, &machine, config, seed)?;
    let bytes = encode_run(&workload, &machine, config, seed, &events);
    std::fs::write(&out, &bytes)?;
    eprintln!(
        "serve: {app} under {label}: {} events, {} bytes -> {out} (inline report {} bytes)",
        events.len(),
        bytes.len(),
        inline.len()
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), Box<dyn Error>> {
    let client = ServeClient::new(socket_arg(args));
    let path = flag_value(args, "--capture").unwrap_or_else(|| fail("--capture FILE is required"));
    let capture = std::fs::read(&path)?;
    let report = client.replay_capture(&capture)?;
    std::io::stdout().write_all(&report)?;
    println!();
    Ok(())
}

fn cmd_query(args: &[String], q: Query) -> Result<(), Box<dyn Error>> {
    let client = ServeClient::new(socket_arg(args));
    println!("{}", client.query(q)?);
    Ok(())
}

/// The CI gate: a daemon child process must reproduce inline detection
/// byte-for-byte across a small (app × config × seed) matrix.
fn cmd_smoke(args: &[String]) -> Result<(), Box<dyn Error>> {
    let apps: Vec<String> = flag_value(args, "--apps")
        .unwrap_or_else(|| "fft,lu".to_owned())
        .split(',')
        .map(str::to_owned)
        .collect();
    let labels = ["CORD-D16", "Ideal", "L2Cache(VC)"];
    let seeds = [42u64, 1007];
    let socket = std::env::temp_dir().join(format!("cord-serve-smoke-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);

    let exe = std::env::current_exe()?;
    let mut child = std::process::Command::new(&exe)
        .args(["daemon", "--socket"])
        .arg(&socket)
        .stderr(std::process::Stdio::null())
        .spawn()?;
    let client = ServeClient::new(&socket);
    if !client.wait_ready(500) {
        let _ = child.kill();
        fail("daemon child never came up");
    }

    let machine = MachineConfig::paper_4core();
    let mut checked = 0;
    let mut failed = 0;
    for app in &apps {
        for label in labels {
            for seed in seeds {
                let config = DetectorConfig::from_label(label).expect("known label");
                let workload = workload_for(app, 4, seed);
                let (events, inline) = capture_run(&workload, &machine, config, seed)?;
                let capture = encode_run(&workload, &machine, config, seed, &events);
                let via_daemon = client.replay_capture(&capture)?;
                checked += 1;
                if via_daemon == inline {
                    eprintln!(
                        "serve: ok {app} {label} seed={seed} ({} bytes)",
                        inline.len()
                    );
                } else {
                    failed += 1;
                    eprintln!(
                        "serve: MISMATCH {app} {label} seed={seed}: daemon {} bytes vs inline {} bytes",
                        via_daemon.len(),
                        inline.len()
                    );
                }
            }
        }
    }
    client.shutdown()?;
    let _ = child.wait();
    let _ = std::fs::remove_file(&socket);
    println!("serve smoke: {checked} replays, {failed} mismatches");
    if failed > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = if args.is_empty() {
        &args[..]
    } else {
        &args[1..]
    };
    let result = match cmd {
        "daemon" => cmd_daemon(rest),
        "capture" => cmd_capture(rest),
        "replay" => cmd_replay(rest),
        "status" => cmd_query(rest, Query::Status),
        "races" => cmd_query(rest, Query::Races),
        "metrics" => cmd_query(rest, Query::Metrics),
        "shutdown" => cmd_query(rest, Query::Shutdown),
        "smoke" => cmd_smoke(rest),
        _ => {
            eprintln!(
                "usage: serve <daemon|capture|replay|status|races|metrics|shutdown|smoke> [flags]\n\
                 see the module docs at the top of crates/bench/src/bin/serve.rs"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        fail(e);
    }
}
