//! `shard` — crash-resilient multi-process campaign driver.
//!
//! ```text
//! shard fuzz   --dir DIR [--seed N] [--count N] [--mode mixed|race-free]
//!              [--short] [--no-inject] [--no-rerun] [--corpus]
//!              [--shards K] [--worker-jobs J] [supervision flags]
//! shard sweep  --dir DIR [--apps a,b,c] [--injections N]
//!              [--scale tiny|small|paper] [--threads T] [--seed N]
//!              [--shards K] [--worker-jobs J] [supervision flags]
//! shard resume --dir DIR [supervision flags]
//! shard worker --dir DIR --shard S        (internal: spawned by the coordinator)
//! shard status --dir DIR
//! ```
//!
//! Supervision flags (never affect merged output bytes):
//! `--workers N`, `--max-retries N`, `--heartbeat-timeout-ms MS`,
//! `--poll-ms MS`, `--chaos kill-rate=P[,budget=B][,seed=S]`.
//!
//! Exit codes: 0 complete and clean; 1 complete but the campaign found
//! failures; 2 shards abandoned (merged output partial; resumable);
//! 4 drained via the `DRAIN` marker (resumable).

use cord_bench::shard::{
    coordinate, status_summary, worker_main, CampaignDir, CampaignSpec, CoordinatorOptions,
    FuzzSpec, SweepSpec,
};
use cord_bench::sweep::{ScaleClassOpt, SweepOptions};
use cord_fuzz::GenMode;
use cord_shard::parse_chaos_spec;
use cord_workloads::all_apps;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: shard <fuzz|sweep|resume|worker|status> --dir DIR [options]\n\
         run `shard fuzz --dir d` or `shard sweep --dir d` to start a campaign;\n\
         re-run the same command (or `shard resume --dir d`) to resume it."
    );
    std::process::exit(64);
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let Some(v) = v else {
        eprintln!("error: {flag} needs a value");
        std::process::exit(64);
    };
    match v.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: invalid value for {flag}: {v:?}");
            std::process::exit(64);
        }
    }
}

struct Cli {
    dir: Option<PathBuf>,
    shard: Option<usize>,
    shards: usize,
    worker_jobs: usize,
    coord: CoordinatorOptions,
    // fuzz
    seed: u64,
    count: usize,
    mode: GenMode,
    short: bool,
    inject: bool,
    rerun: bool,
    corpus: bool,
    // sweep
    apps: Option<Vec<String>>,
    injections: usize,
    scale: ScaleClassOpt,
    threads: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            dir: None,
            shard: None,
            shards: 4,
            worker_jobs: 1,
            coord: CoordinatorOptions::default(),
            seed: 1,
            count: 200,
            mode: GenMode::Mixed,
            short: false,
            inject: true,
            rerun: true,
            corpus: false,
            apps: None,
            injections: 2,
            scale: ScaleClassOpt::Tiny,
            threads: 4,
        }
    }
}

fn parse_cli(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => cli.dir = Some(PathBuf::from(parse_num::<String>("--dir", args.next()))),
            "--shard" => cli.shard = Some(parse_num("--shard", args.next())),
            "--shards" => cli.shards = parse_num("--shards", args.next()),
            "--workers" => cli.coord.max_workers = Some(parse_num("--workers", args.next())),
            "--worker-jobs" => cli.worker_jobs = parse_num("--worker-jobs", args.next()),
            "--max-retries" => cli.coord.max_retries = parse_num("--max-retries", args.next()),
            "--heartbeat-timeout-ms" => {
                cli.coord.heartbeat_timeout =
                    Duration::from_millis(parse_num("--heartbeat-timeout-ms", args.next()));
            }
            "--poll-ms" => {
                cli.coord.poll_interval =
                    Duration::from_millis(parse_num("--poll-ms", args.next()));
            }
            "--chaos" => {
                let spec: String = parse_num("--chaos", args.next());
                match parse_chaos_spec(&spec) {
                    Ok(c) => cli.coord.chaos = Some(c),
                    Err(e) => {
                        eprintln!("error: --chaos {spec:?}: {e}");
                        std::process::exit(64);
                    }
                }
            }
            "--seed" => cli.seed = parse_num("--seed", args.next()),
            "--count" => cli.count = parse_num("--count", args.next()),
            "--mode" => {
                let name: String = parse_num("--mode", args.next());
                match GenMode::parse(&name) {
                    Some(m) => cli.mode = m,
                    None => {
                        eprintln!("error: unknown mode {name:?} (mixed, race-free)");
                        std::process::exit(64);
                    }
                }
            }
            "--short" => cli.short = true,
            "--no-inject" => cli.inject = false,
            "--no-rerun" => cli.rerun = false,
            "--corpus" => cli.corpus = true,
            "--apps" => {
                let list: String = parse_num("--apps", args.next());
                cli.apps = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--injections" => cli.injections = parse_num("--injections", args.next()),
            "--scale" => {
                let name: String = parse_num("--scale", args.next());
                match name.as_str() {
                    "tiny" => cli.scale = ScaleClassOpt::Tiny,
                    "small" => cli.scale = ScaleClassOpt::Small,
                    "paper" => cli.scale = ScaleClassOpt::Paper,
                    _ => {
                        eprintln!("error: unknown scale {name:?} (tiny, small, paper)");
                        std::process::exit(64);
                    }
                }
            }
            "--threads" => cli.threads = parse_num("--threads", args.next()),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }
    cli
}

fn require_dir(cli: &Cli) -> CampaignDir {
    match &cli.dir {
        Some(d) => CampaignDir::new(d.clone()),
        None => {
            eprintln!("error: --dir is required");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let cli = parse_cli(args);
    let dir = require_dir(&cli);

    let spec = match cmd.as_str() {
        "fuzz" => Some(CampaignSpec::Fuzz(FuzzSpec {
            seed: cli.seed,
            count: cli.count,
            mode: cli.mode,
            short: cli.short,
            inject: cli.inject,
            rerun: cli.rerun,
            corpus: cli.corpus,
            shards: cli.shards,
            worker_jobs: cli.worker_jobs,
        })),
        "sweep" => {
            let apps = match &cli.apps {
                None => all_apps().to_vec(),
                Some(names) => {
                    let mut apps = Vec::new();
                    for name in names {
                        match all_apps().into_iter().find(|a| a.name() == name) {
                            Some(a) => apps.push(a),
                            None => {
                                eprintln!("error: unknown app {name:?}");
                                std::process::exit(64);
                            }
                        }
                    }
                    apps
                }
            };
            Some(CampaignSpec::Sweep(SweepSpec {
                opts: SweepOptions {
                    injections_per_app: cli.injections,
                    scale: cli.scale,
                    threads: cli.threads,
                    seed: cli.seed,
                    ..SweepOptions::default()
                },
                apps,
                shards: cli.shards,
                worker_jobs: cli.worker_jobs,
            }))
        }
        "resume" => None,
        "worker" => {
            let Some(shard) = cli.shard else {
                eprintln!("error: worker needs --shard");
                usage();
            };
            return match worker_main(&dir, shard) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("worker shard {shard} failed: {e}");
                    ExitCode::from(3)
                }
            };
        }
        "status" => {
            return match status_summary(&dir) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => usage(),
    };

    match coordinate(&dir, spec, &cli.coord) {
        Ok(outcome) => {
            if outcome.drained {
                eprintln!("campaign drained (exit 4)");
            } else if outcome.abandoned.is_empty() {
                eprintln!(
                    "campaign complete: merged outputs in {}",
                    dir.root().join("merged").display()
                );
            } else {
                eprintln!(
                    "campaign complete with abandoned shards {:?}: merged outputs are partial",
                    outcome.abandoned
                );
            }
            ExitCode::from(outcome.exit_code.clamp(0, 255) as u8)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
