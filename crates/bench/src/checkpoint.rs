//! Checkpoint/resume for injection sweeps.
//!
//! A full sweep is minutes of simulation; losing it to a crash or a
//! ^C near the end means starting over. A
//! [`SweepRunner`](crate::runner::SweepRunner) with a
//! [`checkpoint`](crate::runner::SweepRunner::checkpoint) path
//! serializes the partial [`SweepResults`](crate::sweep::SweepResults)
//! to a JSON checkpoint after
//! every completed [`AppSweep`], keyed by a hash of the sweep options
//! and configuration set; a restart with the same parameters loads the
//! checkpoint and skips the apps already swept. Because every run is
//! seeded deterministically (see [`run_seed`](crate::sweep::run_seed)),
//! a resumed sweep is bit-identical to an uninterrupted one.
//!
//! Checkpoint file layout:
//!
//! ```json
//! {
//!   "options_hash": 1234567,
//!   "options": { ... },
//!   "apps": [ { "app": "barnes", ... }, ... ]
//! }
//! ```

use crate::configs::DetectorConfig;
use crate::sweep::{AppSweep, SweepOptions};
use cord_json::durable::{self, RecoveryEvent};
use cord_json::{obj, FromJson, Json, ToJson};
use std::io;
use std::path::Path;

/// Hash identifying a (options, configuration set) pair. A checkpoint
/// written under a different hash is ignored rather than resumed: its
/// per-run seeds and targets would not line up.
pub fn options_hash(opts: &SweepOptions, configs: &[DetectorConfig]) -> u64 {
    // FNV-1a over the canonical option encoding plus the config labels.
    let mut canonical = opts.to_json().to_string_compact();
    for c in configs {
        canonical.push('|');
        canonical.push_str(&c.label());
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A partially completed sweep loaded from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The [`options_hash`] the partial results were produced under.
    pub options_hash: u64,
    /// The options of the interrupted sweep.
    pub options: SweepOptions,
    /// Apps already swept, in sweep order.
    pub apps: Vec<AppSweep>,
}

impl Checkpoint {
    fn to_json(&self) -> Json {
        obj(vec![
            ("options_hash", self.options_hash.to_json()),
            ("options", self.options.to_json()),
            ("apps", self.apps.to_json()),
        ])
    }

    fn from_doc(v: &Json) -> Result<Checkpoint, cord_json::JsonError> {
        Ok(Checkpoint {
            options_hash: u64::from_json(v.field("options_hash")?)?,
            options: SweepOptions::from_json(v.field("options")?)?,
            apps: Vec::<AppSweep>::from_json(v.field("apps")?)?,
        })
    }

    /// Loads a checkpoint if `path` holds (or its `.prev` generation
    /// holds) a verifiable document with a matching hash, along with
    /// any recovery warnings (truncated/garbled generations skipped).
    /// A missing file, corrupt-and-unrecoverable state, or a hash
    /// mismatch all mean "start from scratch" — never an error that
    /// kills the sweep.
    pub fn load_matching_with_warnings(
        path: &Path,
        hash: u64,
    ) -> (Option<Checkpoint>, Vec<RecoveryEvent>) {
        let load = durable::load_checkpoint(path);
        let mut warnings = load.warnings;
        if load.from_previous {
            warnings.push(RecoveryEvent::new(
                "resumed-previous",
                path,
                "resumed from previous good generation",
            ));
        }
        let cp = load
            .doc
            .and_then(|doc| match Checkpoint::from_doc(&doc) {
                Ok(cp) => Some(cp),
                Err(e) => {
                    warnings.push(RecoveryEvent::new(
                        "malformed-document",
                        path,
                        format!("verified but malformed ({e}); ignoring"),
                    ));
                    None
                }
            })
            .filter(|cp| cp.options_hash == hash);
        (cp, warnings)
    }

    /// [`Self::load_matching_with_warnings`] with warnings forwarded to
    /// stderr — the right default for CLI drivers.
    pub fn load_matching(path: &Path, hash: u64) -> Option<Checkpoint> {
        let (cp, warnings) = Checkpoint::load_matching_with_warnings(path, hash);
        for w in warnings {
            eprintln!("warning: {w}");
        }
        cp
    }

    /// Writes the checkpoint durably: sealed with a length+checksum
    /// footer, written crash-atomically (temp file in the same
    /// directory, fsync, rename), with the previous verified-good
    /// generation rotated to `<path>.prev` as a corruption fallback.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        durable::write_checkpoint(path, &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ScaleClassOpt;

    fn quick_opts() -> SweepOptions {
        SweepOptions {
            injections_per_app: 2,
            scale: ScaleClassOpt::Tiny,
            threads: 4,
            seed: 13,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn hash_depends_on_options_and_configs() {
        let a = options_hash(&quick_opts(), &[DetectorConfig::Cord { d: 16 }]);
        let b = options_hash(
            &SweepOptions {
                seed: 14,
                ..quick_opts()
            },
            &[DetectorConfig::Cord { d: 16 }],
        );
        let c = options_hash(&quick_opts(), &[DetectorConfig::Cord { d: 4 }]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            options_hash(&quick_opts(), &[DetectorConfig::Cord { d: 16 }])
        );
    }

    #[test]
    fn mismatched_checkpoints_are_ignored() {
        let dir = std::env::temp_dir().join("cord-checkpoint-test-mismatch");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sweep.json");
        let cp = Checkpoint {
            options_hash: 1,
            options: quick_opts(),
            apps: Vec::new(),
        };
        cp.store(&path).expect("store");
        assert_eq!(Checkpoint::load_matching(&path, 1), Some(cp));
        assert_eq!(Checkpoint::load_matching(&path, 2), None);
        std::fs::write(&path, "not json").expect("write");
        assert_eq!(Checkpoint::load_matching(&path, 1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join("cord-checkpoint-test-fallback");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sweep.json");
        let cp = Checkpoint {
            options_hash: 9,
            options: quick_opts(),
            apps: Vec::new(),
        };
        cp.store(&path).expect("store gen 1");
        cp.store(&path)
            .expect("store gen 2 (rotates gen 1 to .prev)");
        // Truncate the primary mid-"write": the checksum footer catches
        // it and the loader recovers from .prev with a warning.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        let (loaded, warnings) = Checkpoint::load_matching_with_warnings(&path, 9);
        assert_eq!(loaded, Some(cp));
        assert!(
            warnings
                .iter()
                .any(|w| w.to_string().contains("previous good generation")),
            "{warnings:?}"
        );
        assert!(
            warnings.iter().any(|w| w.kind == "resumed-previous"),
            "{warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
