//! Re-exports of the detector configurations compared in §4.
//!
//! The definitions moved to [`cord_detectors::config`] so detectors can
//! be named and built without the benchmark harness (the `cord-serve`
//! daemon resolves stream-header labels through
//! [`DetectorConfig::from_label`]). This shim keeps
//! `cord_bench::configs::*` paths working.

pub use cord_detectors::config::{DetectorConfig, DetectorEnum, PanicProbeDetector};
