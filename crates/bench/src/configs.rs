//! The detector configurations compared in §4.

use cord_core::CordConfig;
use cord_detectors::VcConfig;
use cord_sim::config::MachineConfig;

/// A named detector configuration from the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorConfig {
    /// CORD with the given `D` (the paper's default is 16; Figures 16–17
    /// sweep 1, 4, 16, 256).
    Cord {
        /// The sync-read clock-update window.
        d: u64,
    },
    /// Vector clocks, two timestamps per line, unlimited cache
    /// (InfCache, §4.3).
    VcInfCache,
    /// Vector clocks limited to the L2 (the "vector clock" reference of
    /// Figures 12–13/16–17).
    VcL2Cache,
    /// Vector clocks limited to the L1 (the severe constraint of
    /// Figures 14–15).
    VcL1Cache,
    /// The Ideal oracle: vector clocks, infinite cache, unlimited
    /// per-word history.
    Ideal,
    /// A deliberately faulty detector for fault-tolerance tests: runs
    /// with an odd seed panic (caught by the sweep's per-run isolation
    /// boundary and recorded as `RunStatus::Panicked`), even-seeded runs
    /// report zero races, so a probed sweep mixes panicked and completed
    /// records. Never part of [`DetectorConfig::all_for_sweep`].
    PanicProbe,
}

impl DetectorConfig {
    /// The figure label.
    pub fn label(self) -> String {
        match self {
            DetectorConfig::Cord { d } => format!("CORD-D{d}"),
            DetectorConfig::VcInfCache => "InfCache".to_string(),
            DetectorConfig::VcL2Cache => "L2Cache(VC)".to_string(),
            DetectorConfig::VcL1Cache => "L1Cache(VC)".to_string(),
            DetectorConfig::Ideal => "Ideal".to_string(),
            DetectorConfig::PanicProbe => "PanicProbe".to_string(),
        }
    }

    /// The machine this configuration runs on: Ideal and InfCache use
    /// the infinite-cache machine ("Ideal's L2 cache is infinite and
    /// always hits", §4.2), everything else uses the paper's 4-core CMP.
    pub fn machine(self) -> MachineConfig {
        match self {
            DetectorConfig::Ideal | DetectorConfig::VcInfCache => MachineConfig::infinite_cache(),
            _ => MachineConfig::paper_4core(),
        }
    }

    /// The CORD detector configuration, when this is a CORD variant.
    pub fn cord_config(self) -> Option<CordConfig> {
        match self {
            DetectorConfig::Cord { d } => Some(CordConfig::with_d(d)),
            _ => None,
        }
    }

    /// The vector-clock detector configuration, when applicable.
    pub fn vc_config(self) -> Option<VcConfig> {
        match self {
            DetectorConfig::VcInfCache => Some(VcConfig::inf_cache()),
            DetectorConfig::VcL2Cache => Some(VcConfig::l2_cache()),
            DetectorConfig::VcL1Cache => Some(VcConfig::l1_cache()),
            _ => None,
        }
    }

    /// Every configuration any figure needs, so one sweep serves all of
    /// Figures 12–17.
    pub fn all_for_sweep() -> Vec<DetectorConfig> {
        vec![
            DetectorConfig::Cord { d: 1 },
            DetectorConfig::Cord { d: 4 },
            DetectorConfig::Cord { d: 16 },
            DetectorConfig::Cord { d: 256 },
            DetectorConfig::VcInfCache,
            DetectorConfig::VcL2Cache,
            DetectorConfig::VcL1Cache,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_figure_style() {
        assert_eq!(DetectorConfig::Cord { d: 16 }.label(), "CORD-D16");
        assert_eq!(DetectorConfig::VcL2Cache.label(), "L2Cache(VC)");
    }

    #[test]
    fn machines_match_paper_setup() {
        assert!(
            DetectorConfig::Ideal.machine().l2.capacity_bytes
                > DetectorConfig::VcL2Cache.machine().l2.capacity_bytes
        );
        assert_eq!(
            DetectorConfig::Cord { d: 16 }.machine(),
            MachineConfig::paper_4core()
        );
    }

    #[test]
    fn config_conversions() {
        assert_eq!(
            DetectorConfig::Cord { d: 4 }
                .cord_config()
                .unwrap()
                .policy
                .d(),
            4
        );
        assert!(DetectorConfig::Cord { d: 4 }.vc_config().is_none());
        assert_eq!(
            DetectorConfig::VcL1Cache.vc_config().unwrap().capacity,
            cord_detectors::CapacityMode::Level(cord_sim::observer::Level::L1)
        );
        assert_eq!(DetectorConfig::all_for_sweep().len(), 7);
    }
}
