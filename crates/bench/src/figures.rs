//! Computation and rendering of every table and figure in §4.

use crate::configs::DetectorConfig;
use crate::sweep::{SweepOptions, SweepResults};
use cord_core::{area, CordConfig, CordError, ExperimentHarness};
use cord_sim::config::MachineConfig;
use cord_sim::engine::InjectionPlan;
use cord_workloads::{all_apps, kernel, lockfree_apps, ScaleClass};
use std::fmt;

/// How a figure's values should be displayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Render as a percentage.
    Percent,
    /// Render as a plain ratio.
    Ratio,
    /// Render as bytes.
    Bytes,
    /// Render as a count.
    Count,
}

/// One regenerated figure or table: app rows × configuration columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Figure identifier and description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, one value per column)`; `None` = undefined (no
    /// manifested runs for that app).
    pub rows: Vec<(String, Vec<Option<f64>>)>,
    /// Display unit.
    pub unit: Unit,
    /// Free-form note (the paper's corresponding headline number).
    pub note: String,
}

impl FigureTable {
    fn format_value(&self, v: Option<f64>) -> String {
        match v {
            None => "-".to_string(),
            Some(x) => match self.unit {
                Unit::Percent => format!("{:.1}%", x * 100.0),
                Unit::Ratio => format!("{x:.4}"),
                Unit::Bytes => format!("{:.1}KB", x / 1024.0),
                Unit::Count => format!("{x:.0}"),
            },
        }
    }

    /// Appends an `Average` row (mean over defined values per column).
    pub fn with_average(mut self) -> Self {
        let ncols = self.columns.len();
        let mut avg = vec![None; ncols];
        for (c, slot) in avg.iter_mut().enumerate() {
            let vals: Vec<f64> = self
                .rows
                .iter()
                .filter_map(|(_, vs)| vs.get(c).copied().flatten())
                .collect();
            if !vals.is_empty() {
                *slot = Some(vals.iter().sum::<f64>() / vals.len() as f64);
            }
        }
        self.rows.push(("Average".to_string(), avg));
        self
    }

    /// The `Average` row's value for a column label, if present.
    pub fn average_of(&self, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == "Average")
            .and_then(|(_, vs)| vs.get(c).copied().flatten())
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        if !self.note.is_empty() {
            writeln!(f, "   ({})", self.note)?;
        }
        write!(f, "{:12}", "app")?;
        for c in &self.columns {
            write!(f, " {c:>12}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:12}")?;
            for v in vals {
                write!(f, " {:>12}", self.format_value(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn rate_table(
    title: &str,
    note: &str,
    results: &SweepResults,
    columns: &[(&str, &str, bool)], // (header, config label, raw?) vs base in 4th
    bases: &[&str],
) -> FigureTable {
    let mut rows: Vec<(String, Vec<Option<f64>>)> = results
        .apps
        .iter()
        .map(|app| {
            let vals = columns
                .iter()
                .zip(bases)
                .map(|((_, label, raw), base)| {
                    if *raw {
                        app.race_rate_vs(label, base)
                    } else {
                        app.problem_rate_vs(label, base)
                    }
                })
                .collect();
            (app.app.clone(), vals)
        })
        .collect();
    // The Average row pools numerators and denominators across apps,
    // like the paper's averages "based on more than a hundred manifested
    // errors per configuration" — robust against per-app outliers with
    // tiny denominators.
    let avg = columns
        .iter()
        .zip(bases)
        .map(|((_, label, raw), base)| {
            let (mut num, mut den) = (0u64, 0u64);
            for app in &results.apps {
                if *raw {
                    num += app.races_found(label);
                    den += if *base == "Ideal" {
                        app.ideal_races()
                    } else {
                        app.races_found(base)
                    };
                } else {
                    num += app.problems_found(label) as u64;
                    den += if *base == "Ideal" {
                        app.manifested().count() as u64
                    } else {
                        app.problems_found(base) as u64
                    };
                }
            }
            (den > 0).then(|| num as f64 / den as f64)
        })
        .collect();
    rows.push(("Average".to_string(), avg));
    FigureTable {
        title: title.to_string(),
        columns: columns.iter().map(|(h, _, _)| h.to_string()).collect(),
        rows,
        unit: Unit::Percent,
        note: note.to_string(),
    }
}

/// Figure 10: percentage of injected sync removals that manifested at
/// least one data race (per the Ideal oracle).
pub fn fig10(results: &SweepResults) -> FigureTable {
    let rows = results
        .apps
        .iter()
        .map(|a| (a.app.clone(), vec![Some(a.manifestation_rate())]))
        .collect();
    FigureTable {
        title: "Figure 10: injections manifesting >=1 data race (Ideal)".into(),
        columns: vec!["manifested".into()],
        rows,
        unit: Unit::Percent,
        note: "paper: varies widely per app; many removals are redundant".into(),
    }
    .with_average()
}

/// Figure 11: execution time with CORD relative to a machine with no
/// recording/DRD support. Averages several seeds to damp scheduling
/// noise on small inputs.
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run (clean runs on an
/// unwatchdogged machine cannot fail in practice).
pub fn fig11(scale: ScaleClass, seeds: &[u64]) -> Result<FigureTable, CordError> {
    let mut rows = Vec::new();
    for app in all_apps() {
        let mut ratios = Vec::new();
        for &seed in seeds {
            let w = kernel(app, scale, 4, seed);
            let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
            ratios.push(h.overhead(&w, &CordConfig::paper())?);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        rows.push((app.name().to_string(), vec![Some(avg)]));
    }
    Ok(FigureTable {
        title: "Figure 11: execution time with CORD (baseline = 1.0)".into(),
        columns: vec!["rel. time".into()],
        rows,
        unit: Unit::Ratio,
        note: "paper: 0.4% average overhead, 3% worst case (cholesky)".into(),
    }
    .with_average())
}

/// Figure 12: CORD's problem detection rate vs. the vector-clock scheme
/// and vs. Ideal.
pub fn fig12(results: &SweepResults) -> FigureTable {
    rate_table(
        "Figure 12: problem detection rate (CORD-D16)",
        "paper: 83% of vector clocks, 77% of Ideal on average",
        results,
        &[
            ("vs VC", "CORD-D16", false),
            ("vs Ideal", "CORD-D16", false),
        ],
        &["L2Cache(VC)", "Ideal"],
    )
}

/// Figure 13: CORD's raw data-race detection rate vs. VC and Ideal.
pub fn fig13(results: &SweepResults) -> FigureTable {
    rate_table(
        "Figure 13: raw data race detection rate (CORD-D16)",
        "paper: ~20% of Ideal — raw detection is sacrificed, problem detection retained",
        results,
        &[("vs VC", "CORD-D16", true), ("vs Ideal", "CORD-D16", true)],
        &["L2Cache(VC)", "Ideal"],
    )
}

/// Figure 14: problem detection with limited access histories
/// (InfCache / L2Cache / L1Cache, all vector clocks), relative to Ideal.
pub fn fig14(results: &SweepResults) -> FigureTable {
    rate_table(
        "Figure 14: problem detection with limited histories (VC)",
        "paper: few problems lost until the severe L1Cache limit",
        results,
        &[
            ("InfCache", "InfCache", false),
            ("L2Cache", "L2Cache(VC)", false),
            ("L1Cache", "L1Cache(VC)", false),
        ],
        &["Ideal", "Ideal", "Ideal"],
    )
}

/// Figure 15: raw race detection for the same three configurations.
pub fn fig15(results: &SweepResults) -> FigureTable {
    rate_table(
        "Figure 15: raw race detection with limited histories (VC)",
        "paper: 2 ts/line alone misses 18% of races; L2/L1 limits miss most",
        results,
        &[
            ("InfCache", "InfCache", true),
            ("L2Cache", "L2Cache(VC)", true),
            ("L1Cache", "L1Cache(VC)", true),
        ],
        &["Ideal", "Ideal", "Ideal"],
    )
}

/// Figure 16: problem detection of scalar clocks at D ∈ {1,4,16,256},
/// relative to the vector-clock L2Cache configuration.
pub fn fig16(results: &SweepResults) -> FigureTable {
    rate_table(
        "Figure 16: problem detection vs D (scalar clocks, rel. to VC)",
        "paper: major gains up to D=16; D=256 helps only barnes",
        results,
        &[
            ("D1", "CORD-D1", false),
            ("D4", "CORD-D4", false),
            ("D16", "CORD-D16", false),
            ("D256", "CORD-D256", false),
        ],
        &["L2Cache(VC)"; 4],
    )
}

/// Figure 17: raw race detection for the same D sweep.
pub fn fig17(results: &SweepResults) -> FigureTable {
    rate_table(
        "Figure 17: raw race detection vs D (scalar clocks, rel. to VC)",
        "paper: D=1 loses most raw detection; improves up to D=16",
        results,
        &[
            ("D1", "CORD-D1", true),
            ("D4", "CORD-D4", true),
            ("D16", "CORD-D16", true),
            ("D256", "CORD-D256", true),
        ],
        &["L2Cache(VC)"; 4],
    )
}

/// Table 1: applications and input sets (paper's vs. this
/// reproduction's workload sizes).
pub fn table1(scale: ScaleClass) -> String {
    let mut out = String::from("== Table 1: applications and input sets ==\n");
    out.push_str(&format!(
        "{:12} {:>12} {:>12} {:>12} {:>10}\n",
        "app", "paper input", "ops", "sync ops", "threads"
    ));
    for app in all_apps() {
        let w = kernel(app, scale, 4, 42);
        let c = w.op_counts();
        let sync = c.locks + c.unlocks + c.flag_sets + c.flag_waits + c.barriers;
        out.push_str(&format!(
            "{:12} {:>12} {:>12} {:>12} {:>10}\n",
            app.name(),
            app.paper_input(),
            w.total_ops(),
            sync,
            w.num_threads()
        ));
    }
    out
}

/// §3.3: order-log size per application ("less than 1MB for the entire
/// execution" in the paper's full runs).
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn logsize(scale: ScaleClass, seed: u64) -> Result<FigureTable, CordError> {
    let mut rows = Vec::new();
    for app in all_apps() {
        let w = kernel(app, scale, 4, seed);
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
        let out = h.run_cord(&w, &CordConfig::paper())?;
        rows.push((app.name().to_string(), vec![Some(out.log_bytes as f64)]));
    }
    Ok(FigureTable {
        title: "Order-recording log size (8 bytes/entry)".into(),
        columns: vec!["log size".into()],
        rows,
        unit: Unit::Bytes,
        note: "paper: < 1MB per full application run".into(),
    }
    .with_average())
}

/// §2.3–§2.4: the timestamp state area model.
pub fn area_table() -> FigureTable {
    let rows = vec![
        (
            "CORD scalar".to_string(),
            vec![Some(area::scalar_overhead(2))],
        ),
        (
            "VC 2 threads".to_string(),
            vec![Some(area::vector_overhead(2, 2))],
        ),
        (
            "VC 4 threads".to_string(),
            vec![Some(area::vector_overhead(4, 2))],
        ),
        (
            "VC 16 threads".to_string(),
            vec![Some(area::vector_overhead(16, 2))],
        ),
        (
            "per-word VC4".to_string(),
            vec![Some(area::per_word_vector_overhead(4))],
        ),
    ];
    FigureTable {
        title: "Timestamp state as fraction of cache data area (§2.3)".into(),
        columns: vec!["overhead".into()],
        rows,
        unit: Unit::Percent,
        note: "paper: 19% scalar (thread-count independent), 38% for 4-thread VC, 200% per-word"
            .into(),
    }
}

/// §3.3: replay verification across all applications, with and without
/// injections. Value 1.0 = replay reproduced the recording.
pub fn replay_check(scale: ScaleClass, seed: u64, injections: u64) -> FigureTable {
    let rows = all_apps()
        .into_iter()
        .map(|app| {
            let w = kernel(app, scale, 4, seed);
            let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
            let mut ok = h
                .verify_replay(&w, &CordConfig::paper(), InjectionPlan::none())
                .is_ok();
            for n in 0..injections {
                ok &= h
                    .verify_replay(&w, &CordConfig::paper(), InjectionPlan::remove_nth(n))
                    .is_ok();
            }
            (app.name().to_string(), vec![Some(f64::from(u8::from(ok)))])
        })
        .collect();
    FigureTable {
        title: "Deterministic replay verification (1 = exact)".into(),
        columns: vec!["replay ok".into()],
        rows,
        unit: Unit::Ratio,
        note: "paper: the entire execution can always be accurately replayed".into(),
    }
}

/// The default full sweep used by Figures 10 and 12–17.
pub fn default_sweep(opts: &SweepOptions) -> SweepResults {
    crate::runner::SweepRunner::new(*opts)
        .run(&DetectorConfig::all_for_sweep())
        .unwrap_or_else(|e| panic!("checkpoint-less sweep cannot fail: {e}"))
}

/// Ablation study over the design choices DESIGN.md calls out: problem
/// detections over injected runs with each mechanism individually
/// altered, against the shipping configuration.
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn ablations(
    scale: ScaleClass,
    seed: u64,
    injections: usize,
) -> Result<FigureTable, CordError> {
    use cord_core::CordDetector;
    use cord_inject::Campaign;
    use cord_sim::engine::Machine;

    type Variant = (&'static str, fn() -> CordConfig);
    let variants: [Variant; 5] = [
        ("CORD", CordConfig::paper),
        ("1 ts/line", || CordConfig::paper().single_timestamp()),
        ("no mem-ts", || CordConfig::paper().without_mem_ts()),
        ("no data-upd", || {
            let mut c = CordConfig::paper();
            c.policy = c.policy.update_on_data_races(false);
            c
        }),
        ("inc-always", || {
            let mut c = CordConfig::paper();
            c.policy = c.policy.increment_on_all_accesses(true);
            c
        }),
    ];
    let apps = [
        cord_workloads::AppKind::Barnes,
        cord_workloads::AppKind::Cholesky,
        cord_workloads::AppKind::Ocean,
        cord_workloads::AppKind::Radix,
        cord_workloads::AppKind::Volrend,
        cord_workloads::AppKind::WaterN2,
    ];
    let machine = MachineConfig::paper_4core();
    let mut rows = Vec::new();
    for app in apps {
        let w = kernel(app, scale, 4, seed);
        let campaign = Campaign::plan(&machine, &w, injections, seed ^ app as u64)?;
        let mut vals = Vec::new();
        for (_, mk) in &variants {
            let mut found = 0u64;
            for (i, plan) in campaign.plans().enumerate() {
                let det = CordDetector::new(mk(), 4, machine.cores);
                let m = Machine::new(machine.clone(), &w, det, seed + i as u64, plan);
                let (_, det) = m.run()?;
                found += u64::from(!det.races().is_empty());
            }
            vals.push(Some(found as f64));
        }
        rows.push((app.name().to_string(), vals));
    }
    Ok(FigureTable {
        title: "Ablations: injected runs with >=1 detection, per configuration".into(),
        columns: variants.iter().map(|(n, _)| n.to_string()).collect(),
        rows,
        unit: Unit::Count,
        note: "1 ts/line = Fig 2; no mem-ts = Fig 6 (may FALSELY detect!); \
               no data-upd = Fig 3 ablation; inc-always = Fig 5"
            .into(),
    }
    .with_average())
}

/// Cache and bus behaviour of the baseline machine per application (the
/// methodology backdrop of §3.1: reduced caches preserve realistic hit
/// rates and bus traffic).
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn cache_stats(scale: ScaleClass, seed: u64) -> Result<String, CordError> {
    let mut out = String::from("== Baseline cache/bus behaviour (paper 4-core machine) ==\n");
    out.push_str(&format!(
        "{:12} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9}\n",
        "app", "accesses", "L1 hit%", "L2 hit%", "c2c%", "mem%", "cycles"
    ));
    for app in all_apps() {
        let w = kernel(app, scale, 4, seed);
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
        let s = h.run_baseline(&w)?.stats;
        let total = s.total_accesses() as f64;
        out.push_str(&format!(
            "{:12} {:>9} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9}\n",
            app.name(),
            s.total_accesses(),
            100.0 * s.l1_hits as f64 / total,
            100.0 * s.l2_hits as f64 / total,
            100.0 * s.sibling_fills as f64 / total,
            100.0 * s.memory_fills as f64 / total,
            s.cycles,
        ));
    }
    Ok(out)
}

/// Extension (§5 comparison point): timestamp-bus traffic of full CORD
/// vs. a record-only configuration (order recording without DRD, like
/// Xu et al.'s flight data recorder).
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn record_only_cost(scale: ScaleClass, seed: u64) -> Result<FigureTable, CordError> {
    let mut rows = Vec::new();
    for app in all_apps() {
        let w = kernel(app, scale, 4, seed);
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
        let full = h.run_cord(&w, &CordConfig::paper())?;
        let rec = h.run_cord(&w, &CordConfig::paper().record_only())?;
        rows.push((
            app.name().to_string(),
            vec![
                Some(full.sim.stats.observer_addr_transactions as f64),
                Some(rec.sim.stats.observer_addr_transactions as f64),
                Some(rec.log_bytes as f64 / full.log_bytes.max(1) as f64),
            ],
        ));
    }
    Ok(FigureTable {
        title: "Extension: timestamp-bus transactions, full CORD vs record-only".into(),
        columns: vec![
            "full txns".into(),
            "rec-only txns".into(),
            "log ratio".into(),
        ],
        rows,
        unit: Unit::Count,
        note: "record-only drops the race-check broadcasts; the order log is unchanged in role"
            .into(),
    }
    .with_average())
}

/// Sensitivity extension: problem detection as the L2 capacity backing
/// the timestamp storage shrinks or grows (the paper fixes 32 KB; this
/// sweep shows how much of Figure 14's story is capacity).
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn cache_size_sweep(seed: u64, injections: usize) -> Result<FigureTable, CordError> {
    use cord_core::CordDetector;
    use cord_inject::Campaign;
    use cord_sim::config::CacheGeometry;
    use cord_sim::engine::Machine;

    let sizes_kb = [8u64, 16, 32, 64, 128];
    let apps = [
        cord_workloads::AppKind::Barnes,
        cord_workloads::AppKind::Cholesky,
        cord_workloads::AppKind::Raytrace,
        cord_workloads::AppKind::WaterN2,
    ];
    let mut rows = Vec::new();
    for app in apps {
        let w = kernel(app, ScaleClass::Small, 4, seed);
        let base_machine = MachineConfig::paper_4core();
        let campaign = Campaign::plan(&base_machine, &w, injections, seed ^ app as u64)?;
        let mut vals = Vec::new();
        for &kb in &sizes_kb {
            let mut mc = MachineConfig::paper_4core();
            mc.l2 = CacheGeometry::new(kb * 1024, 8);
            mc.l1 = CacheGeometry::new((kb * 1024 / 4).max(4096), 4);
            let mut found = 0u64;
            for (i, plan) in campaign.plans().enumerate() {
                let det = CordDetector::new(CordConfig::paper(), 4, mc.cores);
                let m = Machine::new(mc.clone(), &w, det, seed + i as u64, plan);
                let (_, det) = m.run()?;
                found += u64::from(!det.races().is_empty());
            }
            vals.push(Some(found as f64));
        }
        rows.push((app.name().to_string(), vals));
    }
    Ok(FigureTable {
        title: "Extension: CORD detections vs L2 capacity (counts over injected runs)".into(),
        columns: sizes_kb.iter().map(|kb| format!("L2={kb}KB")).collect(),
        rows,
        unit: Unit::Count,
        note: "timestamp storage scales with the cache; larger caches keep more history".into(),
    }
    .with_average())
}

/// Sensitivity extension: CORD across thread counts (the scalar scheme's
/// state is thread-count independent, §2.4 — detection should not
/// collapse as threads grow toward the core count).
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn thread_sweep(seed: u64, injections: usize) -> Result<FigureTable, CordError> {
    use cord_core::CordDetector;
    use cord_inject::Campaign;
    use cord_sim::engine::Machine;

    let counts = [2usize, 4, 6, 8];
    let apps = [
        cord_workloads::AppKind::Cholesky,
        cord_workloads::AppKind::Ocean,
        cord_workloads::AppKind::Radix,
        cord_workloads::AppKind::Volrend,
    ];
    let machine = MachineConfig::paper_4core();
    let mut rows = Vec::new();
    for app in apps {
        let mut vals = Vec::new();
        for &threads in &counts {
            let w = kernel(app, ScaleClass::Tiny, threads, seed);
            let campaign = Campaign::plan(&machine, &w, injections, seed ^ app as u64)?;
            let mut found = 0u64;
            for (i, plan) in campaign.plans().enumerate() {
                let det = CordDetector::new(CordConfig::paper(), threads, machine.cores);
                let m = Machine::new(machine.clone(), &w, det, seed + i as u64, plan);
                let (_, det) = m.run()?;
                found += u64::from(!det.races().is_empty());
            }
            vals.push(Some(found as f64));
        }
        rows.push((app.name().to_string(), vals));
    }
    Ok(FigureTable {
        title: "Extension: CORD detections vs thread count (counts over injected runs)".into(),
        columns: counts.iter().map(|c| format!("{c} thr")).collect(),
        rows,
        unit: Unit::Count,
        note: "scalar state is thread-count independent (§2.4); >4 threads time-multiplex".into(),
    }
    .with_average())
}

/// One measured point of the cores-scaling curve: one coherence backend
/// at one core count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Backend name (`"snooping"` or `"directory"`).
    pub backend: String,
    /// Core count (the sweep axis: 4/8/16/32).
    pub cores: usize,
    /// Mean clean-run execution cycles over the probe apps.
    pub mean_cycles: f64,
    /// Injected races found across the campaign.
    pub detections: u64,
    /// Injected runs executed.
    pub injected_runs: u64,
    /// Directory home-bank lookups (0 under snooping).
    pub directory_lookups: u64,
    /// Cycles requests waited for busy home banks (0 under snooping).
    pub directory_home_wait: u64,
    /// 16-bit comparisons audited through the hardware encoding.
    pub window16_audits: u64,
    /// Audited comparisons that disagreed with the wide reference.
    pub window16_mismatches: u64,
    /// 2^16 epoch boundaries crossed by committed clock updates.
    pub clock_rollovers: u64,
    /// Skew model: ordered clock pairs whose windowed D-sync test
    /// diverges from the unbounded reference at this core count.
    pub skew_divergent_pairs: u64,
    /// Skew model: fastest-to-slowest clock spread, in ticks.
    pub skew_spread: u64,
}

/// The cores-scaling characterization: every backend × core-count
/// combination, plus the skew model's window-16 divergence counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// Base seed of every run.
    pub seed: u64,
    /// Injected runs per app per point.
    pub injections: usize,
    /// The D window used by the detector and the skew model.
    pub d: u16,
    /// One point per backend × core count, snooping first.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// The `BENCH_scaling.json` document.
    pub fn to_json(&self) -> cord_json::Json {
        use cord_json::{obj, Json, ToJson};
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                obj(vec![
                    ("backend", Json::Str(p.backend.clone())),
                    ("cores", (p.cores as u64).to_json()),
                    ("mean_cycles", p.mean_cycles.to_json()),
                    ("detections", p.detections.to_json()),
                    ("injected_runs", p.injected_runs.to_json()),
                    ("directory_lookups", p.directory_lookups.to_json()),
                    ("directory_home_wait", p.directory_home_wait.to_json()),
                    ("window16_audits", p.window16_audits.to_json()),
                    ("window16_mismatches", p.window16_mismatches.to_json()),
                    ("clock_rollovers", p.clock_rollovers.to_json()),
                    ("skew_divergent_pairs", p.skew_divergent_pairs.to_json()),
                    ("skew_spread", p.skew_spread.to_json()),
                ])
            })
            .collect();
        obj(vec![
            ("bench", Json::Str("cores_scaling".into())),
            ("seed", self.seed.to_json()),
            ("injections_per_app", (self.injections as u64).to_json()),
            ("d", u64::from(self.d).to_json()),
            ("points", Json::Array(points)),
        ])
    }

    /// Text rendering: one table row per metric × backend, one column
    /// per core count.
    pub fn table(&self) -> FigureTable {
        let cores: Vec<usize> = {
            let mut cs: Vec<usize> = self.points.iter().map(|p| p.cores).collect();
            cs.sort_unstable();
            cs.dedup();
            cs
        };
        let by = |backend: &str, f: &dyn Fn(&ScalingPoint) -> f64| -> Vec<Option<f64>> {
            cores
                .iter()
                .map(|&c| {
                    self.points
                        .iter()
                        .find(|p| p.backend == backend && p.cores == c)
                        .map(f)
                })
                .collect()
        };
        let mut rows = Vec::new();
        for b in ["snooping", "directory"] {
            rows.push((format!("{b} cyc"), by(b, &|p| p.mean_cycles)));
            rows.push((format!("{b} found"), by(b, &|p| p.detections as f64)));
        }
        rows.push((
            "dir wait".to_string(),
            by("directory", &|p| p.directory_home_wait as f64),
        ));
        rows.push((
            "w16 miss".to_string(),
            by("snooping", &|p| p.window16_mismatches as f64),
        ));
        rows.push((
            "skew div".to_string(),
            by("snooping", &|p| p.skew_divergent_pairs as f64),
        ));
        FigureTable {
            title: "Extension: cores scaling (4/8/16/32) per coherence backend".into(),
            columns: cores.iter().map(|c| format!("{c} cores")).collect(),
            rows,
            unit: Unit::Count,
            note: "window-16 divergences begin once clock spread passes WINDOW - D + 1".into(),
        }
    }
}

/// Skew model of a wide machine: thread `i` synchronizes once every
/// `i + 1` rounds, so after `rounds` rounds its clock is about
/// `rounds / (i + 1)`. Returns how many ordered pairs of those clocks
/// the windowed D-sync test gets wrong, and the fastest-to-slowest
/// spread. The divergent-pair count is 0 at 4 cores and grows once the
/// spread passes `WINDOW - d + 1` — the mis-synchronization onset the
/// scaling curve characterizes.
fn skew_divergence(cores: usize, rounds: u64, d: u16) -> (u64, u64) {
    use cord_clocks::window16::sync_audit_agrees;
    let clocks: Vec<u64> = (0..cores).map(|i| rounds / (i as u64 + 1)).collect();
    let mut divergent = 0u64;
    for &a in &clocks {
        for &b in &clocks {
            if a != b && !sync_audit_agrees(a, b, d) {
                divergent += 1;
            }
        }
    }
    let spread = clocks[0] - clocks[cores - 1];
    (divergent, spread)
}

/// The cores-scaling sweep: both coherence backends at 4/8/16/32 cores,
/// measuring execution cycles, detection parity under injection,
/// directory occupancy, and the 16-bit clock machinery's rollover and
/// mismatch counters as synchronization widens.
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn cores_scaling(seed: u64, injections: usize) -> Result<ScalingReport, CordError> {
    use cord_core::CordDetector;
    use cord_inject::Campaign;
    use cord_sim::config::CoherenceKind;
    use cord_sim::engine::Machine;

    const D: u16 = 16;
    const SKEW_ROUNDS: u64 = 40_000;
    let core_counts = [4usize, 8, 16, 32];
    let backends = [
        ("snooping", CoherenceKind::SnoopingBus),
        ("directory", CoherenceKind::Directory),
    ];
    let apps = [
        cord_workloads::AppKind::Fft,
        cord_workloads::AppKind::WaterN2,
    ];
    let mut points = Vec::new();
    for (name, kind) in backends {
        for &cores in &core_counts {
            let mc = MachineConfig::paper_4core()
                .with_cores(cores)
                .with_coherence(kind);
            let mut p = ScalingPoint {
                backend: name.to_string(),
                cores,
                mean_cycles: 0.0,
                detections: 0,
                injected_runs: 0,
                directory_lookups: 0,
                directory_home_wait: 0,
                window16_audits: 0,
                window16_mismatches: 0,
                clock_rollovers: 0,
                skew_divergent_pairs: 0,
                skew_spread: 0,
            };
            let mut cycles_sum = 0u64;
            for app in apps {
                // One thread per core: widening the machine widens the
                // workload with it.
                let w = kernel(app, ScaleClass::Tiny, cores, seed);
                let det = CordDetector::new(CordConfig::paper(), cores, mc.cores);
                let m = Machine::new(mc.clone(), &w, det, seed, InjectionPlan::none());
                let (out, det) = m.run()?;
                cycles_sum += out.stats.cycles;
                p.directory_lookups += out.stats.directory_lookups;
                p.directory_home_wait += out.stats.directory_home_wait;
                let cs = det.stats();
                p.window16_audits += cs.window16_audits;
                p.window16_mismatches += cs.window16_mismatches;
                p.clock_rollovers += cs.clock_rollovers;
                let campaign = Campaign::plan(&mc, &w, injections, seed ^ app as u64)?;
                for (i, plan) in campaign.plans().enumerate() {
                    let det = CordDetector::new(CordConfig::paper(), cores, mc.cores);
                    let m = Machine::new(mc.clone(), &w, det, seed + i as u64, plan);
                    let (_, det) = m.run()?;
                    p.injected_runs += 1;
                    p.detections += u64::from(!det.races().is_empty());
                }
            }
            p.mean_cycles = cycles_sum as f64 / apps.len() as f64;
            let (divergent, spread) = skew_divergence(cores, SKEW_ROUNDS, D);
            p.skew_divergent_pairs = divergent;
            p.skew_spread = spread;
            points.push(p);
        }
    }
    Ok(ScalingReport {
        seed,
        injections,
        d: D,
        points,
    })
}

/// The §2.5 directory extension: CORD overhead and detection parity
/// under directory coherence vs. the paper's snooping machine.
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn directory_extension(scale: ScaleClass, seed: u64) -> Result<FigureTable, CordError> {
    let mut rows = Vec::new();
    for app in all_apps() {
        let w = kernel(app, scale, 4, seed);
        let snoop = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
        let dir = ExperimentHarness::new(MachineConfig::paper_4core_directory()).with_seed(seed);
        let s = snoop.overhead(&w, &CordConfig::paper())?;
        let d = dir.overhead(&w, &CordConfig::paper())?;
        rows.push((app.name().to_string(), vec![Some(s), Some(d)]));
    }
    Ok(FigureTable {
        title: "Extension (§2.5): CORD overhead under snooping vs directory coherence".into(),
        columns: vec!["snooping".into(), "directory".into()],
        rows,
        unit: Unit::Ratio,
        note: "the mechanism is coherence-agnostic; only indirection latency differs".into(),
    }
    .with_average())
}

/// Replay-concurrency analysis (§2.7.1 future work): how many
/// logical-time waves each app's log contains and the idealized parallel
/// replay speedup.
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing run.
pub fn replay_concurrency(scale: ScaleClass, seed: u64) -> Result<FigureTable, CordError> {
    let mut rows = Vec::new();
    for app in all_apps() {
        let w = kernel(app, scale, 4, seed);
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(seed);
        let out = h.run_cord(&w, &CordConfig::paper())?;
        let p = cord_core::replay::replay_parallelism(&out.order_log);
        rows.push((app.name().to_string(), vec![Some(p.mean_width)]));
    }
    Ok(FigureTable {
        title: "Idealized parallel-replay speedup (mean segments per wave)".into(),
        columns: vec!["speedup".into()],
        rows,
        unit: Unit::Ratio,
        note: "§2.7.1: equal-clock segments are conflict-free and can replay concurrently".into(),
    }
    .with_average())
}

/// Lock-free workload family (post-paper sync vocabulary): per app,
/// the races CORD reports on the clean run (must be zero — the kernels
/// are race-free by construction) and the §3.4-style injection yield
/// on each coherence backend: how many removable-sync removals produce
/// a ground-truth race, and how many of those CORD itself reports.
///
/// # Errors
///
/// Returns the [`CordError`] of the first failing clean run; injected
/// runs are allowed to abort (removals may deadlock) and are skipped.
pub fn lockfree_family(scale: ScaleClass, seed: u64) -> Result<FigureTable, CordError> {
    use cord_core::CordDetector;
    use cord_fuzz::truthhb::{racy_words, Tandem};
    use cord_inject::count_instances;
    use cord_sim::config::{CoherenceKind, Watchdog};
    use cord_sim::engine::Machine;
    use std::collections::BTreeSet;

    let backends = [CoherenceKind::SnoopingBus, CoherenceKind::Directory];
    let mut rows = Vec::new();
    for app in lockfree_apps() {
        let w = kernel(app, scale, 4, seed);
        let threads = w.num_threads();
        let mut clean_races = 0u64;
        let mut cols: Vec<Option<f64>> = Vec::new();
        for backend in backends {
            let cfg = MachineConfig::paper_4core()
                .with_coherence(backend)
                .with_watchdog(Watchdog::new(200_000_000, 20_000_000));
            let det = CordDetector::new(CordConfig::paper(), threads, cfg.cores);
            let m = Machine::new(
                cfg.clone(),
                &w,
                Tandem::new(det),
                seed,
                InjectionPlan::none(),
            );
            let (_, tandem) = m.run()?;
            clean_races += tandem.det.races().len() as u64;
            let counts = count_instances(&cfg, &w, seed)?;
            let mut truth_racy = 0u64;
            let mut caught = 0u64;
            for n in 0..counts.acquires {
                let det = CordDetector::new(CordConfig::paper(), threads, cfg.cores);
                let m = Machine::new(
                    cfg.clone(),
                    &w,
                    Tandem::new(det),
                    seed,
                    InjectionPlan::remove_nth(n),
                );
                let Ok((_, tandem)) = m.run() else { continue };
                if racy_words(&tandem.rec.events, threads, &BTreeSet::new()).is_empty() {
                    continue;
                }
                truth_racy += 1;
                if !tandem.det.races().is_empty() {
                    caught += 1;
                }
            }
            cols.push(Some(truth_racy as f64));
            cols.push(Some(caught as f64));
        }
        cols.insert(0, Some(clean_races as f64));
        rows.push((app.name().to_string(), cols));
    }
    Ok(FigureTable {
        title: "Lock-free family: clean-run reports and injection yield per backend".into(),
        columns: vec![
            "clean races".into(),
            "racy inj (snoop)".into(),
            "caught (snoop)".into(),
            "racy inj (dir)".into(),
            "caught (dir)".into(),
        ],
        rows,
        unit: Unit::Count,
        note: "clean races must be 0; every app must catch >=1 injected race per backend".into(),
    })
}

/// Non-completed runs of a sweep, per app and status — the injection
/// campaign's casualty report. Empty string when every run completed.
pub fn failure_summary(results: &SweepResults) -> String {
    let total_failed: usize = results.apps.iter().map(|a| a.non_completed().count()).sum();
    let dry_failures = results
        .apps
        .iter()
        .filter(|a| a.dry_run_error.is_some())
        .count();
    if total_failed == 0 && dry_failures == 0 {
        return String::new();
    }
    let mut out = String::from("== Non-completed injection runs ==\n");
    out.push_str(&format!(
        "{:12} {:>9} {:>10} {:>9} {:>9} {:>9}  detail\n",
        "app", "completed", "deadlocked", "timed-out", "panicked", "abandoned"
    ));
    for app in &results.apps {
        if let Some(err) = &app.dry_run_error {
            out.push_str(&format!("{:12} dry run failed: {err}\n", app.app));
            continue;
        }
        let failed = app.non_completed().count();
        if failed == 0 {
            continue;
        }
        let count = |kind: &str| {
            app.non_completed()
                .filter(|r| r.status.kind() == kind)
                .count()
        };
        let first = app
            .non_completed()
            .next()
            .map(|r| format!("{} -> {}", r.target, r.status.kind()))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:12} {:>9} {:>10} {:>9} {:>9} {:>9}  e.g. {first}\n",
            app.app,
            app.completed().count(),
            count("deadlocked"),
            count("timed-out"),
            count("panicked"),
            count("abandoned"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ScaleClassOpt;

    fn tiny_sweep() -> SweepResults {
        default_sweep(&SweepOptions {
            injections_per_app: 3,
            scale: ScaleClassOpt::Tiny,
            threads: 4,
            seed: 5,
            ..SweepOptions::default()
        })
    }

    #[test]
    fn figures_render_and_average() {
        let s = tiny_sweep();
        for fig in [
            fig10(&s),
            fig12(&s),
            fig13(&s),
            fig14(&s),
            fig15(&s),
            fig16(&s),
            fig17(&s),
        ] {
            let text = fig.to_string();
            assert!(text.contains("Average"));
            assert_eq!(fig.rows.len(), 13); // 12 apps + average
        }
    }

    #[test]
    fn area_numbers_match_paper() {
        let t = area_table();
        let cord = t.rows[0].1[0].unwrap();
        let vc4 = t.rows[2].1[0].unwrap();
        assert!((cord - 0.19).abs() < 0.01);
        assert!((vc4 - 0.38).abs() < 0.01);
    }

    #[test]
    fn table1_lists_all_apps() {
        let t = table1(ScaleClass::Tiny);
        for app in all_apps() {
            assert!(t.contains(app.name()), "missing {}", app.name());
        }
    }

    #[test]
    fn replay_check_passes_everywhere() {
        let t = replay_check(ScaleClass::Tiny, 11, 2);
        for (app, vals) in &t.rows {
            assert_eq!(vals[0], Some(1.0), "{app} replay failed");
        }
    }

    #[test]
    fn logsize_is_positive_and_modest() {
        let t = logsize(ScaleClass::Tiny, 3).expect("clean runs complete");
        for (app, vals) in &t.rows {
            let bytes = vals[0].unwrap();
            assert!(bytes > 0.0, "{app} produced no log");
            assert!(
                bytes < 1024.0 * 1024.0,
                "{app} log exceeds 1MB at tiny scale"
            );
        }
    }

    #[test]
    fn failure_summary_is_empty_for_clean_sweeps() {
        let s = tiny_sweep();
        assert!(failure_summary(&s).is_empty());
    }
}
