//! Experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4).
//!
//! * [`configs`] — the named detector configurations the paper compares
//!   (CORD at each `D`, the vector-clock InfCache/L2Cache/L1Cache
//!   variants, the Ideal oracle) and the machine each runs on.
//! * [`sweep`] — the §3.4 injection sweep data model: per application,
//!   a uniform campaign of synchronization removals, every
//!   configuration run on every injected run, and a record of who
//!   found what.
//! * [`runner`] — the sweep session API: [`SweepRunner`] builds a
//!   sweep once (worker count, app subset, checkpoint path, progress
//!   callback) and executes the (app × run) matrix across a
//!   work-stealing pool, bit-identical to a serial sweep.
//! * [`figures`] — turns sweep results into the paper's metrics
//!   (problem detection rate, raw race detection rate, manifestation
//!   rate, execution-time overhead, log sizes, area model) and renders
//!   them as text tables.
//! * [`checkpoint`] — checkpoint/resume for interrupted sweeps: partial
//!   results are persisted after every app and reloaded (keyed by an
//!   options hash) on restart, bit-identical to an uninterrupted run.
//! * [`shard`] — the multi-process campaign driver behind the `shard`
//!   binary: a coordinator partitions a fuzz campaign or injection
//!   sweep into round-robin shards, supervises one worker process per
//!   shard (heartbeats, retry with backoff, optional chaos kills), and
//!   merges the shards' durable checkpoints into outputs that are
//!   byte-identical to a single-process run.
//!
//! The `figures` binary (`cargo run -p cord-bench --bin figures`) is the
//! command-line entry point; see EXPERIMENTS.md for the paper-vs-measured
//! record.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod checkpoint;
pub mod configs;
pub mod figures;
pub(crate) mod obs;
pub mod runner;
pub mod shard;
pub mod sweep;

pub use checkpoint::{options_hash, Checkpoint};
pub use configs::{DetectorConfig, DetectorEnum};
pub use runner::{SweepProgress, SweepRunner};
pub use sweep::{AppSweep, RunRecord, RunStatus, SweepOptions, SweepResults};
