//! Experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4).
//!
//! * [`configs`] — the named detector configurations the paper compares
//!   (CORD at each `D`, the vector-clock InfCache/L2Cache/L1Cache
//!   variants, the Ideal oracle) and the machine each runs on.
//! * [`sweep`] — the §3.4 injection sweep: per application, plan a
//!   uniform campaign of synchronization removals, run every
//!   configuration on every injected run, and record who found what.
//! * [`figures`] — turns sweep results into the paper's metrics
//!   (problem detection rate, raw race detection rate, manifestation
//!   rate, execution-time overhead, log sizes, area model) and renders
//!   them as text tables.
//!
//! The `figures` binary (`cargo run -p cord-bench --bin figures`) is the
//! command-line entry point; see EXPERIMENTS.md for the paper-vs-measured
//! record.

#![warn(missing_docs)]

pub mod configs;
pub mod figures;
pub mod sweep;

pub use configs::DetectorConfig;
pub use sweep::{AppSweep, RunRecord, SweepOptions, SweepResults};
