//! Sweep-side observability: the shared sink behind
//! [`SweepRunner::trace_dir`](crate::runner::SweepRunner::trace_dir) and
//! [`SweepRunner::metrics_out`](crate::runner::SweepRunner::metrics_out).
//!
//! The sink aggregates three streams the sweep produces:
//!
//! * **Run-event traces** — each completed simulation carries a bounded
//!   [`TraceHandle`] ring; the snapshot is written as one JSON file per
//!   (app, run, configuration) cell into the trace directory.
//! * **Unified metrics** — per-run [`SimStats`](cord_sim::stats::SimStats)
//!   and detector counters accumulate into one
//!   [`MetricsRegistry`], merged with the pool's batch snapshot and the
//!   sweep profile at the end of the sweep.
//! * **Sweep profile** — per-job wall-clock, queue wait (measured from
//!   batch submission, an upper bound that includes sibling jobs'
//!   service time), and per-worker checkpoint-flush time.
//!
//! Everything here is out-of-band: enabling it never changes
//! [`SweepResults`](crate::sweep::SweepResults) or checkpoint bytes.

use cord_json::{obj, Json, ToJson};
use cord_obs::{Histogram, MetricsRegistry, SweepProfile, TraceHandle};
use cord_pool::{lock_unpoisoned, BatchProgress};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Default per-run trace ring capacity (events kept per simulation;
/// older events drop first and are counted in the trace's `dropped`).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Thread-shared collector for traces, metrics, and profile samples.
/// One sink serves a whole sweep; workers call into it concurrently.
pub(crate) struct ObsSink {
    trace_dir: Option<PathBuf>,
    trace_capacity: usize,
    registry: Mutex<MetricsRegistry>,
    profile: Mutex<SweepProfile>,
    last_batch: Mutex<Option<BatchProgress>>,
    io_err: Mutex<Option<io::Error>>,
}

impl ObsSink {
    pub fn new(trace_dir: Option<PathBuf>, trace_capacity: usize) -> ObsSink {
        ObsSink {
            trace_dir,
            trace_capacity: trace_capacity.max(1),
            registry: Mutex::new(MetricsRegistry::default()),
            profile: Mutex::new(SweepProfile::default()),
            last_batch: Mutex::new(None),
            io_err: Mutex::new(None),
        }
    }

    /// `true` when per-run event traces should be captured at all.
    pub fn tracing(&self) -> bool {
        self.trace_dir.is_some()
    }

    /// Ring capacity for per-run trace handles.
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity
    }

    /// Folds one run's metrics into the sweep aggregate.
    pub fn merge(&self, reg: &MetricsRegistry) {
        lock_unpoisoned(&self.registry).merge(reg);
    }

    /// Records one job's execution time and queue wait.
    pub fn record_job(&self, run: Duration, wait: Duration) {
        let mut p = lock_unpoisoned(&self.profile);
        p.job_run.record(run.as_secs_f64());
        p.queue_wait.record(wait.as_secs_f64());
    }

    /// Records a checkpoint flush performed by the calling thread.
    pub fn record_flush(&self, secs: f64) {
        let worker = std::thread::current().name().unwrap_or("main").to_string();
        lock_unpoisoned(&self.profile).record_flush(&worker, secs);
    }

    /// Folds one run's per-access detector latency histogram into the
    /// sweep-wide distribution (pointwise bucket merge).
    pub fn record_access_latency(&self, hist: &Histogram) {
        lock_unpoisoned(&self.profile).access_latency.merge(hist);
    }

    /// Keeps the most recent pool batch snapshot (folded into the
    /// metrics at finalization).
    pub fn record_batch(&self, bp: &BatchProgress) {
        *lock_unpoisoned(&self.last_batch) = Some(*bp);
    }

    /// Writes one run's trace snapshot into the trace directory as
    /// `{app}-r{run_index}-{label}.json`. I/O errors are kept (first
    /// wins) and surfaced by [`finalize`](Self::finalize) — a full disk
    /// must not abort in-flight simulation work.
    pub fn write_trace(&self, app: &str, run_index: usize, label: &str, trace: &TraceHandle) {
        let Some(dir) = &self.trace_dir else { return };
        let res = fs::create_dir_all(dir).and_then(|()| {
            let path = dir.join(format!("{app}-r{run_index}-{label}.json"));
            fs::write(path, trace.to_json().to_string_pretty())
        });
        if let Err(e) = res {
            lock_unpoisoned(&self.io_err).get_or_insert(e);
        }
    }

    /// Snapshot of the raw per-run metrics aggregate — the
    /// deterministic counters merged from completed runs, *before*
    /// [`finalize`](Self::finalize) folds in the timing-dependent
    /// profile and pool-batch samples. The shard worker persists this
    /// into its checkpoint so the coordinator can merge metrics across
    /// shards byte-identically to a serial run.
    pub fn registry_snapshot(&self) -> MetricsRegistry {
        lock_unpoisoned(&self.registry).clone()
    }

    /// Finishes the sweep: folds the profile and last pool snapshot
    /// into the registry, writes the metrics file when requested, and
    /// reports the first deferred trace I/O error.
    pub fn finalize(&self, metrics_out: Option<&Path>) -> io::Result<()> {
        let mut reg = lock_unpoisoned(&self.registry).clone();
        let profile = lock_unpoisoned(&self.profile).clone();
        profile.record_into(&mut reg);
        if let Some(bp) = lock_unpoisoned(&self.last_batch).as_ref() {
            bp.record_into(&mut reg);
        }
        if let Some(path) = metrics_out {
            let doc: Json = obj(vec![
                ("metrics", reg.to_json()),
                ("profile", profile.to_json()),
            ]);
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    fs::create_dir_all(parent)?;
                }
            }
            fs::write(path, doc.to_string_pretty())?;
        }
        match lock_unpoisoned(&self.io_err).take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_json::FromJson;
    use cord_obs::{EventKind, TraceEvent};

    #[test]
    fn sink_aggregates_and_writes_metrics() {
        let dir = std::env::temp_dir().join(format!("cord-obs-test-{}", std::process::id()));
        let sink = ObsSink::new(Some(dir.clone()), 16);
        assert!(sink.tracing());

        let mut reg = MetricsRegistry::default();
        reg.add("sim.cycles", 10);
        sink.merge(&reg);
        sink.merge(&reg);
        sink.record_job(Duration::from_millis(5), Duration::from_millis(1));

        let trace = TraceHandle::bounded(16);
        trace.emit(|| TraceEvent {
            cycle: 3,
            thread: 0,
            kind: EventKind::MemtsBroadcast { count: 1 },
        });
        sink.write_trace("fft", 2, "CORD-D16", &trace);

        let metrics_path = dir.join("metrics.json");
        sink.finalize(Some(&metrics_path)).expect("no I/O errors");

        let doc = Json::parse(&fs::read_to_string(&metrics_path).expect("metrics written"))
            .expect("valid JSON");
        let metrics = MetricsRegistry::from_json(doc.field("metrics").expect("metrics field"))
            .expect("decodes");
        assert_eq!(metrics.counter("sim.cycles"), 20);
        assert_eq!(metrics.counter("sweep.jobs_profiled"), 1);

        let trace_doc = Json::parse(
            &fs::read_to_string(dir.join("fft-r2-CORD-D16.json")).expect("trace written"),
        )
        .expect("valid JSON");
        assert_eq!(
            trace_doc
                .field("events")
                .expect("events")
                .as_array()
                .expect("array")
                .len(),
            1
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
