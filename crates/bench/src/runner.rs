//! The sweep session API: [`SweepRunner`].
//!
//! A sweep is a matrix of (application × injected run) simulations.
//! The old surface was a family of free functions (`sweep_app`,
//! `sweep_all`, `sweep_all_checkpointed`, …) that each re-threaded the
//! same options; `SweepRunner` replaces them with one session object
//! built once and queried many times:
//!
//! ```no_run
//! use cord_bench::configs::DetectorConfig;
//! use cord_bench::runner::SweepRunner;
//! use cord_bench::sweep::SweepOptions;
//!
//! let results = SweepRunner::new(SweepOptions::default())
//!     .jobs(8)
//!     .checkpoint("results/ckpt.json")
//!     .progress(|p| eprintln!("{}/{} runs", p.jobs_done, p.jobs_total))
//!     .run(&DetectorConfig::all_for_sweep())
//!     .expect("checkpoint I/O");
//! # let _ = results;
//! ```
//!
//! # Parallel execution and determinism
//!
//! `jobs(n)` fans the run matrix across a [`cord_pool::Pool`] of `n`
//! workers. Every run already has a deterministic seed derived from
//! its index ([`run_seed`](crate::sweep::run_seed)) and results are
//! collected by submission index, never completion order, so the
//! output of `jobs(8)` is **bit-identical** to `jobs(1)`: same
//! [`SweepResults`], same JSON rendering, same final checkpoint bytes.
//!
//! # Checkpoint compatibility
//!
//! The worker count lives on the runner, not on [`SweepOptions`], so
//! it is structurally excluded from the checkpoint
//! [`options_hash`](crate::checkpoint::options_hash): a checkpoint
//! written by a serial sweep resumes under a parallel one and vice
//! versa. The checkpoint is rewritten after every application
//! completes (all of its runs merged, apps in canonical order), so an
//! interrupted parallel sweep loses at most the in-flight apps.

use crate::checkpoint::{options_hash, Checkpoint};
use crate::configs::DetectorConfig;
use crate::obs::{ObsSink, DEFAULT_TRACE_CAPACITY};
use crate::sweep::{
    plan_campaign, run_config_impl, run_injection, run_seed, sweep_workload, AppSweep, Detection,
    RunObsCtx, RunRecord, RunStatus, SweepOptions, SweepResults,
};
use cord_core::CordError;
use cord_inject::InjectionTarget;
use cord_pool::{lock_unpoisoned, BatchProgress, Pool};
use cord_sim::engine::{InjectionPlan, SimError};
use cord_trace::program::Workload;
use cord_workloads::{all_apps, AppKind};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A progress snapshot delivered to the callback installed with
/// [`SweepRunner::progress`]. Snapshots are emitted from worker
/// threads as jobs finish; the callback must be `Send + Sync`.
#[derive(Debug, Clone)]
pub struct SweepProgress {
    /// The sweep phase: `"plan"` while campaigns are being drawn (one
    /// job per app), `"run"` while the injection matrix executes (one
    /// job per injected run).
    pub phase: &'static str,
    /// Jobs finished in the current phase (including failed ones).
    pub jobs_done: usize,
    /// Total jobs in the current phase.
    pub jobs_total: usize,
    /// Jobs in the current phase whose worker captured a panic. Note
    /// that detector panics are caught *inside* the run (becoming
    /// [`RunStatus::Panicked`] records), so this stays zero unless the
    /// sweep machinery itself fails.
    pub jobs_failed: usize,
    /// Applications fully swept so far (resumed ones count).
    pub apps_done: usize,
    /// Applications in this sweep.
    pub apps_total: usize,
    /// Wall-clock time since the current phase's batch started.
    pub elapsed: Duration,
    /// Mean worker utilization over the batch so far, in `[0, 1]`.
    pub utilization: f64,
    /// Estimated time to batch completion, `None` until the first job
    /// finishes.
    pub eta: Option<Duration>,
}

impl SweepProgress {
    fn of(phase: &'static str, bp: &BatchProgress, apps_done: usize, apps_total: usize) -> Self {
        SweepProgress {
            phase,
            jobs_done: bp.done,
            jobs_total: bp.total,
            jobs_failed: bp.failed,
            apps_done,
            apps_total,
            elapsed: bp.elapsed,
            utilization: bp.utilization(),
            eta: bp.eta(),
        }
    }
}

type ProgressFn = Box<dyn Fn(&SweepProgress) + Send + Sync>;

/// A configured sweep session. See the [module docs](self) for the
/// builder walkthrough and the determinism/checkpoint contracts.
pub struct SweepRunner {
    opts: SweepOptions,
    jobs: usize,
    apps: Vec<AppKind>,
    checkpoint: Option<PathBuf>,
    progress: Option<ProgressFn>,
    trace_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_capacity: usize,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("opts", &self.opts)
            .field("jobs", &self.jobs)
            .field("apps", &self.apps)
            .field("checkpoint", &self.checkpoint)
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .field("trace_dir", &self.trace_dir)
            .field("metrics_out", &self.metrics_out)
            .field("trace_capacity", &self.trace_capacity)
            .finish()
    }
}

impl SweepRunner {
    /// A serial (one-worker) session over every application, with no
    /// checkpoint and no progress callback.
    pub fn new(opts: SweepOptions) -> SweepRunner {
        SweepRunner {
            opts,
            jobs: 1,
            apps: all_apps().to_vec(),
            checkpoint: None,
            progress: None,
            trace_dir: None,
            metrics_out: None,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Sets the worker count for [`run`](Self::run). Clamped to at
    /// least 1; results are bit-identical for every value.
    pub fn jobs(mut self, jobs: usize) -> SweepRunner {
        self.jobs = jobs.max(1);
        self
    }

    /// Restricts the sweep to the given applications, in the given
    /// order (default: [`all_apps`] in canonical figure order).
    pub fn apps(mut self, apps: &[AppKind]) -> SweepRunner {
        self.apps = apps.to_vec();
        self
    }

    /// Enables checkpoint/resume against `path`: a matching checkpoint
    /// is loaded and its apps skipped, and the file is atomically
    /// rewritten after each app completes.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> SweepRunner {
        self.checkpoint = Some(path.into());
        self
    }

    /// Installs a progress callback, invoked from worker threads as
    /// jobs finish. Panics inside the callback are swallowed by the
    /// pool; they never disturb the sweep.
    pub fn progress(mut self, cb: impl Fn(&SweepProgress) + Send + Sync + 'static) -> SweepRunner {
        self.progress = Some(Box::new(cb));
        self
    }

    /// Enables per-run event tracing: every completed simulation's
    /// trace ring is written into `dir` as one JSON file per
    /// (app, run, configuration) cell. Tracing is out-of-band — sweep
    /// results and checkpoint bytes are identical with it on or off.
    pub fn trace_dir(mut self, dir: impl Into<PathBuf>) -> SweepRunner {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Writes the sweep's aggregate metrics (simulator and detector
    /// counters summed over completed runs, pool utilization, and the
    /// job/flush wall-clock profile) to `path` as JSON when the sweep
    /// finishes.
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> SweepRunner {
        self.metrics_out = Some(path.into());
        self
    }

    /// Sets the per-run trace ring capacity (events kept per
    /// simulation; oldest drop first). Clamped to at least 1.
    pub fn trace_capacity(mut self, events: usize) -> SweepRunner {
        self.trace_capacity = events.max(1);
        self
    }

    /// The options this session runs with.
    pub fn options(&self) -> &SweepOptions {
        &self.opts
    }

    /// The configured worker count.
    pub fn job_count(&self) -> usize {
        self.jobs
    }

    /// Sweeps every configured application against `configs`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint write fails (simulation
    /// results are never silently dropped), or a
    /// [`CordError::Pool`]-wrapped error if the worker pool loses a
    /// run — which per-run panic capture makes unreachable in
    /// practice.
    pub fn run(&self, configs: &[DetectorConfig]) -> io::Result<SweepResults> {
        self.run_filtered(configs, &self.apps, self.checkpoint.as_deref())
    }

    /// Sweeps a single application (never checkpointed: single-app
    /// sweeps are cheap and the checkpoint hash covers the full app
    /// set).
    pub fn run_app(&self, app: AppKind, configs: &[DetectorConfig]) -> AppSweep {
        let mut results = self
            .run_filtered(configs, &[app], None)
            .unwrap_or_else(|e| panic!("checkpoint-less sweep cannot fail: {e}"));
        results.apps.swap_remove(0)
    }

    /// Runs one detector configuration over one workload — the
    /// innermost cell of the sweep matrix.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] when the simulated machine
    /// deadlocks or its watchdog fires.
    pub fn run_detector(
        &self,
        config: DetectorConfig,
        workload: &Workload,
        seed: u64,
        plan: InjectionPlan,
    ) -> Result<Detection, SimError> {
        run_config_impl(config, workload, seed, plan, &self.opts, None)
    }

    /// Re-executes one recorded run exactly as the sweep did — used to
    /// check that a non-completed run's failure is deterministic.
    pub fn rerun(
        &self,
        app: AppKind,
        target: InjectionTarget,
        run_index: usize,
        configs: &[DetectorConfig],
    ) -> RunRecord {
        let workload = sweep_workload(app, &self.opts);
        run_injection(
            target,
            configs,
            &workload,
            run_seed(&self.opts, run_index),
            &self.opts,
            None,
        )
    }

    fn run_filtered(
        &self,
        configs: &[DetectorConfig],
        apps: &[AppKind],
        checkpoint: Option<&Path>,
    ) -> io::Result<SweepResults> {
        let opts = self.opts;
        let hash = options_hash(&opts, configs);
        // Observability is opt-in and fully out-of-band: with neither
        // output configured there is no sink, no trace rings are
        // allocated, and every emit site stays on its disabled path.
        let obs: Option<ObsSink> = (self.trace_dir.is_some() || self.metrics_out.is_some())
            .then(|| ObsSink::new(self.trace_dir.clone(), self.trace_capacity));

        // Resume: split a matching checkpoint into apps this sweep
        // covers (kept, skipped) and foreign apps (preserved in the
        // file, excluded from the results).
        let mut resumed: Vec<AppSweep> = Vec::new();
        let mut extra: Vec<AppSweep> = Vec::new();
        if let Some(path) = checkpoint {
            if let Some(cp) = Checkpoint::load_matching(path, hash) {
                for a in cp.apps {
                    if apps.iter().any(|k| k.name() == a.app) {
                        resumed.push(a);
                    } else {
                        extra.push(a);
                    }
                }
            }
        }
        let todo: Vec<AppKind> = apps
            .iter()
            .copied()
            .filter(|k| !resumed.iter().any(|a| a.app == k.name()))
            .collect();

        let pool = Pool::new(self.jobs);
        let apps_total = apps.len();

        // Phase 1: plan the injection campaigns (one watchdogged dry
        // run per app), fanned across the pool.
        let workloads: Vec<Workload> = todo.iter().map(|&a| sweep_workload(a, &opts)).collect();
        let plan_jobs: Vec<_> = todo
            .iter()
            .zip(&workloads)
            .map(|(&app, workload)| move || plan_campaign(workload, app, &opts))
            .collect();
        let planned = match &self.progress {
            Some(cb) => pool.run_ordered_with(plan_jobs, |bp| {
                cb(&SweepProgress::of("plan", bp, resumed.len(), apps_total));
            }),
            None => pool.run_ordered(plan_jobs),
        };

        // A panic while planning is an app-level failure, recorded the
        // same way as a failed dry run.
        let mut state = SweepState {
            resumed,
            extra,
            cells: Vec::with_capacity(todo.len()),
            flush_err: None,
        };
        for (workload, campaign) in workloads.iter().zip(planned) {
            let campaign =
                campaign.unwrap_or_else(|p| Err(format!("campaign planning panicked: {p}")));
            state.cells.push(match campaign {
                Ok(c) => AppCell {
                    name: workload.name().to_string(),
                    acquires: c.counts.acquires,
                    releases: c.counts.releases,
                    dry_run_error: None,
                    remaining: c.targets.len(),
                    records: vec![None; c.targets.len()],
                    targets: c.targets,
                },
                Err(e) => AppCell {
                    name: workload.name().to_string(),
                    acquires: 0,
                    releases: 0,
                    dry_run_error: Some(e),
                    remaining: 0,
                    records: Vec::new(),
                    targets: Vec::new(),
                },
            });
        }

        // Flush once before the run batch so apps with zero runs
        // (failed dry runs) and resumed apps are on disk even if every
        // in-flight job is lost to a crash.
        if let Some(path) = checkpoint {
            if !todo.is_empty() {
                state.flush(path, hash, &opts, apps);
            }
        }

        // Phase 2: the (app × run) injection matrix. Jobs are indexed
        // by (app, run index); each worker writes its record into the
        // app's slot and the app's checkpoint flush happens when its
        // last run lands.
        let matrix: Vec<(usize, usize, InjectionTarget)> = state
            .cells
            .iter()
            .enumerate()
            .flat_map(|(ai, cell)| {
                cell.targets
                    .iter()
                    .enumerate()
                    .map(move |(ri, &target)| (ai, ri, target))
            })
            .collect();
        let shared = Mutex::new(state);
        // Serializes concurrent checkpoint writes (two apps finishing
        // at once) without making `record()` wait on disk I/O.
        let flush_io = Mutex::new(());
        // Queue wait is measured from here; the batch submits right
        // after job construction, so the skew is microseconds.
        let batch_start = Instant::now();
        let run_jobs: Vec<_> = matrix
            .iter()
            .map(|&(ai, ri, target)| {
                let shared = &shared;
                let flush_io = &flush_io;
                let workloads = &workloads;
                let obs = obs.as_ref();
                move || {
                    let job_start = Instant::now();
                    let ctx = obs.map(|sink| RunObsCtx {
                        sink,
                        app: workloads[ai].name(),
                        run_index: ri,
                    });
                    let record = run_injection(
                        target,
                        configs,
                        &workloads[ai],
                        run_seed(&opts, ri),
                        &opts,
                        ctx,
                    );
                    let app_complete = {
                        let mut st = lock_unpoisoned(shared);
                        st.record(ai, ri, record);
                        st.cells[ai].remaining == 0
                    };
                    if app_complete {
                        if let Some(path) = checkpoint {
                            flush_checkpoint(shared, flush_io, path, hash, &opts, apps, obs);
                        }
                    }
                    if let Some(sink) = obs {
                        sink.record_job(job_start.elapsed(), job_start.duration_since(batch_start));
                    }
                }
            })
            .collect();
        let outcomes = if self.progress.is_some() || obs.is_some() {
            pool.run_ordered_with(run_jobs, |bp| {
                if let Some(sink) = &obs {
                    sink.record_batch(bp);
                }
                if let Some(cb) = &self.progress {
                    let apps_done = lock_unpoisoned(&shared).apps_done();
                    cb(&SweepProgress::of("run", bp, apps_done, apps_total));
                }
            })
        } else {
            pool.run_ordered(run_jobs)
        };

        let mut state = shared.into_inner().unwrap_or_else(|p| p.into_inner());

        // A job that panicked before writing its slot (unreachable in
        // practice: `run_injection` catches detector and simulator
        // panics itself) still yields a record, so the matrix stays
        // rectangular and the failure is visible in the results.
        for (&(ai, ri, target), outcome) in matrix.iter().zip(&outcomes) {
            if let Err(p) = outcome {
                if state.cells[ai].records[ri].is_none() {
                    state.record(
                        ai,
                        ri,
                        RunRecord {
                            target,
                            status: RunStatus::Panicked {
                                msg: p.message.clone(),
                            },
                            detail: None,
                            ideal: None,
                            detections: BTreeMap::new(),
                        },
                    );
                    if state.cells[ai].remaining == 0 {
                        if let Some(path) = checkpoint {
                            state.flush(path, hash, &opts, apps);
                        }
                    }
                }
            }
        }

        if let Some(e) = state.flush_err.take() {
            return Err(e);
        }

        if let Some(sink) = &obs {
            sink.finalize(self.metrics_out.as_deref())?;
        }

        let mut out = state.resumed;
        for cell in &state.cells {
            if cell.records.iter().any(Option::is_none) {
                return Err(io::Error::other(CordError::Pool(format!(
                    "worker pool lost {} run(s) of app {}",
                    cell.records.iter().filter(|r| r.is_none()).count(),
                    cell.name
                ))));
            }
            out.push(cell.assemble());
        }
        sort_canonical(&mut out, apps);
        Ok(SweepResults {
            options: opts,
            apps: out,
        })
    }
}

/// One application's in-flight results.
struct AppCell {
    name: String,
    acquires: u64,
    releases: u64,
    dry_run_error: Option<String>,
    remaining: usize,
    records: Vec<Option<RunRecord>>,
    targets: Vec<InjectionTarget>,
}

impl AppCell {
    /// Assembles the finished [`AppSweep`]. Slots a lost worker never
    /// filled (unreachable in practice) surface as panicked runs so a
    /// checkpoint flush can never render a half-empty app.
    fn assemble(&self) -> AppSweep {
        AppSweep {
            app: self.name.clone(),
            acquire_instances: self.acquires,
            release_instances: self.releases,
            dry_run_error: self.dry_run_error.clone(),
            runs: self
                .records
                .iter()
                .zip(&self.targets)
                .map(|(r, &target)| {
                    r.clone().unwrap_or_else(|| RunRecord {
                        target,
                        status: RunStatus::Panicked {
                            msg: "run lost by worker pool (slot never filled)".to_string(),
                        },
                        detail: None,
                        ideal: None,
                        detections: BTreeMap::new(),
                    })
                })
                .collect(),
        }
    }
}

/// Mutex-shared sweep state: results land here from worker threads.
struct SweepState {
    resumed: Vec<AppSweep>,
    extra: Vec<AppSweep>,
    cells: Vec<AppCell>,
    flush_err: Option<io::Error>,
}

impl SweepState {
    fn record(&mut self, ai: usize, ri: usize, record: RunRecord) {
        let cell = &mut self.cells[ai];
        if cell.records[ri].is_none() {
            cell.records[ri] = Some(record);
            cell.remaining -= 1;
        }
    }

    fn apps_done(&self) -> usize {
        self.resumed.len() + self.cells.iter().filter(|c| c.remaining == 0).count()
    }

    /// The apps a checkpoint written now should carry: resumed +
    /// completed, in canonical order, with foreign apps appended.
    fn checkpoint_apps(&self, order: &[AppKind]) -> Vec<AppSweep> {
        let mut out = self.resumed.clone();
        out.extend(
            self.cells
                .iter()
                .filter(|c| c.remaining == 0)
                .map(AppCell::assemble),
        );
        sort_canonical(&mut out, order);
        out.extend(self.extra.iter().cloned());
        out
    }

    /// Atomically rewrites the checkpoint; the first write error is
    /// kept (and returned after the batch) rather than aborting
    /// in-flight simulation work. Serial-path variant of
    /// [`flush_checkpoint`] for when no workers are running.
    fn flush(&mut self, path: &Path, hash: u64, opts: &SweepOptions, order: &[AppKind]) {
        let cp = Checkpoint {
            options_hash: hash,
            options: *opts,
            apps: self.checkpoint_apps(order),
        };
        if let Err(e) = cp.store(path) {
            self.flush_err.get_or_insert(e);
        }
    }
}

/// Worker-side checkpoint flush: snapshots [`SweepState::checkpoint_apps`]
/// under the state lock, then serializes and writes the file with the
/// lock *released*, so a slow disk never blocks sibling workers'
/// `record()` calls. `io_lock` serializes concurrent flushes (they
/// share a temp file) and guarantees later snapshots land later, so
/// the file on disk is always the most complete one.
fn flush_checkpoint(
    shared: &Mutex<SweepState>,
    io_lock: &Mutex<()>,
    path: &Path,
    hash: u64,
    opts: &SweepOptions,
    order: &[AppKind],
    obs: Option<&ObsSink>,
) {
    let started = Instant::now();
    let _io = lock_unpoisoned(io_lock);
    let apps = lock_unpoisoned(shared).checkpoint_apps(order);
    let cp = Checkpoint {
        options_hash: hash,
        options: *opts,
        apps,
    };
    if let Err(e) = cp.store(path) {
        lock_unpoisoned(shared).flush_err.get_or_insert(e);
    }
    // The sample includes waiting on the I/O lock: that wait is real
    // flush latency the worker could have spent running jobs.
    if let Some(sink) = obs {
        sink.record_flush(started.elapsed().as_secs_f64());
    }
}

/// Sorts apps into the sweep's canonical order (unknown names last,
/// preserving their relative order).
fn sort_canonical(apps: &mut [AppSweep], order: &[AppKind]) {
    apps.sort_by_key(|a| {
        order
            .iter()
            .position(|k| k.name() == a.app)
            .unwrap_or(usize::MAX)
    });
}
