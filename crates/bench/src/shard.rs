//! Multi-process sharded campaigns: the cord-bench side of cord-shard.
//!
//! The `shard` binary runs one campaign (a fuzz campaign or an
//! injection sweep) as a *coordinator* process plus N supervised
//! *worker* processes. This module holds everything both halves share:
//!
//! * [`CampaignSpec`] — the deterministic description of the campaign,
//!   persisted durably as `spec.json` in the campaign directory. Its
//!   [`spec_hash`](CampaignSpec::spec_hash) covers exactly the fields
//!   that influence results (seeds, counts, options, shard count) and
//!   excludes supervision knobs (worker counts, chaos, retries,
//!   timeouts), so a resume may change how the campaign is *driven*
//!   but never what it *computes*.
//! * The on-disk layout ([`CampaignDir`]): `spec.json`, `plan.json`
//!   (sweeps), a `DRAIN` marker, `shards/<s>/{checkpoint.json,
//!   heartbeat,log,DONE}`, and `merged/` outputs.
//! * The worker loop ([`worker_main`]): derive the shard's global
//!   indices from pure arithmetic ([`cord_shard::ShardPlan`]), resume
//!   past whatever its durable checkpoint already holds, run a chunk,
//!   append to the checkpoint crash-atomically, beat the heartbeat,
//!   repeat; finally write the `DONE` marker.
//! * The coordinator ([`coordinate`]): write/verify the spec, plan
//!   sweeps once (workers share one plan, so target sets can never
//!   diverge), wire [`cord_shard::supervise`] to real worker
//!   processes, then merge shard checkpoints into byte-stable outputs.
//!
//! # Byte-identity
//!
//! Merged `report.txt` / `results.json` / `metrics.json` are
//! byte-identical across `--shards 1`, `--shards 8`, and any
//! interleaving of worker kills and resumes, because every case/run
//! keeps its campaign-global index, its seed is a pure function of
//! that index, and merging sorts by it. Wall-clock and supervision
//! data (retries, backoff, per-shard timings) land in a separate
//! `supervision.json`, which is *expected* to differ run to run.
//!
//! A worker killed between its final checkpoint write and its `DONE`
//! marker is respawned, sees a complete checkpoint, rewrites the
//! marker, and exits — and an *orphaned* worker (its coordinator
//! SIGKILLed mid-campaign) racing a successor on the same shard is
//! harmless: both write byte-identical checkpoints via atomic renames.

use crate::configs::DetectorConfig;
use crate::obs::ObsSink;
use crate::sweep::{
    plan_campaign, run_injection, run_seed, sweep_workload, target_from_json, target_to_json,
    AppSweep, RunObsCtx, RunRecord, RunStatus, SweepOptions, SweepResults,
};
use cord_fuzz::campaign::{run_campaign_cases, CampaignConfig, CampaignReport, CaseReport};
use cord_fuzz::gen::GenConfig;
use cord_fuzz::oracle::OracleOptions;
use cord_fuzz::GenMode;
use cord_inject::InjectionTarget;
use cord_json::{durable, obj, FromJson, Json, JsonError, ToJson};
use cord_obs::MetricsRegistry;
use cord_pool::{lock_unpoisoned, Pool};
use cord_shard::{
    supervise, ChaosConfig, HeartbeatWriter, ShardPlan, ShardStatus, SupervisorConfig, WorkerHooks,
};
use cord_workloads::{all_apps, AppKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::Duration;

/// Environment variable naming shard ids (comma-separated) whose
/// workers must fail immediately — a test hook for exercising the
/// abandonment path deterministically.
pub const FAIL_SHARDS_ENV: &str = "CORD_SHARD_FAIL_SHARDS";

/// FNV-1a, the workspace's standard content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn app_by_name(name: &str) -> Option<AppKind> {
    all_apps().into_iter().find(|a| a.name() == name)
}

fn io_err(msg: impl std::fmt::Display) -> io::Error {
    io::Error::other(msg.to_string())
}

// ---------------------------------------------------------------------
// Campaign specs

/// A sharded fuzz campaign: `count` generator cases over `shards`
/// round-robin shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Master seed; case `i` derives its seed from `(seed, i)`.
    pub seed: u64,
    /// Total cases across all shards.
    pub count: usize,
    /// Generator population.
    pub mode: GenMode,
    /// Use the short generator + trimmed oracle battery (CI scale).
    pub short: bool,
    /// Keep injection re-runs in the battery.
    pub inject: bool,
    /// Keep same-seed rerun checks in the battery.
    pub rerun: bool,
    /// Write shrunk reproducers for failing cases under `corpus/`.
    pub corpus: bool,
    /// Shard count (affects partitioning, never per-case results).
    pub shards: usize,
    /// Worker threads per worker process (results are invariant).
    pub worker_jobs: usize,
}

impl FuzzSpec {
    /// The in-process campaign config a worker runs its slice with.
    pub fn campaign_config(&self, dir: &Path) -> CampaignConfig {
        let mut gen = GenConfig::default();
        let mut oracle = OracleOptions::default();
        let mut shrink_candidates = 300;
        if self.short {
            gen = gen.short();
            oracle.check_rerun = false;
            oracle.max_suppressions = 1;
            oracle.max_injections = 1;
            shrink_candidates = 50;
        }
        if !self.inject {
            oracle.max_injections = 0;
        }
        if !self.rerun {
            oracle.check_rerun = false;
        }
        CampaignConfig {
            master_seed: self.seed,
            count: self.count,
            jobs: self.worker_jobs.max(1),
            mode: self.mode,
            gen,
            oracle,
            shrink_candidates,
            corpus_dir: self.corpus.then(|| dir.join("corpus")),
            budget_secs: None,
        }
    }
}

/// A sharded injection sweep: the (app × run) matrix over `shards`
/// round-robin shards, using [`DetectorConfig::all_for_sweep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep options (scale, per-app injections, seed, threads, …).
    pub opts: SweepOptions,
    /// Applications, in canonical output order.
    pub apps: Vec<AppKind>,
    /// Shard count (affects partitioning, never per-run results).
    pub shards: usize,
    /// Worker threads per worker process (results are invariant).
    pub worker_jobs: usize,
}

/// What a campaign directory runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignSpec {
    /// A differential fuzz campaign.
    Fuzz(FuzzSpec),
    /// An injection sweep.
    Sweep(SweepSpec),
}

impl CampaignSpec {
    /// Shard count of the campaign.
    pub fn shards(&self) -> usize {
        match self {
            CampaignSpec::Fuzz(f) => f.shards.max(1),
            CampaignSpec::Sweep(s) => s.shards.max(1),
        }
    }

    /// The deterministic identity of the campaign: a hash over every
    /// field that influences results (including the shard count, which
    /// fixes the partition a directory was started with) and *no*
    /// supervision knob. Worker-thread counts are excluded — results
    /// are `--jobs`-invariant by construction.
    pub fn spec_hash(&self) -> u64 {
        fnv1a(self.identity_json().to_string_compact().as_bytes())
    }

    fn identity_json(&self) -> Json {
        match self {
            CampaignSpec::Fuzz(f) => obj(vec![
                ("kind", Json::Str("fuzz".into())),
                ("seed", f.seed.to_json()),
                ("count", (f.count as u64).to_json()),
                ("mode", Json::Str(f.mode.name().into())),
                ("short", f.short.to_json()),
                ("inject", f.inject.to_json()),
                ("rerun", f.rerun.to_json()),
                ("corpus", f.corpus.to_json()),
                ("shards", (f.shards as u64).to_json()),
            ]),
            CampaignSpec::Sweep(s) => obj(vec![
                ("kind", Json::Str("sweep".into())),
                ("options", s.opts.to_json()),
                (
                    "apps",
                    Json::Array(s.apps.iter().map(|a| Json::Str(a.name().into())).collect()),
                ),
                ("shards", (s.shards as u64).to_json()),
            ]),
        }
    }

    fn to_doc(&self) -> Json {
        let mut fields = match self.identity_json() {
            Json::Object(f) => f,
            _ => Vec::new(),
        };
        let worker_jobs = match self {
            CampaignSpec::Fuzz(f) => f.worker_jobs,
            CampaignSpec::Sweep(s) => s.worker_jobs,
        };
        fields.push(("worker_jobs".into(), (worker_jobs as u64).to_json()));
        fields.push(("spec_hash".into(), self.spec_hash().to_json()));
        Json::Object(fields)
    }

    fn from_doc(v: &Json) -> Result<CampaignSpec, JsonError> {
        let worker_jobs = u64::from_json(v.field("worker_jobs")?)? as usize;
        let shards = u64::from_json(v.field("shards")?)? as usize;
        let spec = match v.field("kind")?.as_str()? {
            "fuzz" => {
                let mode_name = String::from_json(v.field("mode")?)?;
                CampaignSpec::Fuzz(FuzzSpec {
                    seed: u64::from_json(v.field("seed")?)?,
                    count: u64::from_json(v.field("count")?)? as usize,
                    mode: GenMode::parse(&mode_name)
                        .ok_or_else(|| JsonError::new(format!("unknown mode {mode_name:?}")))?,
                    short: bool::from_json(v.field("short")?)?,
                    inject: bool::from_json(v.field("inject")?)?,
                    rerun: bool::from_json(v.field("rerun")?)?,
                    corpus: bool::from_json(v.field("corpus")?)?,
                    shards,
                    worker_jobs,
                })
            }
            "sweep" => {
                let apps = v
                    .field("apps")?
                    .as_array()?
                    .iter()
                    .map(|a| {
                        let name = a.as_str()?;
                        app_by_name(name)
                            .ok_or_else(|| JsonError::new(format!("unknown app {name:?}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                CampaignSpec::Sweep(SweepSpec {
                    opts: SweepOptions::from_json(v.field("options")?)?,
                    apps,
                    shards,
                    worker_jobs,
                })
            }
            other => return Err(JsonError::new(format!("unknown campaign kind {other:?}"))),
        };
        let recorded = u64::from_json(v.field("spec_hash")?)?;
        if recorded != spec.spec_hash() {
            return Err(JsonError::new(format!(
                "spec hash mismatch: file says {recorded:#x}, fields hash to {:#x}",
                spec.spec_hash()
            )));
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------
// On-disk layout

/// Path helpers for one campaign directory.
#[derive(Debug, Clone)]
pub struct CampaignDir {
    root: PathBuf,
}

impl CampaignDir {
    /// Wraps `root` (created on demand by the coordinator/worker).
    pub fn new(root: impl Into<PathBuf>) -> CampaignDir {
        CampaignDir { root: root.into() }
    }

    /// The campaign root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The durable campaign spec.
    pub fn spec_path(&self) -> PathBuf {
        self.root.join("spec.json")
    }

    /// The durable sweep plan (absent for fuzz campaigns).
    pub fn plan_path(&self) -> PathBuf {
        self.root.join("plan.json")
    }

    /// Creating this file asks a running coordinator to drain.
    pub fn drain_path(&self) -> PathBuf {
        self.root.join("DRAIN")
    }

    /// One shard's working directory.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join("shards").join(shard.to_string())
    }

    /// One shard's durable checkpoint.
    pub fn shard_checkpoint(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("checkpoint.json")
    }

    /// One shard's heartbeat file.
    pub fn shard_heartbeat(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("heartbeat")
    }

    /// One shard's worker log (stdout+stderr, appended across
    /// attempts).
    pub fn shard_log(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("log")
    }

    /// Fast-path completion marker, written by the worker after its
    /// final checkpoint flush. Completion is still *derived* from the
    /// checkpoint when the marker is missing.
    pub fn shard_done(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("DONE")
    }

    /// Merged, byte-stable campaign outputs.
    pub fn merged(&self, name: &str) -> PathBuf {
        self.root.join("merged").join(name)
    }

    /// Loads the campaign spec, if the directory has one.
    pub fn load_spec(&self) -> io::Result<Option<CampaignSpec>> {
        let load = durable::load_checkpoint(&self.spec_path());
        for w in &load.warnings {
            eprintln!("warning: {w}");
        }
        match load.doc {
            None => Ok(None),
            Some(doc) => CampaignSpec::from_doc(&doc).map(Some).map_err(io_err),
        }
    }
}

// ---------------------------------------------------------------------
// Sweep plan (coordinator plans once; all workers share it)

/// One app's planned campaign, as stored in `plan.json`.
#[derive(Debug, Clone)]
pub struct PlannedApp {
    /// Application name.
    pub app: String,
    /// Removable acquire-site instances counted by the dry run.
    pub acquires: u64,
    /// Removable release-site instances counted by the dry run.
    pub releases: u64,
    /// The dry-run failure, if planning failed (no targets then).
    pub dry_run_error: Option<String>,
    /// The drawn injection targets, in run order.
    pub targets: Vec<InjectionTarget>,
}

impl PlannedApp {
    fn to_json(&self) -> Json {
        obj(vec![
            ("app", self.app.to_json()),
            ("acquires", self.acquires.to_json()),
            ("releases", self.releases.to_json()),
            ("dry_run_error", self.dry_run_error.to_json()),
            (
                "targets",
                Json::Array(self.targets.iter().map(target_to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<PlannedApp, JsonError> {
        Ok(PlannedApp {
            app: String::from_json(v.field("app")?)?,
            acquires: u64::from_json(v.field("acquires")?)?,
            releases: u64::from_json(v.field("releases")?)?,
            dry_run_error: Option::<String>::from_json(v.field("dry_run_error")?)?,
            targets: v
                .field("targets")?
                .as_array()?
                .iter()
                .map(target_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The shared sweep plan: per-app target sets plus the flattened
/// global cell list every shard partitions identically.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Per-app plans, in spec app order.
    pub apps: Vec<PlannedApp>,
}

impl SweepPlan {
    /// The flattened (app index, run index, target) cells, in global
    /// index order — the unit the shard plan partitions.
    pub fn cells(&self) -> Vec<(usize, usize, InjectionTarget)> {
        self.apps
            .iter()
            .enumerate()
            .flat_map(|(ai, app)| {
                app.targets
                    .iter()
                    .enumerate()
                    .map(move |(ri, &t)| (ai, ri, t))
            })
            .collect()
    }

    fn to_doc(&self, spec_hash: u64) -> Json {
        obj(vec![
            ("spec_hash", spec_hash.to_json()),
            (
                "apps",
                Json::Array(self.apps.iter().map(PlannedApp::to_json).collect()),
            ),
        ])
    }

    fn from_doc(v: &Json, spec_hash: u64) -> Result<SweepPlan, JsonError> {
        let recorded = u64::from_json(v.field("spec_hash")?)?;
        if recorded != spec_hash {
            return Err(JsonError::new(format!(
                "plan.json belongs to spec {recorded:#x}, campaign is {spec_hash:#x}"
            )));
        }
        Ok(SweepPlan {
            apps: v
                .field("apps")?
                .as_array()?
                .iter()
                .map(PlannedApp::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Plans the sweep (one watchdogged dry run per app, fanned over
/// `jobs` threads) — deterministic, so the coordinator can plan once
/// and every worker reuses the same `plan.json`.
pub fn plan_sweep(spec: &SweepSpec, jobs: usize) -> SweepPlan {
    let opts = spec.opts;
    let workloads: Vec<_> = spec
        .apps
        .iter()
        .map(|&a| sweep_workload(a, &opts))
        .collect();
    let pool = Pool::new(jobs.max(1));
    let jobs_vec: Vec<_> = spec
        .apps
        .iter()
        .zip(&workloads)
        .map(|(&app, workload)| move || plan_campaign(workload, app, &opts))
        .collect();
    let planned = pool.run_ordered(jobs_vec);
    let apps = workloads
        .iter()
        .zip(planned)
        .map(|(workload, outcome)| {
            let campaign =
                outcome.unwrap_or_else(|p| Err(format!("campaign planning panicked: {p}")));
            match campaign {
                Ok(c) => PlannedApp {
                    app: workload.name().to_string(),
                    acquires: c.counts.acquires,
                    releases: c.counts.releases,
                    dry_run_error: None,
                    targets: c.targets,
                },
                Err(e) => PlannedApp {
                    app: workload.name().to_string(),
                    acquires: 0,
                    releases: 0,
                    dry_run_error: Some(e),
                    targets: Vec::new(),
                },
            }
        })
        .collect();
    SweepPlan { apps }
}

fn load_plan(dir: &CampaignDir, spec_hash: u64) -> io::Result<SweepPlan> {
    let load = durable::load_checkpoint(&dir.plan_path());
    for w in &load.warnings {
        eprintln!("warning: {w}");
    }
    let doc = load
        .doc
        .ok_or_else(|| io_err(format!("missing {}", dir.plan_path().display())))?;
    SweepPlan::from_doc(&doc, spec_hash).map_err(io_err)
}

// ---------------------------------------------------------------------
// Shard checkpoints (worker-written, durable)

/// A fuzz shard's durable state: completed cases keyed by global index.
#[derive(Debug, Clone, Default)]
struct FuzzShardState {
    cases: BTreeMap<usize, CaseReport>,
}

impl FuzzShardState {
    fn to_doc(&self, spec_hash: u64, shard: usize) -> Json {
        obj(vec![
            ("spec_hash", spec_hash.to_json()),
            ("shard", (shard as u64).to_json()),
            (
                "cases",
                Json::Array(self.cases.values().map(ToJson::to_json).collect()),
            ),
        ])
    }

    fn from_doc(v: &Json, spec_hash: u64) -> Result<FuzzShardState, JsonError> {
        if u64::from_json(v.field("spec_hash")?)? != spec_hash {
            return Err(JsonError::new("checkpoint belongs to a different spec"));
        }
        let mut cases = BTreeMap::new();
        for c in v.field("cases")?.as_array()? {
            let case = CaseReport::from_json(c)?;
            cases.insert(case.index, case);
        }
        Ok(FuzzShardState { cases })
    }
}

/// A sweep shard's durable state: completed cells keyed by global
/// index, each with its record and deterministic per-run metrics.
#[derive(Debug, Clone, Default)]
struct SweepShardState {
    cells: BTreeMap<usize, (RunRecord, MetricsRegistry)>,
}

impl SweepShardState {
    fn to_doc(&self, spec_hash: u64, shard: usize) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|(index, (record, metrics))| {
                let mut fields = vec![
                    ("index", (*index as u64).to_json()),
                    ("record", record.to_json()),
                ];
                if !metrics.is_empty() {
                    fields.push(("metrics", metrics.to_json()));
                }
                obj(fields)
            })
            .collect();
        obj(vec![
            ("spec_hash", spec_hash.to_json()),
            ("shard", (shard as u64).to_json()),
            ("cells", Json::Array(cells)),
        ])
    }

    fn from_doc(v: &Json, spec_hash: u64) -> Result<SweepShardState, JsonError> {
        if u64::from_json(v.field("spec_hash")?)? != spec_hash {
            return Err(JsonError::new("checkpoint belongs to a different spec"));
        }
        let mut cells = BTreeMap::new();
        for c in v.field("cells")?.as_array()? {
            let index = u64::from_json(c.field("index")?)? as usize;
            let record = RunRecord::from_json(c.field("record")?)?;
            let metrics = match c.get("metrics") {
                Some(m) => MetricsRegistry::from_json(m)?,
                None => MetricsRegistry::default(),
            };
            cells.insert(index, (record, metrics));
        }
        Ok(SweepShardState { cells })
    }
}

fn load_shard_doc(dir: &CampaignDir, shard: usize) -> Option<Json> {
    let load = durable::load_checkpoint(&dir.shard_checkpoint(shard));
    for w in &load.warnings {
        eprintln!("warning: shard {shard}: {w}");
    }
    load.doc
}

/// How complete one shard's durable checkpoint is.
fn shard_progress(dir: &CampaignDir, spec: &CampaignSpec, shard: usize) -> (usize, usize) {
    let plan_total = match spec {
        CampaignSpec::Fuzz(f) => ShardPlan::new(f.shards, f.count).len_of(shard),
        CampaignSpec::Sweep(s) => match load_plan(dir, spec.spec_hash()) {
            Ok(plan) => ShardPlan::new(s.shards, plan.cells().len()).len_of(shard),
            Err(_) => return (0, 0),
        },
    };
    let done = match (spec, load_shard_doc(dir, shard)) {
        (_, None) => 0,
        (CampaignSpec::Fuzz(_), Some(doc)) => FuzzShardState::from_doc(&doc, spec.spec_hash())
            .map(|s| s.cases.len())
            .unwrap_or(0),
        (CampaignSpec::Sweep(_), Some(doc)) => SweepShardState::from_doc(&doc, spec.spec_hash())
            .map(|s| s.cells.len())
            .unwrap_or(0),
    };
    (done, plan_total)
}

fn shard_is_done(dir: &CampaignDir, spec: &CampaignSpec, shard: usize) -> bool {
    if dir.shard_done(shard).exists() {
        return true;
    }
    let (done, total) = shard_progress(dir, spec, shard);
    done >= total && total > 0 || (total == 0 && dir.spec_path().exists())
}

// ---------------------------------------------------------------------
// Worker

/// Runs one shard worker to completion: resume from the durable
/// checkpoint, process remaining work in chunks (checkpoint + heartbeat
/// between chunks), then write the `DONE` marker.
///
/// # Errors
///
/// I/O errors on the campaign directory (a checkpoint that cannot be
/// written is fatal for the worker — the supervisor will retry it).
pub fn worker_main(dir: &CampaignDir, shard: usize) -> io::Result<()> {
    if fail_requested(shard) {
        return Err(io_err(format!(
            "shard {shard} failing on request ({FAIL_SHARDS_ENV})"
        )));
    }
    let spec = dir
        .load_spec()?
        .ok_or_else(|| io_err(format!("no spec.json in {}", dir.root().display())))?;
    fs::create_dir_all(dir.shard_dir(shard))?;
    let mut heartbeat = HeartbeatWriter::new(dir.shard_heartbeat(shard))?;
    match &spec {
        CampaignSpec::Fuzz(f) => worker_fuzz(dir, &spec, f, shard, &mut heartbeat)?,
        CampaignSpec::Sweep(s) => worker_sweep(dir, &spec, s, shard, &mut heartbeat)?,
    }
    fs::write(dir.shard_done(shard), "done\n")?;
    Ok(())
}

fn fail_requested(shard: usize) -> bool {
    std::env::var(FAIL_SHARDS_ENV)
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .any(|s| s == shard)
        })
        .unwrap_or(false)
}

fn worker_fuzz(
    dir: &CampaignDir,
    spec: &CampaignSpec,
    fuzz: &FuzzSpec,
    shard: usize,
    heartbeat: &mut HeartbeatWriter,
) -> io::Result<()> {
    let hash = spec.spec_hash();
    let plan = ShardPlan::new(fuzz.shards, fuzz.count);
    let mine: Vec<usize> = plan.indices(shard).collect();
    let mut state = match load_shard_doc(dir, shard) {
        Some(doc) => FuzzShardState::from_doc(&doc, hash).unwrap_or_else(|e| {
            eprintln!("warning: shard {shard}: discarding checkpoint ({e})");
            FuzzShardState::default()
        }),
        None => FuzzShardState::default(),
    };
    let cfg = fuzz.campaign_config(dir.root());
    let todo: Vec<usize> = mine
        .iter()
        .copied()
        .filter(|i| !state.cases.contains_key(i))
        .collect();
    eprintln!(
        "shard {shard}: {} of {} cases already checkpointed, {} to run",
        state.cases.len(),
        mine.len(),
        todo.len()
    );
    let ckpt = dir.shard_checkpoint(shard);
    if todo.is_empty() {
        // Resumed straight into completeness; make sure the checkpoint
        // exists even for zero-case shards.
        durable::write_checkpoint(&ckpt, &state.to_doc(hash, shard))?;
        return Ok(());
    }
    // Chunk size balances checkpoint granularity (work lost to a kill)
    // against flush overhead.
    let chunk = (cfg.jobs * 4).max(8);
    for batch in todo.chunks(chunk) {
        let report = run_campaign_cases(&cfg, batch, |_, _| {});
        for case in report.cases {
            state.cases.insert(case.index, case);
        }
        durable::write_checkpoint(&ckpt, &state.to_doc(hash, shard))?;
        heartbeat.beat()?;
        eprintln!("shard {shard}: {}/{} cases", state.cases.len(), mine.len());
    }
    Ok(())
}

fn worker_sweep(
    dir: &CampaignDir,
    spec: &CampaignSpec,
    sweep: &SweepSpec,
    shard: usize,
    heartbeat: &mut HeartbeatWriter,
) -> io::Result<()> {
    let hash = spec.spec_hash();
    let plan = load_plan(dir, hash)?;
    let cells = plan.cells();
    let shard_plan = ShardPlan::new(sweep.shards, cells.len());
    let mine: Vec<usize> = shard_plan.indices(shard).collect();
    let mut state = match load_shard_doc(dir, shard) {
        Some(doc) => SweepShardState::from_doc(&doc, hash).unwrap_or_else(|e| {
            eprintln!("warning: shard {shard}: discarding checkpoint ({e})");
            SweepShardState::default()
        }),
        None => SweepShardState::default(),
    };
    let todo: Vec<usize> = mine
        .iter()
        .copied()
        .filter(|i| !state.cells.contains_key(i))
        .collect();
    eprintln!(
        "shard {shard}: {} of {} cells already checkpointed, {} to run",
        state.cells.len(),
        mine.len(),
        todo.len()
    );
    let ckpt = dir.shard_checkpoint(shard);
    if todo.is_empty() {
        durable::write_checkpoint(&ckpt, &state.to_doc(hash, shard))?;
        return Ok(());
    }
    let opts = sweep.opts;
    let configs = DetectorConfig::all_for_sweep();
    let workloads: Vec<_> = sweep
        .apps
        .iter()
        .map(|&a| sweep_workload(a, &opts))
        .collect();
    let jobs = sweep.worker_jobs.max(1);
    let pool = Pool::new(jobs);
    let chunk = (jobs * 2).max(4);
    for batch in todo.chunks(chunk) {
        let results = Mutex::new(Vec::new());
        let jobs_vec: Vec<_> = batch
            .iter()
            .map(|&index| {
                let (ai, ri, target) = cells[index];
                let workloads = &workloads;
                let configs = &configs;
                let results = &results;
                move || {
                    // A fresh per-cell sink captures the run's
                    // deterministic counters so the coordinator can
                    // merge metrics in global index order.
                    let sink = ObsSink::new(None, 1);
                    let ctx = RunObsCtx {
                        sink: &sink,
                        app: workloads[ai].name(),
                        run_index: ri,
                    };
                    let record = run_injection(
                        target,
                        configs,
                        &workloads[ai],
                        run_seed(&opts, ri),
                        &opts,
                        Some(ctx),
                    );
                    lock_unpoisoned(results).push((index, record, sink.registry_snapshot()));
                }
            })
            .collect();
        let outcomes = pool.run_ordered(jobs_vec);
        for (index, record, metrics) in results.into_inner().unwrap_or_else(|p| p.into_inner()) {
            state.cells.insert(index, (record, metrics));
        }
        // A worker-pool panic is unreachable in practice (run_injection
        // catches run panics itself), but keep the matrix rectangular.
        for (&index, outcome) in batch.iter().zip(&outcomes) {
            if let Err(p) = outcome {
                state.cells.entry(index).or_insert_with(|| {
                    let (_, _, target) = cells[index];
                    (
                        RunRecord {
                            target,
                            status: RunStatus::Panicked {
                                msg: p.message.clone(),
                            },
                            detail: None,
                            ideal: None,
                            detections: BTreeMap::new(),
                        },
                        MetricsRegistry::default(),
                    )
                });
            }
        }
        durable::write_checkpoint(&ckpt, &state.to_doc(hash, shard))?;
        heartbeat.beat()?;
        eprintln!("shard {shard}: {}/{} cells", state.cells.len(), mine.len());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Coordinator

/// Supervision knobs for [`coordinate`] — none of these affect merged
/// output bytes.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Maximum concurrently running workers (`None` = one per shard).
    pub max_workers: Option<usize>,
    /// Chaos mode (random worker kills).
    pub chaos: Option<ChaosConfig>,
    /// Charged failures allowed per shard before abandonment.
    pub max_retries: u32,
    /// Heartbeat staleness budget before a worker counts as hung.
    pub heartbeat_timeout: Duration,
    /// Supervision poll interval.
    pub poll_interval: Duration,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            max_workers: None,
            chaos: None,
            max_retries: 3,
            heartbeat_timeout: Duration::from_secs(60),
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// What one coordinator invocation produced.
#[derive(Debug, Clone)]
pub struct CoordinatorOutcome {
    /// Suggested process exit code: 0 = complete and clean, 1 =
    /// complete but the campaign found failures (fuzz violations),
    /// 2 = some shards abandoned (merged output is partial), 4 =
    /// drained before completion (no merge; resumable).
    pub exit_code: i32,
    /// Shard ids that were abandoned.
    pub abandoned: Vec<usize>,
    /// `true` when a drain request ended the run early.
    pub drained: bool,
}

/// Runs (or resumes) a sharded campaign in `dir`: writes/verifies the
/// spec, plans sweeps once, supervises worker processes to completion,
/// writes `supervision.json`, and merges shard checkpoints into
/// byte-stable `merged/` outputs.
///
/// `spec` is required for a fresh directory; for an existing one it
/// must hash-match the persisted spec (`None` = resume as-is).
///
/// # Errors
///
/// Spec mismatches, missing specs on resume-only invocations, and I/O
/// failures on the campaign directory.
pub fn coordinate(
    dir: &CampaignDir,
    spec: Option<CampaignSpec>,
    opts: &CoordinatorOptions,
) -> io::Result<CoordinatorOutcome> {
    fs::create_dir_all(dir.root())?;
    let spec = match (dir.load_spec()?, spec) {
        (Some(existing), Some(requested)) => {
            if existing.spec_hash() != requested.spec_hash() {
                return Err(io_err(format!(
                    "campaign dir {} was started with a different spec \
                     (hash {:#x}, requested {:#x}); use a fresh directory",
                    dir.root().display(),
                    existing.spec_hash(),
                    requested.spec_hash()
                )));
            }
            existing
        }
        (Some(existing), None) => existing,
        (None, Some(requested)) => {
            durable::write_sealed_atomic(&dir.spec_path(), &requested.to_doc())?;
            requested
        }
        (None, None) => {
            return Err(io_err(format!(
                "{} holds no campaign and no spec was given",
                dir.root().display()
            )))
        }
    };
    // A DRAIN marker left by a previous invocation would stop this one
    // before it starts; a new invocation is an explicit resume.
    let _ = fs::remove_file(dir.drain_path());

    // Sweeps: plan once, durably, before any worker spawns. Workers
    // only ever read the plan, so every shard partitions an identical
    // cell list.
    if let CampaignSpec::Sweep(s) = &spec {
        if load_plan(dir, spec.spec_hash()).is_err() {
            eprintln!("planning sweep ({} apps)...", s.apps.len());
            let plan = plan_sweep(s, opts.max_workers.unwrap_or(spec.shards()));
            durable::write_sealed_atomic(&dir.plan_path(), &plan.to_doc(spec.spec_hash()))?;
        }
    }

    let shards = spec.shards();
    let exe = std::env::current_exe()?;
    let mut cfg = SupervisorConfig::new(shards);
    cfg.max_workers = opts.max_workers.unwrap_or(shards).max(1);
    cfg.poll_interval = opts.poll_interval;
    cfg.heartbeat_timeout = opts.heartbeat_timeout;
    cfg.max_retries = opts.max_retries;
    cfg.chaos = opts.chaos;
    cfg.drain_file = Some(dir.drain_path());

    let spec_ref = &spec;
    let mut hooks = WorkerHooks {
        spawn: Box::new(move |shard, attempt| {
            fs::create_dir_all(dir.shard_dir(shard))?;
            let log = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.shard_log(shard))?;
            let log_err = log.try_clone()?;
            eprintln!("shard {shard}: spawning worker (attempt {attempt})");
            Command::new(&exe)
                .arg("worker")
                .arg("--dir")
                .arg(dir.root())
                .arg("--shard")
                .arg(shard.to_string())
                .stdout(Stdio::from(log))
                .stderr(Stdio::from(log_err))
                .spawn()
        }),
        is_done: Box::new(move |shard| shard_is_done(dir, spec_ref, shard)),
        heartbeat_path: Box::new(move |shard| Some(dir.shard_heartbeat(shard))),
    };
    let outcome = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
    drop(hooks);

    // Supervision record: timing- and failure-dependent by nature, so
    // it lives apart from the byte-stable merged outputs.
    fs::create_dir_all(dir.root().join("merged"))?;
    let mut sup_reg = MetricsRegistry::default();
    outcome.profile.record_into(&mut sup_reg);
    let sup_doc = obj(vec![
        ("drained", outcome.drained.to_json()),
        (
            "reports",
            Json::Array(outcome.reports.iter().map(ToJson::to_json).collect()),
        ),
        ("profile", outcome.profile.to_json()),
        ("metrics", sup_reg.to_json()),
    ]);
    fs::write(dir.merged("supervision.json"), sup_doc.to_string_pretty())?;

    for r in &outcome.reports {
        eprintln!(
            "shard {}: {} ({} attempts, {} chaos kills, {} heartbeat misses)",
            r.shard,
            r.status.kind(),
            r.attempts,
            r.chaos_kills,
            r.heartbeat_misses
        );
    }

    if outcome.drained {
        eprintln!("drained before completion; re-run to resume");
        return Ok(CoordinatorOutcome {
            exit_code: 4,
            abandoned: outcome.abandoned_shards(),
            drained: true,
        });
    }

    let abandoned: BTreeMap<usize, String> = outcome
        .reports
        .iter()
        .filter_map(|r| match &r.status {
            ShardStatus::Abandoned { reason } => Some((r.shard, reason.clone())),
            _ => None,
        })
        .collect();

    let campaign_failures = match &spec {
        CampaignSpec::Fuzz(f) => merge_fuzz(dir, &spec, f, &abandoned)?,
        CampaignSpec::Sweep(s) => merge_sweep(dir, &spec, s, &abandoned)?,
    };

    let exit_code = if !abandoned.is_empty() {
        2
    } else {
        i32::from(campaign_failures)
    };
    Ok(CoordinatorOutcome {
        exit_code,
        abandoned: abandoned.keys().copied().collect(),
        drained: false,
    })
}

fn shard_failure_section(abandoned: &BTreeMap<usize, String>) -> String {
    let mut out = String::new();
    if abandoned.is_empty() {
        return out;
    }
    out.push_str("== shard failures ==\n");
    for (shard, reason) in abandoned {
        let _ = writeln!(out, "shard {shard}: abandoned — {reason}");
    }
    out
}

/// Merges fuzz shard checkpoints into `merged/report.txt` and
/// `merged/metrics.json`. Returns `true` when the merged campaign has
/// failing cases.
fn merge_fuzz(
    dir: &CampaignDir,
    spec: &CampaignSpec,
    fuzz: &FuzzSpec,
    abandoned: &BTreeMap<usize, String>,
) -> io::Result<bool> {
    let hash = spec.spec_hash();
    let mut cases: BTreeMap<usize, CaseReport> = BTreeMap::new();
    for shard in 0..fuzz.shards.max(1) {
        if let Some(doc) = load_shard_doc(dir, shard) {
            if let Ok(state) = FuzzShardState::from_doc(&doc, hash) {
                cases.extend(state.cases);
            }
        }
    }
    let report = CampaignReport {
        cases: cases.into_values().collect(),
        requested: fuzz.count,
        budget_exhausted: false,
    };
    let mut text = report.render();
    text.push_str(&shard_failure_section(abandoned));
    fs::create_dir_all(dir.merged("report.txt").parent().unwrap_or(dir.root()))?;
    fs::write(dir.merged("report.txt"), &text)?;

    // Deterministic counters only: everything here is a pure function
    // of the case set, so the file byte-matches across shard counts.
    let mut reg = MetricsRegistry::default();
    reg.add("fuzz.cases", report.cases.len() as u64);
    reg.add("fuzz.failures", report.failures() as u64);
    for case in &report.cases {
        reg.add("fuzz.truth_races", case.oracle.truth_races as u64);
        reg.add("fuzz.events", case.oracle.events as u64);
        reg.add(
            "fuzz.injections_checked",
            case.oracle.injections_checked as u64,
        );
        reg.add(
            "fuzz.injections_aborted",
            case.oracle.injections_aborted as u64,
        );
        for v in &case.oracle.violations {
            reg.add(&format!("fuzz.violation.{}", v.kind()), 1);
        }
        if case.panic.is_some() {
            reg.add("fuzz.violation.panic", 1);
        }
    }
    let metrics_doc = obj(vec![("metrics", reg.to_json())]);
    fs::write(dir.merged("metrics.json"), metrics_doc.to_string_pretty())?;
    Ok(report.failures() > 0)
}

/// Merges sweep shard checkpoints into `merged/results.json`,
/// `merged/report.txt`, and `merged/metrics.json`. Cells owned by
/// abandoned shards become [`RunStatus::Abandoned`] records, so the
/// matrix stays rectangular and the gap is visible (and excluded from
/// every completed-only denominator). Returns `false` (sweeps have no
/// pass/fail verdict of their own).
fn merge_sweep(
    dir: &CampaignDir,
    spec: &CampaignSpec,
    sweep: &SweepSpec,
    abandoned: &BTreeMap<usize, String>,
) -> io::Result<bool> {
    let hash = spec.spec_hash();
    let plan = load_plan(dir, hash)?;
    let cells = plan.cells();
    let shard_plan = ShardPlan::new(sweep.shards, cells.len());
    let mut merged: BTreeMap<usize, (RunRecord, MetricsRegistry)> = BTreeMap::new();
    for shard in 0..sweep.shards.max(1) {
        if let Some(doc) = load_shard_doc(dir, shard) {
            if let Ok(state) = SweepShardState::from_doc(&doc, hash) {
                merged.extend(state.cells);
            }
        }
    }

    // Assemble per-app sweeps in plan (= canonical) order; missing
    // cells surface as Abandoned records naming their shard's diagnosis.
    let mut runs_by_app: Vec<Vec<RunRecord>> = plan
        .apps
        .iter()
        .map(|a| Vec::with_capacity(a.targets.len()))
        .collect();
    let mut reg = MetricsRegistry::default();
    for (index, &(ai, _ri, target)) in cells.iter().enumerate() {
        match merged.get(&index) {
            Some((record, metrics)) => {
                runs_by_app[ai].push(record.clone());
                reg.merge(metrics);
            }
            None => {
                let shard = shard_plan.shard_of(index);
                let reason = abandoned
                    .get(&shard)
                    .cloned()
                    .unwrap_or_else(|| format!("shard {shard} produced no record"));
                runs_by_app[ai].push(RunRecord {
                    target,
                    status: RunStatus::Abandoned { reason },
                    detail: None,
                    ideal: None,
                    detections: BTreeMap::new(),
                });
            }
        }
    }
    let apps: Vec<AppSweep> = plan
        .apps
        .iter()
        .zip(runs_by_app)
        .map(|(planned, runs)| AppSweep {
            app: planned.app.clone(),
            acquire_instances: planned.acquires,
            release_instances: planned.releases,
            dry_run_error: planned.dry_run_error.clone(),
            runs,
        })
        .collect();
    let results = SweepResults {
        options: sweep.opts,
        apps,
    };

    fs::create_dir_all(dir.merged("results.json").parent().unwrap_or(dir.root()))?;
    fs::write(
        dir.merged("results.json"),
        results.to_json().to_string_pretty(),
    )?;

    let mut text = format!(
        "sweep: {} apps, {} runs ({} completed)\n",
        results.apps.len(),
        results.apps.iter().map(|a| a.runs.len()).sum::<usize>(),
        results
            .apps
            .iter()
            .map(|a| a.completed().count())
            .sum::<usize>(),
    );
    text.push_str(&crate::figures::failure_summary(&results));
    text.push_str(&shard_failure_section(abandoned));
    fs::write(dir.merged("report.txt"), &text)?;

    let metrics_doc = obj(vec![("metrics", reg.to_json())]);
    fs::write(dir.merged("metrics.json"), metrics_doc.to_string_pretty())?;
    Ok(false)
}

/// Renders a one-line-per-shard status summary for `shard status`.
pub fn status_summary(dir: &CampaignDir) -> io::Result<String> {
    let spec = dir
        .load_spec()?
        .ok_or_else(|| io_err(format!("no spec.json in {}", dir.root().display())))?;
    let mut out = String::new();
    let kind = match &spec {
        CampaignSpec::Fuzz(f) => format!("fuzz ({} cases)", f.count),
        CampaignSpec::Sweep(s) => format!("sweep ({} apps)", s.apps.len()),
    };
    let _ = writeln!(
        out,
        "campaign: {kind}, {} shards, spec {:#018x}",
        spec.shards(),
        spec.spec_hash()
    );
    for shard in 0..spec.shards() {
        let (done, total) = shard_progress(dir, &spec, shard);
        let marker = if dir.shard_done(shard).exists() {
            " DONE"
        } else {
            ""
        };
        let _ = writeln!(out, "shard {shard}: {done}/{total}{marker}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ScaleClassOpt;

    fn fuzz_spec() -> CampaignSpec {
        CampaignSpec::Fuzz(FuzzSpec {
            seed: 7,
            count: 24,
            mode: GenMode::Mixed,
            short: true,
            inject: true,
            rerun: false,
            corpus: false,
            shards: 3,
            worker_jobs: 2,
        })
    }

    fn sweep_spec() -> CampaignSpec {
        CampaignSpec::Sweep(SweepSpec {
            opts: SweepOptions {
                injections_per_app: 2,
                scale: ScaleClassOpt::Tiny,
                threads: 4,
                seed: 13,
                ..SweepOptions::default()
            },
            apps: vec![AppKind::Fft, AppKind::Radix],
            shards: 2,
            worker_jobs: 1,
        })
    }

    #[test]
    fn specs_roundtrip_through_their_documents() {
        for spec in [fuzz_spec(), sweep_spec()] {
            let doc = spec.to_doc();
            let back = CampaignSpec::from_doc(&doc).expect("roundtrips");
            assert_eq!(back, spec);
            assert_eq!(back.spec_hash(), spec.spec_hash());
        }
    }

    #[test]
    fn spec_hash_covers_results_not_supervision() {
        let base = fuzz_spec();
        let mut other_jobs = match base.clone() {
            CampaignSpec::Fuzz(f) => f,
            CampaignSpec::Sweep(_) => unreachable!(),
        };
        other_jobs.worker_jobs = 16;
        assert_eq!(
            base.spec_hash(),
            CampaignSpec::Fuzz(other_jobs.clone()).spec_hash(),
            "worker thread count must not change the campaign identity"
        );
        other_jobs.worker_jobs = 2;
        other_jobs.shards = 4;
        assert_ne!(
            base.spec_hash(),
            CampaignSpec::Fuzz(other_jobs.clone()).spec_hash(),
            "the shard partition is part of the identity"
        );
        other_jobs.shards = 3;
        other_jobs.seed = 8;
        assert_ne!(base.spec_hash(), CampaignSpec::Fuzz(other_jobs).spec_hash());
    }

    #[test]
    fn tampered_spec_documents_are_rejected() {
        let doc = fuzz_spec().to_doc();
        let Json::Object(mut fields) = doc else {
            panic!("spec doc is an object")
        };
        for (k, v) in &mut fields {
            if k == "seed" {
                *v = Json::UInt(99);
            }
        }
        let err = CampaignSpec::from_doc(&Json::Object(fields)).expect_err("hash check fires");
        assert!(err.to_string().contains("spec hash mismatch"), "{err}");
    }

    #[test]
    fn shard_failure_section_names_every_abandoned_shard() {
        assert_eq!(shard_failure_section(&BTreeMap::new()), "");
        let mut abandoned = BTreeMap::new();
        abandoned.insert(2usize, "gave up".to_string());
        abandoned.insert(0usize, "hung".to_string());
        let text = shard_failure_section(&abandoned);
        assert!(text.starts_with("== shard failures ==\n"), "{text}");
        assert!(text.contains("shard 0: abandoned — hung"), "{text}");
        assert!(text.contains("shard 2: abandoned — gave up"), "{text}");
    }

    #[test]
    fn sweep_plans_flatten_to_globally_indexed_cells() {
        let CampaignSpec::Sweep(spec) = sweep_spec() else {
            unreachable!()
        };
        let plan = plan_sweep(&spec, 2);
        assert_eq!(plan.apps.len(), 2);
        for app in &plan.apps {
            assert!(app.dry_run_error.is_none(), "{:?}", app.dry_run_error);
            assert_eq!(app.targets.len(), 2);
        }
        let cells = plan.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|&(ai, ri, _)| (ai, ri))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        );
        // Planning twice yields the same targets (workers may trust a
        // persisted plan produced by any coordinator).
        let again = plan_sweep(&spec, 1);
        assert_eq!(
            plan.cells().iter().map(|c| c.2).collect::<Vec<_>>(),
            again.cells().iter().map(|c| c.2).collect::<Vec<_>>()
        );
    }
}
