//! The §3.4 injection sweep: the data source for Figures 10 and 12–17.

use crate::configs::DetectorConfig;
use cord_core::CordDetector;
use cord_detectors::{IdealDetector, VcLimitedDetector};
use cord_inject::Campaign;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_trace::program::Workload;
use cord_workloads::{all_apps, kernel, AppKind, ScaleClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Injection runs per application (the paper uses 20–100).
    pub injections_per_app: usize,
    /// Workload scale.
    pub scale: ScaleClassOpt,
    /// Threads (= cores).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

/// Serializable mirror of [`ScaleClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleClassOpt {
    /// Maps to [`ScaleClass::Tiny`].
    Tiny,
    /// Maps to [`ScaleClass::Small`].
    Small,
    /// Maps to [`ScaleClass::Paper`].
    Paper,
}

impl From<ScaleClassOpt> for ScaleClass {
    fn from(s: ScaleClassOpt) -> ScaleClass {
        match s {
            ScaleClassOpt::Tiny => ScaleClass::Tiny,
            ScaleClassOpt::Small => ScaleClass::Small,
            ScaleClassOpt::Paper => ScaleClass::Paper,
        }
    }
}

impl Default for SweepOptions {
    /// 24 injections per app at Small scale on 4 threads — enough for
    /// stable averages in seconds of wall time.
    fn default() -> Self {
        SweepOptions {
            injections_per_app: 24,
            scale: ScaleClassOpt::Small,
            threads: 4,
            seed: 2006,
        }
    }
}

/// What one detector saw in one injected run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Data races reported.
    pub races: u64,
}

impl Detection {
    /// At least one data race found — the problem was *detected*.
    pub fn found(&self) -> bool {
        self.races > 0
    }
}

/// One injected run: the removed instance and what every configuration
/// detected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The removed dynamic sync instance.
    pub target: u64,
    /// The Ideal oracle's verdict (defines manifestation).
    pub ideal: Detection,
    /// Per-configuration detections, keyed by label.
    pub detections: BTreeMap<String, Detection>,
}

/// All injected runs of one application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSweep {
    /// Application name.
    pub app: String,
    /// Total removable instances in the dry run.
    pub total_instances: u64,
    /// The injected runs.
    pub runs: Vec<RunRecord>,
}

impl AppSweep {
    /// Runs where the Ideal oracle found at least one data race.
    pub fn manifested(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.iter().filter(|r| r.ideal.found())
    }

    /// Fraction of injections that manifested (Figure 10's metric).
    pub fn manifestation_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.manifested().count() as f64 / self.runs.len() as f64
    }

    /// Problem detection count for a configuration over manifested runs
    /// (a config may also fire on non-manifested runs — different
    /// interleavings, like the paper's volrend anomaly — so the rate can
    /// exceed 1).
    pub fn problems_found(&self, label: &str) -> usize {
        self.runs
            .iter()
            .filter(|r| r.detections.get(label).is_some_and(Detection::found))
            .count()
    }

    /// Problem detection rate of `label` relative to `base` (both
    /// counted over all runs; the denominator is `base`'s detections).
    pub fn problem_rate_vs(&self, label: &str, base: &str) -> Option<f64> {
        let base_found = if base == "Ideal" {
            self.manifested().count()
        } else {
            self.problems_found(base)
        };
        if base_found == 0 {
            return None;
        }
        Some(self.problems_found(label) as f64 / base_found as f64)
    }

    /// Total raw data races reported by `label` across all runs.
    pub fn races_found(&self, label: &str) -> u64 {
        self.runs
            .iter()
            .filter_map(|r| r.detections.get(label))
            .map(|d| d.races)
            .sum()
    }

    /// Raw race detection rate of `label` relative to `base`.
    pub fn race_rate_vs(&self, label: &str, base: &str) -> Option<f64> {
        let base_races = if base == "Ideal" {
            self.runs.iter().map(|r| r.ideal.races).sum::<u64>()
        } else {
            self.races_found(base)
        };
        if base_races == 0 {
            return None;
        }
        Some(self.races_found(label) as f64 / base_races as f64)
    }
}

/// Results of the full sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepResults {
    /// The options the sweep ran with.
    pub options: SweepOptions,
    /// Per-application results, in figure order.
    pub apps: Vec<AppSweep>,
}

impl SweepResults {
    /// Average of a per-app metric over apps where it is defined
    /// (paper averages are "based on more than a hundred manifested
    /// errors per configuration").
    pub fn average<F: Fn(&AppSweep) -> Option<f64>>(&self, f: F) -> Option<f64> {
        let vals: Vec<f64> = self.apps.iter().filter_map(f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Runs one detector configuration on one injected run and returns its
/// detection.
pub fn run_config(
    config: DetectorConfig,
    workload: &Workload,
    seed: u64,
    plan: InjectionPlan,
) -> Detection {
    let machine = config.machine();
    let threads = workload.num_threads();
    let races = match config {
        DetectorConfig::Ideal => {
            let det = IdealDetector::new(threads);
            let m = Machine::new(machine, workload, det, seed, plan);
            let (_, det) = m.run().expect("run deadlocked");
            det.data_race_count()
        }
        DetectorConfig::Cord { .. } => {
            let cfg = config.cord_config().expect("cord config");
            let det = CordDetector::new(cfg, threads, machine.cores);
            let m = Machine::new(machine, workload, det, seed, plan);
            let (_, det) = m.run().expect("run deadlocked");
            det.races().len() as u64
        }
        _ => {
            let cfg = config.vc_config().expect("vc config");
            let det = VcLimitedDetector::new(cfg, threads, machine.cores);
            let m = Machine::new(machine, workload, det, seed, plan);
            let (_, det) = m.run().expect("run deadlocked");
            det.data_race_count()
        }
    };
    Detection { races }
}

/// Sweeps one application across all `configs`.
pub fn sweep_app(app: AppKind, configs: &[DetectorConfig], opts: &SweepOptions) -> AppSweep {
    let workload = kernel(app, opts.scale.into(), opts.threads, opts.seed);
    let base_machine = cord_sim::config::MachineConfig::paper_4core();
    let campaign = Campaign::plan(
        &base_machine,
        &workload,
        opts.injections_per_app,
        opts.seed ^ app as u64,
    );
    let mut runs = Vec::with_capacity(campaign.len());
    for (i, plan) in campaign.plans().enumerate() {
        let run_seed = opts
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64);
        let ideal = run_config(DetectorConfig::Ideal, &workload, run_seed, plan);
        let mut detections = BTreeMap::new();
        for &cfg in configs {
            detections.insert(cfg.label(), run_config(cfg, &workload, run_seed, plan));
        }
        runs.push(RunRecord {
            target: plan.remove_instance.expect("injection plan has target"),
            ideal,
            detections,
        });
    }
    AppSweep {
        app: workload.name().to_string(),
        total_instances: campaign.total_instances,
        runs,
    }
}

/// Sweeps every Table-1 application.
pub fn sweep_all(configs: &[DetectorConfig], opts: &SweepOptions) -> SweepResults {
    SweepResults {
        options: *opts,
        apps: all_apps()
            .into_iter()
            .map(|app| sweep_app(app, configs, opts))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> SweepOptions {
        SweepOptions {
            injections_per_app: 4,
            scale: ScaleClassOpt::Tiny,
            threads: 4,
            seed: 7,
        }
    }

    #[test]
    fn sweep_one_app_produces_records() {
        let configs = [DetectorConfig::Cord { d: 16 }];
        let s = sweep_app(AppKind::WaterN2, &configs, &quick_opts());
        assert_eq!(s.app, "water-n2");
        assert_eq!(s.runs.len(), 4);
        assert!(s.total_instances > 0);
        for r in &s.runs {
            assert!(r.detections.contains_key("CORD-D16"));
        }
    }

    #[test]
    fn rates_are_well_defined() {
        let configs = [DetectorConfig::Cord { d: 16 }, DetectorConfig::VcL2Cache];
        let s = sweep_app(AppKind::Cholesky, &configs, &quick_opts());
        let m = s.manifestation_rate();
        assert!((0.0..=1.0).contains(&m));
        if s.manifested().count() > 0 {
            assert!(s.problem_rate_vs("CORD-D16", "Ideal").is_some());
        }
    }

    #[test]
    fn cord_never_fires_on_clean_runs_in_sweep_apps() {
        // No-injection sanity for a couple of apps through the sweep's
        // run_config path.
        for app in [AppKind::Fft, AppKind::Radiosity] {
            let w = kernel(app, ScaleClass::Tiny, 4, 7);
            let d = run_config(
                DetectorConfig::Cord { d: 16 },
                &w,
                1,
                InjectionPlan::none(),
            );
            assert_eq!(d.races, 0, "{} clean run fired", w.name());
            let i = run_config(DetectorConfig::Ideal, &w, 1, InjectionPlan::none());
            assert_eq!(i.races, 0);
        }
    }

    #[test]
    fn results_serialize_roundtrip() {
        let configs = [DetectorConfig::Cord { d: 16 }];
        let s = sweep_app(AppKind::Lu, &configs, &quick_opts());
        let json = serde_json::to_string(&s).unwrap();
        let back: AppSweep = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
