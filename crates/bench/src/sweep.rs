//! The §3.4 injection sweep: the data source for Figures 10 and 12–17.
//!
//! Injection campaigns are *fault-tolerant*: every injected run executes
//! under a panic boundary with a watchdog-configured machine, so a run
//! that deadlocks, livelocks, exceeds its cycle budget, or panics inside
//! a detector is recorded with its [`RunStatus`] and the sweep moves on
//! to the next run. Rates are computed over completed runs only;
//! non-completed runs are surfaced separately (see
//! [`failure_summary`](crate::figures::failure_summary)).

use crate::configs::DetectorConfig;
use crate::obs::ObsSink;
use cord_core::{Detector, DetectorSink, LatencyObserver, ObsCtx, SinkObserver};
use cord_inject::{Campaign, InjectionTarget};
use cord_json::{obj, FromJson, Json, JsonError, ToJson};
use cord_obs::{MetricsRegistry, TraceHandle};
use cord_pool::panic_message;
use cord_sim::config::{CoherenceKind, MachineConfig, Watchdog};
use cord_sim::engine::{InjectionPlan, Machine, SimError};
use cord_trace::program::Workload;
use cord_workloads::{kernel, AppKind, ScaleClass};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Injection runs per application (the paper uses 20–100).
    pub injections_per_app: usize,
    /// Workload scale.
    pub scale: ScaleClassOpt,
    /// Threads (= cores on the paper machine).
    pub threads: usize,
    /// Processor cores of the simulated machine — the scaling sweep
    /// axis (4/8/16/32). Defaults to the paper's 4.
    pub cores: usize,
    /// Coherence backend of the simulated machine.
    pub backend: CoherenceOpt,
    /// Master seed.
    pub seed: u64,
    /// Also draw release-side removals (flag sets). These strand the
    /// waiters — deadlocks under blocking waits, livelocks under spin
    /// waits — and are how the watchdog machinery gets exercised. The
    /// paper's protocol removes acquire-side instances only.
    pub include_releases: bool,
    /// Execute flag waits as bounded spins of this many cycles instead
    /// of blocking. Turns stranded waiters into livelocks the progress
    /// watchdog catches. `None` keeps the paper's blocking semantics.
    pub spin_waits: Option<u64>,
}

/// Serializable mirror of [`ScaleClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleClassOpt {
    /// Maps to [`ScaleClass::Tiny`].
    Tiny,
    /// Maps to [`ScaleClass::Small`].
    Small,
    /// Maps to [`ScaleClass::Paper`].
    Paper,
}

impl From<ScaleClassOpt> for ScaleClass {
    fn from(s: ScaleClassOpt) -> ScaleClass {
        match s {
            ScaleClassOpt::Tiny => ScaleClass::Tiny,
            ScaleClassOpt::Small => ScaleClass::Small,
            ScaleClassOpt::Paper => ScaleClass::Paper,
        }
    }
}

/// Serializable mirror of
/// [`CoherenceKind`](cord_sim::config::CoherenceKind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceOpt {
    /// Broadcast snooping over shared buses (the paper's machine).
    Snooping,
    /// Directory-based MESI with per-home occupancy.
    Directory,
}

impl From<CoherenceOpt> for CoherenceKind {
    fn from(c: CoherenceOpt) -> CoherenceKind {
        match c {
            CoherenceOpt::Snooping => CoherenceKind::SnoopingBus,
            CoherenceOpt::Directory => CoherenceKind::Directory,
        }
    }
}

impl CoherenceOpt {
    /// Short machine-readable name (CLI flag values and JSON).
    pub fn name(self) -> &'static str {
        match self {
            CoherenceOpt::Snooping => "snooping",
            CoherenceOpt::Directory => "directory",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "snooping" => Some(CoherenceOpt::Snooping),
            "directory" => Some(CoherenceOpt::Directory),
            _ => None,
        }
    }
}

impl ScaleClassOpt {
    /// Default watchdog for sweep runs at this scale: a cycle budget two
    /// to three orders of magnitude above a healthy run plus a
    /// no-progress window, so sweeps never hang on a wedged run but
    /// never clip a slow healthy one.
    pub fn watchdog(self) -> Watchdog {
        match self {
            ScaleClassOpt::Tiny => Watchdog::new(10_000_000, 1_000_000),
            ScaleClassOpt::Small => Watchdog::new(100_000_000, 5_000_000),
            ScaleClassOpt::Paper => Watchdog::new(4_000_000_000, 50_000_000),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ScaleClassOpt::Tiny => "tiny",
            ScaleClassOpt::Small => "small",
            ScaleClassOpt::Paper => "paper",
        }
    }
}

impl Default for SweepOptions {
    /// 24 injections per app at Small scale on 4 threads — enough for
    /// stable averages in seconds of wall time.
    fn default() -> Self {
        SweepOptions {
            injections_per_app: 24,
            scale: ScaleClassOpt::Small,
            threads: 4,
            cores: 4,
            backend: CoherenceOpt::Snooping,
            seed: 2006,
            include_releases: false,
            spin_waits: None,
        }
    }
}

impl SweepOptions {
    /// The watchdog every `Machine::run` in this sweep executes under
    /// (derived from the scale; sweeps never run unbounded).
    pub fn watchdog(&self) -> Watchdog {
        self.scale.watchdog()
    }

    /// Applies the sweep's run environment (core count, coherence
    /// backend, watchdog, wait mode) to a detector configuration's
    /// machine. The defaults reproduce each configuration's machine
    /// unchanged — 4-core snooping stays bit-identical.
    pub fn machine_for(&self, config: DetectorConfig) -> MachineConfig {
        let mut mc = config
            .machine()
            .with_cores(self.cores)
            .with_coherence(self.backend.into())
            .with_watchdog(self.watchdog());
        if let Some(spin) = self.spin_waits {
            mc = mc.with_spin_waits(spin);
        }
        mc
    }
}

/// What one detector saw in one injected run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Data races reported.
    pub races: u64,
}

impl Detection {
    /// At least one data race found — the problem was *detected*.
    pub fn found(&self) -> bool {
        self.races > 0
    }
}

/// How one injected run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every configuration ran to completion.
    Completed,
    /// The machine reported a deadlock (all threads blocked).
    Deadlocked,
    /// The watchdog fired: no forward progress (livelock) or the cycle
    /// budget was exceeded.
    TimedOut,
    /// A detector or the simulator panicked; the payload is the panic
    /// message.
    Panicked {
        /// The panic message, when it carried one.
        msg: String,
    },
    /// The run never executed: its shard was abandoned by the
    /// distributed supervisor after exhausting its retry budget. The
    /// payload carries the supervisor's diagnosis. Like the other
    /// non-completed statuses, abandoned runs are excluded from every
    /// rate denominator.
    Abandoned {
        /// Why the owning shard was given up on.
        reason: String,
    },
}

impl RunStatus {
    /// Short machine-readable name for tables and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            RunStatus::Completed => "completed",
            RunStatus::Deadlocked => "deadlocked",
            RunStatus::TimedOut => "timed-out",
            RunStatus::Panicked { .. } => "panicked",
            RunStatus::Abandoned { .. } => "abandoned",
        }
    }

    /// `true` for [`RunStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }

    fn from_sim_error(e: &SimError) -> RunStatus {
        match e {
            SimError::Deadlock { .. } => RunStatus::Deadlocked,
            SimError::Livelock { .. } | SimError::CycleBudgetExceeded { .. } => RunStatus::TimedOut,
        }
    }
}

/// One injected run: the removed instance, how the run ended, and what
/// every configuration detected (empty unless the run completed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// The removed dynamic sync instance.
    pub target: InjectionTarget,
    /// How the run ended.
    pub status: RunStatus,
    /// Failure diagnostics (the [`SimError`] rendering, with per-thread
    /// stuck states) for non-completed runs.
    pub detail: Option<String>,
    /// The Ideal oracle's verdict (defines manifestation); `None` when
    /// the run did not complete.
    pub ideal: Option<Detection>,
    /// Per-configuration detections, keyed by label.
    pub detections: BTreeMap<String, Detection>,
}

/// All injected runs of one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSweep {
    /// Application name.
    pub app: String,
    /// Acquire-side removable instances in the dry run.
    pub acquire_instances: u64,
    /// Release-side instances in the dry run.
    pub release_instances: u64,
    /// Set when the fault-free dry run itself failed (the campaign is
    /// then empty).
    pub dry_run_error: Option<String>,
    /// The injected runs.
    pub runs: Vec<RunRecord>,
}

impl AppSweep {
    /// Runs that completed (the denominator of every rate).
    pub fn completed(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.iter().filter(|r| r.status.is_completed())
    }

    /// Runs that deadlocked, timed out, or panicked.
    pub fn non_completed(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.iter().filter(|r| !r.status.is_completed())
    }

    /// Completed runs where the Ideal oracle found at least one data
    /// race.
    pub fn manifested(&self) -> impl Iterator<Item = &RunRecord> {
        self.completed()
            .filter(|r| r.ideal.is_some_and(|d| d.found()))
    }

    /// Fraction of *completed* injections that manifested (Figure 10's
    /// metric). Non-completed runs crashed the simulated program rather
    /// than racing it; they are reported separately, not averaged in.
    pub fn manifestation_rate(&self) -> f64 {
        let completed = self.completed().count();
        if completed == 0 {
            return 0.0;
        }
        self.manifested().count() as f64 / completed as f64
    }

    /// Problem detection count for a configuration over completed runs
    /// (a config may also fire on non-manifested runs — different
    /// interleavings, like the paper's volrend anomaly — so the rate can
    /// exceed 1).
    pub fn problems_found(&self, label: &str) -> usize {
        self.completed()
            .filter(|r| r.detections.get(label).is_some_and(Detection::found))
            .count()
    }

    /// Problem detection rate of `label` relative to `base` (both
    /// counted over completed runs; the denominator is `base`'s
    /// detections).
    pub fn problem_rate_vs(&self, label: &str, base: &str) -> Option<f64> {
        let base_found = if base == "Ideal" {
            self.manifested().count()
        } else {
            self.problems_found(base)
        };
        if base_found == 0 {
            return None;
        }
        Some(self.problems_found(label) as f64 / base_found as f64)
    }

    /// Total raw data races reported by `label` across completed runs.
    pub fn races_found(&self, label: &str) -> u64 {
        self.completed()
            .filter_map(|r| r.detections.get(label))
            .map(|d| d.races)
            .sum()
    }

    /// Total raw races the Ideal oracle reported across completed runs.
    pub fn ideal_races(&self) -> u64 {
        self.completed()
            .filter_map(|r| r.ideal)
            .map(|d| d.races)
            .sum()
    }

    /// Raw race detection rate of `label` relative to `base`.
    pub fn race_rate_vs(&self, label: &str, base: &str) -> Option<f64> {
        let base_races = if base == "Ideal" {
            self.ideal_races()
        } else {
            self.races_found(base)
        };
        if base_races == 0 {
            return None;
        }
        Some(self.races_found(label) as f64 / base_races as f64)
    }
}

/// Results of the full sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepResults {
    /// The options the sweep ran with.
    pub options: SweepOptions,
    /// Per-application results, in figure order.
    pub apps: Vec<AppSweep>,
}

impl SweepResults {
    /// Average of a per-app metric over apps where it is defined
    /// (paper averages are "based on more than a hundred manifested
    /// errors per configuration").
    pub fn average<F: Fn(&AppSweep) -> Option<f64>>(&self, f: F) -> Option<f64> {
        let vals: Vec<f64> = self.apps.iter().filter_map(f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Total non-completed runs across all apps, by status kind.
    pub fn failure_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for app in &self.apps {
            for r in app.non_completed() {
                *counts.entry(r.status.kind()).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// Observability context for one sweep cell: where traces and metrics
/// from this (app, run) land, threaded from the runner down into
/// [`run_config_impl`]. `None` everywhere keeps the zero-overhead
/// disabled path (no trace ring, no registry work).
#[derive(Clone, Copy)]
pub(crate) struct RunObsCtx<'a> {
    /// The sweep-wide sink.
    pub sink: &'a ObsSink,
    /// Application name, used for trace file naming.
    pub app: &'a str,
    /// Run index within the app's campaign.
    pub run_index: usize,
}

/// Shared implementation behind
/// [`SweepRunner::run_detector`](crate::runner::SweepRunner::run_detector):
/// construct the configuration's detector through
/// [`DetectorConfig::build_sink`], run it on the configuration's
/// machine under the sweep's watchdog, and count what it found. The
/// machine is `Machine<SinkObserver<DetectorEnum>>` — the sink API with
/// the observer adapter over it — so the whole (app × run) inner loop
/// is monomorphized: no virtual dispatch per access, and inline
/// detection exercises the very ingestion path a capture replay or the
/// daemon uses.
///
/// With `obs` set, the machine and detector share a bounded trace ring
/// whose snapshot is written per cell, and the run's simulator and
/// detector counters are merged into the sweep's metrics registry.
/// Only completed runs contribute metrics; aborted runs have no final
/// statistics to reconcile.
pub(crate) fn run_config_impl(
    config: DetectorConfig,
    workload: &Workload,
    seed: u64,
    plan: InjectionPlan,
    opts: &SweepOptions,
    obs: Option<RunObsCtx<'_>>,
) -> Result<Detection, SimError> {
    let machine = opts.machine_for(config);
    let trace = match obs {
        Some(o) if o.sink.tracing() => Some(TraceHandle::bounded(o.sink.trace_capacity())),
        _ => None,
    };
    let ctx = match &trace {
        Some(h) => ObsCtx::with_trace(h.clone()),
        None => ObsCtx::disabled(),
    };
    let det = config.build_sink(workload.num_threads(), machine.cores, seed, ctx);
    // Two machine instantiations, not a runtime flag: the disabled path
    // is the plain `Machine<SinkObserver<_>>` with no timing code in it
    // at all, so observability stays provably free when off. The
    // obs-enabled path wraps the observer in a LatencyObserver that
    // times every on_access into a histogram.
    let (out, mut det, access_latency) = if obs.is_some() {
        let mut m = Machine::new(
            machine,
            workload,
            LatencyObserver::new(SinkObserver::new(det)),
            seed,
            plan,
        );
        if let Some(h) = &trace {
            m = m.with_trace(h.clone());
        }
        let (out, lat) = m.run()?;
        let (det, hist) = lat.into_parts();
        (out, det, Some(hist))
    } else {
        let mut m = Machine::new(machine, workload, SinkObserver::new(det), seed, plan);
        if let Some(h) = &trace {
            m = m.with_trace(h.clone());
        }
        let (out, det) = m.run()?;
        (out, det, None)
    };
    if let Some(o) = obs {
        let mut reg = MetricsRegistry::default();
        out.stats.record_into(&mut reg);
        reg.merge(&det.sink_mut().drain().metrics);
        o.sink.merge(&reg);
        if let Some(h) = &trace {
            o.sink.write_trace(o.app, o.run_index, &config.label(), h);
        }
        if let Some(hist) = &access_latency {
            o.sink.record_access_latency(hist);
        }
    }
    Ok(Detection {
        races: det.sink().race_count(),
    })
}

/// Runs every configuration on one injected run behind a panic
/// boundary, producing the run's record. The Ideal oracle runs once and
/// its result is reused if `configs` also lists it (no double
/// simulation).
pub(crate) fn run_injection(
    target: InjectionTarget,
    configs: &[DetectorConfig],
    workload: &Workload,
    seed: u64,
    opts: &SweepOptions,
    obs: Option<RunObsCtx<'_>>,
) -> RunRecord {
    type RunOk = (Detection, BTreeMap<String, Detection>);
    let plan = target.plan();
    let outcome: Result<Result<RunOk, SimError>, _> = catch_unwind(AssertUnwindSafe(|| {
        let ideal = run_config_impl(DetectorConfig::Ideal, workload, seed, plan, opts, obs)?;
        let mut detections = BTreeMap::new();
        for &cfg in configs {
            let det = if cfg == DetectorConfig::Ideal {
                ideal
            } else {
                run_config_impl(cfg, workload, seed, plan, opts, obs)?
            };
            detections.insert(cfg.label(), det);
        }
        Ok((ideal, detections))
    }));
    match outcome {
        Ok(Ok((ideal, detections))) => RunRecord {
            target,
            status: RunStatus::Completed,
            detail: None,
            ideal: Some(ideal),
            detections,
        },
        Ok(Err(sim)) => RunRecord {
            target,
            status: RunStatus::from_sim_error(&sim),
            detail: Some(sim.to_string()),
            ideal: None,
            detections: BTreeMap::new(),
        },
        Err(payload) => RunRecord {
            target,
            status: RunStatus::Panicked {
                msg: panic_message(payload.as_ref()),
            },
            detail: None,
            ideal: None,
            detections: BTreeMap::new(),
        },
    }
}

/// The deterministic per-run seed of run `i` in a sweep.
pub fn run_seed(opts: &SweepOptions, i: usize) -> u64 {
    opts.seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
}

/// Builds the workload one sweep run of `app` executes (scale, threads,
/// and base seed from the options).
pub(crate) fn sweep_workload(app: AppKind, opts: &SweepOptions) -> Workload {
    kernel(app, opts.scale.into(), opts.threads, opts.seed)
}

/// Plans an app's injection campaign: the watchdogged dry run that
/// counts removable instances and draws the target set. The dry run
/// executes on the paper machine, watchdogged like every other run in
/// the sweep. Errors are rendered to strings (they become the
/// [`AppSweep::dry_run_error`]).
pub(crate) fn plan_campaign(
    workload: &Workload,
    app: AppKind,
    opts: &SweepOptions,
) -> Result<Campaign, String> {
    let dry_machine = opts.machine_for(DetectorConfig::Cord { d: 16 });
    let campaign_seed = opts.seed ^ app as u64;
    let campaign = if opts.include_releases {
        Campaign::plan_mixed(
            &dry_machine,
            workload,
            opts.injections_per_app,
            campaign_seed,
        )
    } else {
        Campaign::plan(
            &dry_machine,
            workload,
            opts.injections_per_app,
            campaign_seed,
        )
    };
    campaign.map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// JSON codecs (checkpoint files and --json dumps).

impl ToJson for ScaleClassOpt {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for ScaleClassOpt {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "tiny" => Ok(ScaleClassOpt::Tiny),
            "small" => Ok(ScaleClassOpt::Small),
            "paper" => Ok(ScaleClassOpt::Paper),
            other => Err(JsonError::new(format!("unknown scale class {other:?}"))),
        }
    }
}

impl ToJson for CoherenceOpt {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for CoherenceOpt {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str()?;
        CoherenceOpt::from_name(s)
            .ok_or_else(|| JsonError::new(format!("unknown coherence backend {s:?}")))
    }
}

impl ToJson for SweepOptions {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("injections_per_app", self.injections_per_app.to_json()),
            ("scale", self.scale.to_json()),
            ("threads", self.threads.to_json()),
            ("seed", self.seed.to_json()),
            ("include_releases", self.include_releases.to_json()),
            ("spin_waits", self.spin_waits.to_json()),
        ];
        // The scaling axes serialize only at non-default values: the
        // default encoding (and therefore checkpoint bytes and
        // options hashes of every pre-existing sweep) is unchanged.
        if self.cores != 4 {
            fields.push(("cores", self.cores.to_json()));
        }
        if self.backend != CoherenceOpt::Snooping {
            fields.push(("backend", self.backend.to_json()));
        }
        obj(fields)
    }
}

impl FromJson for SweepOptions {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SweepOptions {
            injections_per_app: usize::from_json(v.field("injections_per_app")?)?,
            scale: ScaleClassOpt::from_json(v.field("scale")?)?,
            threads: usize::from_json(v.field("threads")?)?,
            cores: match v.field("cores") {
                Ok(f) => usize::from_json(f)?,
                Err(_) => 4,
            },
            backend: match v.field("backend") {
                Ok(f) => CoherenceOpt::from_json(f)?,
                Err(_) => CoherenceOpt::Snooping,
            },
            seed: u64::from_json(v.field("seed")?)?,
            include_releases: bool::from_json(v.field("include_releases")?)?,
            spin_waits: Option::<u64>::from_json(v.field("spin_waits")?)?,
        })
    }
}

impl ToJson for Detection {
    fn to_json(&self) -> Json {
        obj(vec![("races", self.races.to_json())])
    }
}

impl FromJson for Detection {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Detection {
            races: u64::from_json(v.field("races")?)?,
        })
    }
}

impl ToJson for RunStatus {
    fn to_json(&self) -> Json {
        let mut fields = vec![("status", Json::Str(self.kind().to_string()))];
        if let RunStatus::Panicked { msg } = self {
            fields.push(("msg", msg.to_json()));
        }
        if let RunStatus::Abandoned { reason } = self {
            fields.push(("reason", reason.to_json()));
        }
        obj(fields)
    }
}

impl FromJson for RunStatus {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("status")?.as_str()? {
            "completed" => Ok(RunStatus::Completed),
            "deadlocked" => Ok(RunStatus::Deadlocked),
            "timed-out" => Ok(RunStatus::TimedOut),
            "panicked" => Ok(RunStatus::Panicked {
                msg: String::from_json(v.field("msg")?)?,
            }),
            "abandoned" => Ok(RunStatus::Abandoned {
                reason: String::from_json(v.field("reason")?)?,
            }),
            other => Err(JsonError::new(format!("unknown run status {other:?}"))),
        }
    }
}

pub(crate) fn target_to_json(t: &InjectionTarget) -> Json {
    obj(vec![
        ("kind", Json::Str(t.kind().to_string())),
        ("instance", t.instance().to_json()),
    ])
}

pub(crate) fn target_from_json(v: &Json) -> Result<InjectionTarget, JsonError> {
    let n = u64::from_json(v.field("instance")?)?;
    match v.field("kind")?.as_str()? {
        "acquire" => Ok(InjectionTarget::Acquire(n)),
        "release" => Ok(InjectionTarget::Release(n)),
        other => Err(JsonError::new(format!("unknown target kind {other:?}"))),
    }
}

impl ToJson for RunRecord {
    fn to_json(&self) -> Json {
        let detections = Json::Object(
            self.detections
                .iter()
                .map(|(label, d)| (label.clone(), d.to_json()))
                .collect(),
        );
        obj(vec![
            ("target", target_to_json(&self.target)),
            ("status", self.status.to_json()),
            ("detail", self.detail.to_json()),
            ("ideal", self.ideal.to_json()),
            ("detections", detections),
        ])
    }
}

impl FromJson for RunRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut detections = BTreeMap::new();
        for (label, d) in v.field("detections")?.as_object()? {
            detections.insert(label.clone(), Detection::from_json(d)?);
        }
        let ideal = match v.field("ideal")? {
            Json::Null => None,
            d => Some(Detection::from_json(d)?),
        };
        Ok(RunRecord {
            target: target_from_json(v.field("target")?)?,
            status: RunStatus::from_json(v.field("status")?)?,
            detail: Option::<String>::from_json(v.field("detail")?)?,
            ideal,
            detections,
        })
    }
}

impl ToJson for AppSweep {
    fn to_json(&self) -> Json {
        obj(vec![
            ("app", self.app.to_json()),
            ("acquire_instances", self.acquire_instances.to_json()),
            ("release_instances", self.release_instances.to_json()),
            ("dry_run_error", self.dry_run_error.to_json()),
            ("runs", self.runs.to_json()),
        ])
    }
}

impl FromJson for AppSweep {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(AppSweep {
            app: String::from_json(v.field("app")?)?,
            acquire_instances: u64::from_json(v.field("acquire_instances")?)?,
            release_instances: u64::from_json(v.field("release_instances")?)?,
            dry_run_error: Option::<String>::from_json(v.field("dry_run_error")?)?,
            runs: Vec::<RunRecord>::from_json(v.field("runs")?)?,
        })
    }
}

impl ToJson for SweepResults {
    fn to_json(&self) -> Json {
        obj(vec![
            ("options", self.options.to_json()),
            ("apps", self.apps.to_json()),
        ])
    }
}

impl FromJson for SweepResults {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SweepResults {
            options: SweepOptions::from_json(v.field("options")?)?,
            apps: Vec::<AppSweep>::from_json(v.field("apps")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SweepRunner;

    fn quick_opts() -> SweepOptions {
        SweepOptions {
            injections_per_app: 4,
            scale: ScaleClassOpt::Tiny,
            threads: 4,
            seed: 7,
            ..SweepOptions::default()
        }
    }

    fn runner() -> SweepRunner {
        SweepRunner::new(quick_opts())
    }

    #[test]
    fn sweep_one_app_produces_records() {
        let configs = [DetectorConfig::Cord { d: 16 }];
        let s = runner().run_app(AppKind::WaterN2, &configs);
        assert_eq!(s.app, "water-n2");
        assert_eq!(s.runs.len(), 4);
        assert!(s.acquire_instances > 0);
        assert!(s.dry_run_error.is_none());
        for r in &s.runs {
            assert_eq!(r.status, RunStatus::Completed);
            assert!(r.detections.contains_key("CORD-D16"));
        }
    }

    #[test]
    fn rates_are_well_defined() {
        let configs = [DetectorConfig::Cord { d: 16 }, DetectorConfig::VcL2Cache];
        let s = runner().run_app(AppKind::Cholesky, &configs);
        let m = s.manifestation_rate();
        assert!((0.0..=1.0).contains(&m));
        if s.manifested().count() > 0 {
            assert!(s.problem_rate_vs("CORD-D16", "Ideal").is_some());
        }
    }

    #[test]
    fn cord_never_fires_on_clean_runs_in_sweep_apps() {
        // No-injection sanity for a couple of apps through the sweep's
        // run_detector path.
        let r = runner();
        for app in [AppKind::Fft, AppKind::Radiosity] {
            let w = kernel(app, ScaleClass::Tiny, 4, 7);
            let d = r
                .run_detector(DetectorConfig::Cord { d: 16 }, &w, 1, InjectionPlan::none())
                .expect("clean run completes");
            assert_eq!(d.races, 0, "{} clean run fired", w.name());
            let i = r
                .run_detector(DetectorConfig::Ideal, &w, 1, InjectionPlan::none())
                .expect("clean run completes");
            assert_eq!(i.races, 0);
        }
    }

    #[test]
    fn ideal_in_configs_is_not_simulated_twice() {
        // With Ideal listed, the detections table carries its label and
        // the value equals the manifestation verdict (one simulation,
        // reused).
        let configs = [DetectorConfig::Ideal, DetectorConfig::Cord { d: 16 }];
        let s = runner().run_app(AppKind::Lu, &configs);
        for r in &s.runs {
            assert_eq!(r.detections.get("Ideal").copied(), r.ideal);
        }
    }

    #[test]
    fn results_serialize_roundtrip() {
        let configs = [DetectorConfig::Cord { d: 16 }];
        let s = SweepResults {
            options: quick_opts(),
            apps: vec![runner().run_app(AppKind::Lu, &configs)],
        };
        let json = s.to_json().to_string_pretty();
        let back = SweepResults::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
        assert_eq!(s, back);
        // Byte-stable re-serialization (what checkpoint resume relies on).
        assert_eq!(json, back.to_json().to_string_pretty());
    }

    #[test]
    fn default_scaling_axes_leave_encoding_unchanged() {
        // Checkpoint compatibility: at the default 4-core snooping
        // setting the options JSON must not mention the new axes at
        // all (options hashes and fixture bytes are pinned to it).
        let json = SweepOptions::default().to_json().to_string_compact();
        assert!(!json.contains("cores"));
        assert!(!json.contains("backend"));
        // And a pre-scaling-era encoding still decodes (to defaults).
        let back = SweepOptions::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
        assert_eq!(back, SweepOptions::default());
    }

    #[test]
    fn scaling_axes_roundtrip_at_non_default_values() {
        let opts = SweepOptions {
            cores: 16,
            backend: CoherenceOpt::Directory,
            ..quick_opts()
        };
        let json = opts.to_json().to_string_compact();
        assert!(json.contains("\"cores\": 16") || json.contains("\"cores\":16"));
        let back = SweepOptions::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
        assert_eq!(back, opts);
        let mc = opts.machine_for(DetectorConfig::Cord { d: 16 });
        assert_eq!(mc.cores, 16);
        assert_eq!(mc.coherence, CoherenceKind::Directory);
    }

    #[test]
    fn failure_statuses_roundtrip() {
        let r = RunRecord {
            target: cord_inject::InjectionTarget::Release(3),
            status: RunStatus::Panicked { msg: "boom".into() },
            detail: Some("diag".into()),
            ideal: None,
            detections: BTreeMap::new(),
        };
        let back = RunRecord::from_json(&r.to_json()).expect("decodes");
        assert_eq!(r, back);
        assert_eq!(back.status.kind(), "panicked");
    }
}
