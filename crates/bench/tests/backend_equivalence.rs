//! Cross-backend race-report equivalence (the §2.5 claim, at scale):
//! CORD's detection is a function of the access *order*, not of
//! coherence timing, so replaying the identical ordered stream through
//! a snooping machine and a directory machine must produce identical
//! race reports — even though every cycle number differs between the
//! two. The companion protocol-level test (identical MESI states and
//! fill paths under the same replay) lives in cord-sim's
//! `mesi_invariants`; this one adds the detector on top, which is only
//! in scope here.

use cord_core::{CordConfig, CordDetector, RaceReport};
use cord_fuzz::gen::{generate, GenConfig};
use cord_sim::config::{CoherenceKind, MachineConfig};
use cord_sim::memsys::{MemEvent, MemorySystem};
use cord_sim::observer::{AccessEvent, AccessKind, CoreId, MemoryObserver};
use cord_trace::op::Op;
use cord_trace::program::Workload;
use cord_trace::types::{Addr, ThreadId};

/// Flattens one thread's ops into `(addr, kind)` accesses. Sync
/// primitives become single labeled accesses at their object's address
/// — the fixed round-robin replay needs no blocking semantics, only a
/// consistent stream both backends see verbatim.
fn accesses_of(w: &Workload, t: usize) -> Vec<(Addr, AccessKind)> {
    let l = w.layout();
    let mut out = Vec::new();
    for op in w.threads()[t].ops() {
        match *op {
            Op::Read(a) => out.push((a, AccessKind::DataRead)),
            Op::Write(a) => out.push((a, AccessKind::DataWrite)),
            Op::Lock(id) => {
                out.push((l.lock_addr(id), AccessKind::SyncRead));
                out.push((l.lock_addr(id), AccessKind::SyncWrite));
            }
            Op::Unlock(id) => out.push((l.lock_addr(id), AccessKind::SyncWrite)),
            Op::FlagSet(id) | Op::FlagReset(id) => {
                out.push((l.flag_addr(id), AccessKind::SyncWrite));
            }
            Op::FlagWait(id) => out.push((l.flag_addr(id), AccessKind::SyncRead)),
            Op::Barrier(id) => {
                let a = l.lock_addr(l.barrier_lock(id));
                out.push((a, AccessKind::SyncRead));
                out.push((a, AccessKind::SyncWrite));
            }
            Op::Atomic(id, _) => {
                out.push((l.atomic_addr(id), AccessKind::SyncRead));
                out.push((l.atomic_addr(id), AccessKind::SyncWrite));
            }
            Op::Compute(_) => {}
        }
    }
    out
}

/// Replays the workload's access streams round-robin (thread `t` on
/// core `t % cores`) through a memory system with the given backend,
/// feeding every access and line removal/fill into a CORD detector at
/// the backend's own (backend-dependent!) cycle numbers. Returns the
/// reports and the final cycle.
fn replay(w: &Workload, kind: CoherenceKind, cores: usize) -> (Vec<RaceReport>, u64) {
    let mc = MachineConfig::paper_4core()
        .with_cores(cores)
        .with_coherence(kind);
    let mut m = MemorySystem::new(mc.clone());
    let mut det = CordDetector::new(CordConfig::paper(), w.num_threads(), cores);
    let streams: Vec<Vec<(Addr, AccessKind)>> =
        (0..w.num_threads()).map(|t| accesses_of(w, t)).collect();
    let mut cursors = vec![0usize; streams.len()];
    let mut instr = vec![0u64; streams.len()];
    let mut now = 0u64;
    loop {
        let mut advanced = false;
        for t in 0..streams.len() {
            let Some(&(addr, kind)) = streams[t].get(cursors[t]) else {
                continue;
            };
            cursors[t] += 1;
            advanced = true;
            let core = CoreId((t % cores) as u8);
            let res = m.access(core, addr, kind.is_write(), now);
            for ev in &res.events {
                match ev {
                    MemEvent::Removed(r) => {
                        det.on_line_removed(r);
                    }
                    MemEvent::Filled { core, level, line } => {
                        det.on_line_filled(*core, *level, *line);
                    }
                }
            }
            det.on_access(&AccessEvent {
                core,
                thread: ThreadId(t as u16),
                addr,
                kind,
                path: res.path,
                instr_index: instr[t],
                cycle: res.done,
            });
            instr[t] += 1;
            now = res.done + 3;
        }
        if !advanced {
            break;
        }
    }
    det.on_run_end(&instr);
    let races = det.races().to_vec();
    (races, now)
}

/// Everything in a report except the cycle — the one field the backend
/// is allowed to change.
fn timeless(r: &RaceReport) -> (u16, u64, AccessKind, u8, u64, u64, u64) {
    (
        r.thread.0,
        r.addr.byte(),
        r.kind,
        r.other_core.0,
        r.my_clock.ticks(),
        r.other_ts.ticks(),
        r.instr_index,
    )
}

#[test]
fn backends_report_identical_races_at_scale() {
    let mut compared = 0usize;
    let mut with_races = 0usize;
    for cores in [8usize, 16, 32] {
        for gen_seed in 0..6u64 {
            let w = generate(&GenConfig::default().short().wide(cores), gen_seed);
            let (snoop, snoop_end) = replay(&w, CoherenceKind::SnoopingBus, cores);
            let (dir, dir_end) = replay(&w, CoherenceKind::Directory, cores);
            let s: Vec<_> = snoop.iter().map(timeless).collect();
            let d: Vec<_> = dir.iter().map(timeless).collect();
            assert_eq!(
                s, d,
                "race reports diverged across backends at {cores} cores, seed {gen_seed}"
            );
            assert!(
                dir_end > snoop_end,
                "directory indirection must cost cycles ({dir_end} vs {snoop_end})"
            );
            compared += 1;
            with_races += usize::from(!snoop.is_empty());
        }
    }
    assert_eq!(compared, 18);
    // The fixed replay deliberately ignores blocking semantics, so some
    // generated workloads race under it — without that, equivalence
    // would be vacuous.
    assert!(with_races > 0, "no replay produced any race report");
}
