//! Fault-tolerance acceptance tests for the injection-sweep runner:
//! hung and panicked runs become recorded [`RunStatus`] outcomes, the
//! rest of the sweep keeps going, failures reproduce deterministically,
//! and a checkpointed sweep resumes bit-identically.
//!
//! Blocking waits turn a removed release into a deadlock; spin waits
//! turn the same removal into a watchdog-caught livelock. Wait mode is
//! machine-wide ([`SweepOptions::spin_waits`]), so the two hang flavors
//! come from two sweeps over the same 12 apps.

use cord_bench::checkpoint::{options_hash, Checkpoint};
use cord_bench::runner::SweepRunner;
use cord_bench::sweep::{RunStatus, ScaleClassOpt, SweepOptions};
use cord_bench::DetectorConfig;
use cord_workloads::all_apps;

/// A small watchdogged sweep over every app: mixed acquire/release
/// targets plus the deliberately faulty PanicProbe detector.
fn probe_opts(spin: Option<u64>) -> SweepOptions {
    SweepOptions {
        injections_per_app: 6,
        scale: ScaleClassOpt::Tiny,
        threads: 4,
        seed: 2006,
        include_releases: true,
        spin_waits: spin,
        ..SweepOptions::default()
    }
}

fn probe_configs() -> Vec<DetectorConfig> {
    vec![DetectorConfig::Cord { d: 16 }, DetectorConfig::PanicProbe]
}

#[test]
fn spin_sweep_records_timeouts_and_panics_and_still_completes() {
    let opts = probe_opts(Some(200));
    let results = SweepRunner::new(opts)
        .run(&probe_configs())
        .expect("checkpoint-less sweep");
    assert_eq!(results.apps.len(), all_apps().len());

    let counts = results.failure_counts();
    assert!(
        counts.get("timed-out").copied().unwrap_or(0) >= 1,
        "no spin-hang run timed out: {counts:?}"
    );
    assert!(
        counts.get("panicked").copied().unwrap_or(0) >= 1,
        "the panic probe never fired: {counts:?}"
    );
    let completed: usize = results.apps.iter().map(|a| a.completed().count()).sum();
    assert!(completed >= 1, "every run failed: {counts:?}");

    for app in &results.apps {
        assert!(app.dry_run_error.is_none(), "{} dry run failed", app.app);
        for r in &app.runs {
            match &r.status {
                RunStatus::Completed => {
                    assert!(r.ideal.is_some());
                    assert!(r.detections.contains_key("CORD-D16"));
                }
                RunStatus::TimedOut => {
                    let detail = r.detail.as_deref().unwrap_or_default();
                    assert!(
                        detail.contains("livelock") || detail.contains("cycle budget"),
                        "timed-out run lacks watchdog detail: {detail:?}"
                    );
                    assert!(r.detections.is_empty());
                }
                RunStatus::Panicked { msg } => {
                    assert!(
                        msg.contains("panic probe fired"),
                        "unexpected panic payload: {msg:?}"
                    );
                    assert!(r.detections.is_empty());
                }
                RunStatus::Deadlocked => {
                    panic!("spin waits cannot deadlock, got {:?}", r.detail)
                }
                RunStatus::Abandoned { reason } => {
                    panic!("in-process sweeps cannot abandon shards, got {reason:?}")
                }
            }
        }
    }
}

#[test]
fn blocking_sweep_records_deadlocks_and_still_completes() {
    let opts = probe_opts(None);
    let results = SweepRunner::new(opts)
        .run(&[DetectorConfig::Cord { d: 16 }])
        .expect("checkpoint-less sweep");
    let counts = results.failure_counts();
    assert!(
        counts.get("deadlocked").copied().unwrap_or(0) >= 1,
        "no removed release deadlocked its waiter: {counts:?}"
    );
    let completed: usize = results.apps.iter().map(|a| a.completed().count()).sum();
    assert!(completed >= 1, "every run failed: {counts:?}");
    for app in &results.apps {
        for r in app.non_completed() {
            if r.status == RunStatus::Deadlocked {
                let detail = r.detail.as_deref().unwrap_or_default();
                assert!(detail.contains("deadlock"), "detail: {detail:?}");
                // The diagnostics name the wedged threads.
                assert!(
                    detail.contains("thread"),
                    "no stuck-thread diag: {detail:?}"
                );
            }
        }
        // Rates stay well-defined over the completed denominator.
        let rate = app.manifestation_rate();
        assert!((0.0..=1.0).contains(&rate) || rate.is_nan());
    }
}

/// A non-completed run's failure reproduces exactly when re-executed
/// with the sweep's own per-run seed.
#[test]
fn recorded_failures_are_deterministic() {
    let opts = probe_opts(None);
    let configs = [DetectorConfig::Cord { d: 16 }];
    let runner = SweepRunner::new(opts);
    let mut checked = 0;
    for app in all_apps() {
        let sweep = runner.run_app(app, &configs);
        for (i, r) in sweep.runs.iter().enumerate() {
            if r.status.is_completed() {
                continue;
            }
            let again = runner.rerun(app, r.target, i, &configs);
            assert_eq!(&again, r, "{}: run {i} did not reproduce", sweep.app);
            checked += 1;
            break;
        }
        if checked >= 2 {
            return;
        }
    }
    assert!(checked > 0, "no app produced a non-completed run to check");
}

/// The headline acceptance: the probed sweep produces identical
/// `SweepResults` whether run uninterrupted, checkpointed from scratch,
/// or killed after app 6 and resumed from the checkpoint.
#[test]
fn checkpointed_sweep_resumes_bit_identically() {
    let opts = probe_opts(Some(200));
    let configs = probe_configs();
    let dir = std::env::temp_dir().join("cord-fault-tolerance-resume");
    std::fs::create_dir_all(&dir).expect("temp dir");

    let uninterrupted = SweepRunner::new(opts)
        .run(&configs)
        .expect("checkpoint-less sweep");

    let fresh_path = dir.join("fresh.json");
    let _ = std::fs::remove_file(&fresh_path);
    let fresh = SweepRunner::new(opts)
        .checkpoint(&fresh_path)
        .run(&configs)
        .expect("checkpointed sweep");
    assert_eq!(fresh, uninterrupted);
    assert!(fresh_path.exists(), "checkpoint file missing after sweep");

    // Simulate a kill after app 6: seed a checkpoint holding only the
    // first six AppSweeps, then resume.
    let resumed_path = dir.join("resumed.json");
    Checkpoint {
        options_hash: options_hash(&opts, &configs),
        options: opts,
        apps: uninterrupted.apps[..6].to_vec(),
    }
    .store(&resumed_path)
    .expect("seed checkpoint");
    let resumed = SweepRunner::new(opts)
        .checkpoint(&resumed_path)
        .run(&configs)
        .expect("resumed sweep");
    assert_eq!(resumed, uninterrupted);

    // A stale checkpoint (different options) must be ignored, not
    // resumed: the sweep still matches the uninterrupted result.
    let stale_path = dir.join("stale.json");
    let other = SweepOptions { seed: 9999, ..opts };
    Checkpoint {
        options_hash: options_hash(&other, &configs),
        options: other,
        apps: uninterrupted.apps[..6].to_vec(),
    }
    .store(&stale_path)
    .expect("stale checkpoint");
    let restarted = SweepRunner::new(opts)
        .checkpoint(&stale_path)
        .run(&configs)
        .expect("restarted sweep");
    assert_eq!(restarted, uninterrupted);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance guard: every machine a sweep runs on carries a watchdog —
/// no `Machine::run()` in a sweep is unbounded.
#[test]
fn sweep_machines_are_always_watchdogged() {
    for scale in [
        ScaleClassOpt::Tiny,
        ScaleClassOpt::Small,
        ScaleClassOpt::Paper,
    ] {
        let opts = SweepOptions {
            scale,
            ..SweepOptions::default()
        };
        for config in DetectorConfig::all_for_sweep() {
            let machine = opts.machine_for(config);
            assert!(
                machine.watchdog.max_cycles.is_some(),
                "{config:?} at {scale:?} has no cycle budget"
            );
            assert!(
                machine.watchdog.progress_window.is_some(),
                "{config:?} at {scale:?} has no progress window"
            );
        }
    }
}
