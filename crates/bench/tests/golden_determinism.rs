//! Golden-determinism snapshot: pins the full observable behaviour of
//! the engine + detector stack — per-run simulator statistics, detector
//! race counts, ground-truth thread hashes, and the order-log byte
//! stream — for a small (app × seed × injection) matrix against a
//! committed fixture.
//!
//! Any engine or detector refactor that changes a single counter, a
//! single clock update, or a single log byte fails this test with a
//! JSON diff instead of relying on tier-1 tests alone.
//!
//! To regenerate the fixture after an *intentional* behaviour change:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test -p cord-bench --test golden_determinism
//! ```

use cord_core::{encode_log, CordConfig, CordDetector, Detector};
use cord_detectors::{IdealDetector, VcConfig, VcLimitedDetector};
use cord_json::{obj, Json, ToJson};
use cord_obs::MetricsRegistry;
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_sim::truth::{fnv_fold, FNV_OFFSET};
use cord_workloads::{kernel, AppKind, ScaleClass};
use std::path::PathBuf;

const THREADS: usize = 4;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_runs.json")
}

/// FNV-1a over a byte stream of 8-byte records.
fn hash_bytes(bytes: &[u8]) -> u64 {
    assert!(bytes.len().is_multiple_of(8), "log records are 8 bytes");
    let mut h = FNV_OFFSET;
    for chunk in bytes.chunks_exact(8) {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        h = fnv_fold(h, u64::from_le_bytes(word));
    }
    h
}

/// One CORD run: stats + races + order-log bytes + ground truth.
fn cord_cell(w: &cord_trace::program::Workload, seed: u64, plan: InjectionPlan) -> Json {
    let det = CordDetector::new(CordConfig::paper(), w.num_threads(), 4);
    let m = Machine::new(MachineConfig::paper_4core(), w, det, seed, plan);
    let (out, det) = m.run().expect("golden matrix runs complete");
    let mut reg = MetricsRegistry::default();
    out.stats.record_into(&mut reg);
    det.stats().record_into(&mut reg);
    let log = encode_log(det.recorder().entries());
    obj(vec![
        ("races", det.race_count().to_json()),
        ("log_bytes", (log.len() as u64).to_json()),
        ("log_hash", hash_bytes(&log).to_json()),
        ("thread_hashes", out.truth.thread_hashes.to_json()),
        ("metrics", reg.to_json()),
    ])
}

/// Race count of one comparison detector on the same run.
fn races_of<D: Detector + cord_sim::observer::MemoryObserver>(
    machine: MachineConfig,
    w: &cord_trace::program::Workload,
    det: D,
    seed: u64,
    plan: InjectionPlan,
) -> Json {
    let m = Machine::new(machine, w, det, seed, plan);
    let (_, det) = m.run().expect("golden matrix runs complete");
    det.race_count().to_json()
}

fn snapshot() -> String {
    let mut cells = Vec::new();
    for app in [AppKind::Fft, AppKind::WaterN2] {
        for seed in [11u64, 12] {
            let w = kernel(app, ScaleClass::Tiny, THREADS, seed);
            for (plan_name, plan) in [
                ("none", InjectionPlan::none()),
                ("rm1", InjectionPlan::remove_nth(1)),
            ] {
                let key = format!("{}-s{}-{}", w.name(), seed, plan_name);
                let ideal = races_of(
                    MachineConfig::infinite_cache(),
                    &w,
                    IdealDetector::new(w.num_threads()),
                    seed,
                    plan,
                );
                let vc_l2 = races_of(
                    MachineConfig::paper_4core(),
                    &w,
                    VcLimitedDetector::new(VcConfig::l2_cache(), w.num_threads(), 4),
                    seed,
                    plan,
                );
                let vc_inf = races_of(
                    MachineConfig::infinite_cache(),
                    &w,
                    VcLimitedDetector::new(VcConfig::inf_cache(), w.num_threads(), 4),
                    seed,
                    plan,
                );
                let cell = obj(vec![
                    ("cord", cord_cell(&w, seed, plan)),
                    ("ideal_races", ideal),
                    ("vc_l2_races", vc_l2),
                    ("vc_inf_races", vc_inf),
                ]);
                cells.push((key, cell));
            }
        }
    }
    Json::Object(cells).to_string_pretty()
}

#[test]
fn golden_matrix_matches_fixture() {
    let current = snapshot();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("golden fixture updated: {}", path.display());
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        current, pinned,
        "engine/detector behaviour diverged from the pinned seed snapshot; \
         if the change is intentional, regenerate with GOLDEN_UPDATE=1"
    );
}

#[test]
fn snapshot_is_deterministic_across_processes_stand_in() {
    // Two in-process evaluations must agree byte-for-byte (guards
    // against HashMap-iteration-order leaking into the snapshot).
    assert_eq!(snapshot(), snapshot());
}
