//! Acceptance battery for the lock-free workload family: every kernel
//! is race-free by construction under the full differential oracle on
//! both coherence backends, and §3.4-style injection produces at least
//! one ground-truth race that CORD itself reports.

use cord_core::{CordConfig, CordDetector};
use cord_fuzz::oracle::{check_workload, OracleOptions};
use cord_fuzz::truthhb::{racy_words, Tandem};
use cord_inject::count_instances;
use cord_sim::config::{CoherenceKind, MachineConfig, Watchdog};
use cord_sim::engine::{InjectionPlan, Machine};
use cord_workloads::{kernel, lockfree_apps, ScaleClass};
use std::collections::BTreeSet;

const BACKENDS: [CoherenceKind; 2] = [CoherenceKind::SnoopingBus, CoherenceKind::Directory];

fn machine(backend: CoherenceKind) -> MachineConfig {
    MachineConfig::paper_4core()
        .with_coherence(backend)
        .with_watchdog(Watchdog::new(50_000_000, 6_000_000))
}

#[test]
fn lockfree_apps_pass_the_full_battery_clean_on_both_backends() {
    for app in lockfree_apps() {
        for backend in BACKENDS {
            let w = kernel(app, ScaleClass::Tiny, 4, 7);
            let opts = OracleOptions {
                expect_race_free: true,
                max_injections: 0,
                backend,
                ..OracleOptions::default()
            };
            let report = check_workload(&w, &opts);
            assert!(
                report.passed(),
                "{} on {backend:?}: {:?}",
                app.name(),
                report.violations
            );
            assert_eq!(
                report.truth_races,
                0,
                "{} on {backend:?} has ground-truth races",
                app.name()
            );
        }
    }
}

#[test]
fn every_injected_lockfree_app_yields_a_cord_reported_race() {
    for app in lockfree_apps() {
        for backend in BACKENDS {
            let w = kernel(app, ScaleClass::Tiny, 4, 7);
            let threads = w.num_threads();
            let cfg = machine(backend);
            let counts = count_instances(&cfg, &w, 7).expect("dry run");
            assert!(
                counts.acquires > 0,
                "{} has no removable sync instances",
                app.name()
            );
            let mut truth_racy = 0usize;
            let mut cord_caught = 0usize;
            for n in 0..counts.acquires {
                let det = CordDetector::new(CordConfig::paper(), threads, cfg.cores);
                let m = Machine::new(
                    cfg.clone(),
                    &w,
                    Tandem::new(det),
                    7,
                    InjectionPlan::remove_nth(n),
                );
                let Ok((_, tandem)) = m.run() else {
                    // Removing synchronization may deadlock; tolerated.
                    continue;
                };
                let truth = racy_words(&tandem.rec.events, threads, &BTreeSet::new());
                if truth.is_empty() {
                    continue;
                }
                truth_racy += 1;
                if !tandem.det.races().is_empty() {
                    cord_caught += 1;
                }
            }
            assert!(
                truth_racy > 0,
                "{} on {backend:?}: no injection produced a ground-truth race",
                app.name()
            );
            assert!(
                cord_caught > 0,
                "{} on {backend:?}: CORD reported none of the {truth_racy} injected races",
                app.name()
            );
        }
    }
}
