//! Acceptance tests for the observability layer (trace/metrics
//! export): enabling it must not perturb sweep results by a single
//! byte, the aggregate metrics must reconcile with the per-run
//! detections, and the trace files must carry well-formed events.

use cord_bench::runner::SweepRunner;
use cord_bench::sweep::{ScaleClassOpt, SweepOptions};
use cord_bench::DetectorConfig;
use cord_json::{FromJson, Json, ToJson};
use cord_obs::MetricsRegistry;
use cord_workloads::AppKind;
use std::fs;
use std::path::PathBuf;

fn quick_opts() -> SweepOptions {
    SweepOptions {
        injections_per_app: 3,
        scale: ScaleClassOpt::Tiny,
        threads: 4,
        seed: 2006,
        ..SweepOptions::default()
    }
}

const APPS: [AppKind; 2] = [AppKind::WaterN2, AppKind::Fft];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cord-obs-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn observability_is_out_of_band_and_metrics_reconcile() {
    let dir = temp_dir("sweep");
    let trace_dir = dir.join("traces");
    let metrics_path = dir.join("metrics.json");
    let cfgs = vec![DetectorConfig::Cord { d: 16 }];

    let plain = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(2)
        .run(&cfgs)
        .expect("plain sweep");
    let observed = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(2)
        .trace_dir(&trace_dir)
        .metrics_out(&metrics_path)
        .run(&cfgs)
        .expect("observed sweep");

    // Observability must be invisible in the results: same structs,
    // same JSON bytes.
    assert_eq!(plain, observed);
    assert_eq!(
        plain.to_json().to_string_pretty(),
        observed.to_json().to_string_pretty(),
        "enabling trace/metrics changed the sweep output"
    );

    // The aggregate metrics reconcile with the per-run records: the
    // CORD detector's summed race reports equal the sum of the
    // CORD-D16 detections over completed runs (the only CordDetector
    // in this sweep), and every completed run contributed exactly two
    // simulations (Ideal + CORD-D16).
    let doc = Json::parse(&fs::read_to_string(&metrics_path).expect("metrics file"))
        .expect("metrics JSON parses");
    let reg = MetricsRegistry::from_json(doc.field("metrics").expect("metrics field"))
        .expect("registry decodes");
    let completed: u64 = observed
        .apps
        .iter()
        .map(|a| a.completed().count() as u64)
        .sum();
    assert!(completed > 0, "sweep produced no completed runs");
    let cord_races: u64 = observed
        .apps
        .iter()
        .map(|a| a.races_found("CORD-D16"))
        .sum();
    assert_eq!(reg.counter("cord.data_races"), cord_races);
    assert_eq!(reg.counter("sim.runs"), 2 * completed);
    assert!(reg.counter("sim.cycles") > 0);
    assert_eq!(reg.counter("sweep.jobs_profiled"), completed);
    assert!(reg.gauge_value("sweep.job_run_mean_s").is_some());
    assert!(reg.gauge_value("pool.utilization").is_some());

    // Trace files: one per (app, run, config) cell, each a JSON object
    // with a dropped counter and cycle-stamped, kind-tagged events.
    let mut trace_files: Vec<PathBuf> = fs::read_dir(&trace_dir)
        .expect("trace dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    trace_files.sort();
    let per_run_configs = 2; // Ideal + CORD-D16
    assert_eq!(
        trace_files.len() as u64,
        completed * per_run_configs,
        "one trace file per completed (run, config) cell"
    );
    let sample = Json::parse(&fs::read_to_string(&trace_files[0]).expect("trace file"))
        .expect("trace JSON parses");
    let events = sample
        .field("events")
        .expect("events field")
        .as_array()
        .expect("events array");
    assert!(!events.is_empty(), "trace captured no events");
    for e in events {
        // Cycle stamps are per-event (cores interleave, so the stream
        // is not globally sorted); they just have to decode.
        u64::from_json(e.field("cycle").expect("cycle")).expect("cycle u64");
        let kind = e.field("kind").expect("kind").as_str().expect("kind str");
        assert!(
            [
                "bus",
                "fill",
                "remove",
                "race_check",
                "memts_broadcast",
                "walker_pass",
                "injection",
                "migration",
                "race"
            ]
            .contains(&kind),
            "unknown event kind {kind:?}"
        );
    }
    u64::from_json(sample.field("dropped").expect("dropped")).expect("dropped u64");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metrics_without_tracing_writes_no_trace_files() {
    let dir = temp_dir("metrics-only");
    let metrics_path = dir.join("metrics.json");
    let cfgs = vec![DetectorConfig::Cord { d: 16 }];
    SweepRunner::new(quick_opts())
        .apps(&APPS[..1])
        .metrics_out(&metrics_path)
        .run(&cfgs)
        .expect("metrics-only sweep");
    assert!(metrics_path.is_file());
    // Only the metrics file exists in the temp dir — no traces.
    let entries: Vec<_> = fs::read_dir(&dir)
        .expect("dir")
        .map(|e| e.expect("entry").file_name())
        .collect();
    assert_eq!(entries, vec![std::ffi::OsString::from("metrics.json")]);
    let _ = fs::remove_dir_all(&dir);
}
