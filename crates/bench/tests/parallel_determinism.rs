//! Acceptance tests for the parallel sweep executor: a sweep fanned
//! across `jobs(8)` workers must be **bit-identical** to the serial
//! sweep — same `SweepResults`, same JSON rendering, same checkpoint
//! file bytes — and checkpoints written serially must resume under a
//! parallel runner (and vice versa), because the worker count is
//! excluded from the options hash by construction.

use cord_bench::checkpoint::{options_hash, Checkpoint};
use cord_bench::runner::SweepRunner;
use cord_bench::sweep::{ScaleClassOpt, SweepOptions};
use cord_bench::DetectorConfig;
use cord_json::ToJson;
use cord_workloads::AppKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn quick_opts() -> SweepOptions {
    SweepOptions {
        injections_per_app: 3,
        scale: ScaleClassOpt::Tiny,
        threads: 4,
        seed: 2006,
        ..SweepOptions::default()
    }
}

const APPS: [AppKind; 4] = [
    AppKind::WaterN2,
    AppKind::Cholesky,
    AppKind::Fft,
    AppKind::Lu,
];

fn configs() -> Vec<DetectorConfig> {
    vec![DetectorConfig::Cord { d: 16 }, DetectorConfig::VcL2Cache]
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(1)
        .run(&configs())
        .expect("serial sweep");
    let parallel = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(8)
        .run(&configs())
        .expect("parallel sweep");
    assert_eq!(serial, parallel);
    assert_eq!(
        serial.to_json().to_string_pretty(),
        parallel.to_json().to_string_pretty(),
        "JSON renderings diverged"
    );
}

#[test]
fn parallel_checkpoint_files_match_serial_byte_for_byte() {
    let dir = std::env::temp_dir().join("cord-parallel-ckpt-bytes");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let serial_path = dir.join("serial.json");
    let parallel_path = dir.join("parallel.json");
    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&parallel_path);

    let serial = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(1)
        .checkpoint(&serial_path)
        .run(&configs())
        .expect("serial sweep");
    let parallel = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(8)
        .checkpoint(&parallel_path)
        .run(&configs())
        .expect("parallel sweep");
    assert_eq!(serial, parallel);

    let serial_bytes = std::fs::read(&serial_path).expect("serial checkpoint");
    let parallel_bytes = std::fs::read(&parallel_path).expect("parallel checkpoint");
    assert_eq!(
        serial_bytes, parallel_bytes,
        "final checkpoint files diverged between jobs=1 and jobs=8"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serial_checkpoint_resumes_under_parallel_runner() {
    let dir = std::env::temp_dir().join("cord-parallel-ckpt-resume");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("shared.json");
    let _ = std::fs::remove_file(&path);

    let opts = quick_opts();
    let cfgs = configs();
    let full = SweepRunner::new(opts)
        .apps(&APPS)
        .run(&cfgs)
        .expect("reference sweep");

    // Simulate a serial sweep killed after two apps: its checkpoint must
    // resume under jobs=8 — the worker count cannot perturb the options
    // hash because it is not part of SweepOptions at all.
    Checkpoint {
        options_hash: options_hash(&opts, &cfgs),
        options: opts,
        apps: full.apps[..2].to_vec(),
    }
    .store(&path)
    .expect("seed checkpoint");
    let resumed = SweepRunner::new(opts)
        .apps(&APPS)
        .jobs(8)
        .checkpoint(&path)
        .run(&cfgs)
        .expect("parallel resume");
    assert_eq!(resumed, full);

    // A fully resumed sweep reruns nothing and leaves the file's apps
    // intact and complete.
    let again = SweepRunner::new(opts)
        .apps(&APPS)
        .jobs(8)
        .checkpoint(&path)
        .run(&cfgs)
        .expect("fully-resumed sweep");
    assert_eq!(again, full);
    let cp = Checkpoint::load_matching(&path, options_hash(&opts, &cfgs))
        .expect("checkpoint still loads");
    assert_eq!(cp.apps, full.apps);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_runs_surface_identically_serial_and_parallel() {
    // The PanicProbe detector panics on odd-seeded runs; the per-run
    // isolation boundary must record those as RunStatus::Panicked
    // without poisoning sibling workers, identically at any job count.
    let cfgs = vec![DetectorConfig::Cord { d: 16 }, DetectorConfig::PanicProbe];
    let serial = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(1)
        .run(&cfgs)
        .expect("serial probed sweep");
    let parallel = SweepRunner::new(quick_opts())
        .apps(&APPS)
        .jobs(8)
        .run(&cfgs)
        .expect("parallel probed sweep");
    assert_eq!(serial, parallel);
    let panicked: usize = parallel
        .apps
        .iter()
        .flat_map(|a| &a.runs)
        .filter(|r| matches!(r.status, cord_bench::RunStatus::Panicked { .. }))
        .count();
    assert!(panicked >= 1, "the panic probe never fired");
    let completed: usize = parallel.apps.iter().map(|a| a.completed().count()).sum();
    assert!(completed >= 1, "a panicked run poisoned its siblings");
}

#[test]
fn progress_callback_reports_both_phases_and_full_totals() {
    let plan_snaps = Arc::new(AtomicUsize::new(0));
    let run_snaps = Arc::new(AtomicUsize::new(0));
    let (p, r) = (Arc::clone(&plan_snaps), Arc::clone(&run_snaps));
    let results = SweepRunner::new(quick_opts())
        .apps(&APPS[..2])
        .jobs(4)
        .progress(move |snap| {
            match snap.phase {
                "plan" => p.fetch_add(1, Ordering::Relaxed),
                "run" => r.fetch_add(1, Ordering::Relaxed),
                other => panic!("unknown phase {other:?}"),
            };
            assert!(snap.jobs_done <= snap.jobs_total);
            assert!(snap.apps_done <= snap.apps_total);
            assert_eq!(snap.apps_total, 2);
            assert!((0.0..=1.0).contains(&snap.utilization));
        })
        .run(&configs())
        .expect("swept");
    // One snapshot per finished job, both phases.
    assert_eq!(plan_snaps.load(Ordering::Relaxed), 2);
    assert_eq!(
        run_snaps.load(Ordering::Relaxed),
        results.apps.iter().map(|a| a.runs.len()).sum::<usize>()
    );
}
