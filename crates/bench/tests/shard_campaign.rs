//! End-to-end tests for the multi-process sharded campaign driver
//! (`shard` binary): byte-identity across shard counts, chaos-kill
//! recovery, forced abandonment with partial accounting, resume, and
//! agreement with the in-process `SweepRunner`.

use cord_bench::configs::DetectorConfig;
use cord_bench::runner::SweepRunner;
use cord_bench::sweep::{RunStatus, ScaleClassOpt, SweepOptions, SweepResults};
use cord_json::{FromJson, Json, ToJson};
use cord_workloads::AppKind;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_shard");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cord-shard-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run_shard(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args).env_remove("CORD_SHARD_FAIL_SHARDS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn shard binary")
}

fn assert_status(out: &Output, want: i32) {
    assert_eq!(
        out.status.code(),
        Some(want),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn fuzz_args<'a>(dir: &'a str, shards: &'a str) -> Vec<&'a str> {
    vec![
        "fuzz",
        "--dir",
        dir,
        "--shards",
        shards,
        "--count",
        "24",
        "--short",
        "--seed",
        "7",
        "--worker-jobs",
        "2",
        "--poll-ms",
        "5",
    ]
}

#[test]
fn sharded_fuzz_is_byte_identical_across_shard_counts() {
    let root = temp_dir("fuzz-bytes");
    let (d1, d3) = (root.join("s1"), root.join("s3"));
    let (d1s, d3s) = (d1.to_str().expect("utf8"), d3.to_str().expect("utf8"));
    assert_status(&run_shard(&fuzz_args(d1s, "1"), &[]), 0);
    assert_status(&run_shard(&fuzz_args(d3s, "3"), &[]), 0);
    for name in ["report.txt", "metrics.json"] {
        assert_eq!(
            read(&d1.join("merged").join(name)),
            read(&d3.join("merged").join(name)),
            "{name} differs between --shards 1 and --shards 3"
        );
    }
    let report = read(&d1.join("merged/report.txt"));
    assert!(
        report.contains("24 of 24 cases"),
        "unexpected report: {report}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn chaos_kills_recover_to_identical_bytes() {
    let root = temp_dir("chaos");
    let (clean, chaotic) = (root.join("clean"), root.join("chaotic"));
    let (cs, hs) = (
        clean.to_str().expect("utf8"),
        chaotic.to_str().expect("utf8"),
    );
    assert_status(&run_shard(&fuzz_args(cs, "1"), &[]), 0);
    let mut args = fuzz_args(hs, "2");
    args.extend_from_slice(&["--chaos", "kill-rate=0.8,budget=5,seed=11"]);
    let out = run_shard(&args, &[]);
    assert_status(&out, 0);
    for name in ["report.txt", "metrics.json"] {
        assert_eq!(
            read(&clean.join("merged").join(name)),
            read(&chaotic.join("merged").join(name)),
            "{name} differs after chaos kills"
        );
    }
    // Supervision must have recorded the kills out-of-band.
    let sup = Json::parse(&read(&chaotic.join("merged/supervision.json"))).expect("valid JSON");
    let kills = u64::from_json(
        sup.field("metrics")
            .and_then(|m| m.field("counters"))
            .and_then(|c| c.field("shard.chaos_kills"))
            .expect("chaos kill counter"),
    )
    .expect("counter is u64");
    assert!(kills > 0, "chaos mode never killed a worker");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn abandoned_shards_are_reported_then_resume_completes() {
    let root = temp_dir("abandon");
    let dir = root.join("c");
    let ds = dir.to_str().expect("utf8");
    let mut args = fuzz_args(ds, "3");
    args.extend_from_slice(&["--max-retries", "1"]);
    let out = run_shard(&args, &[("CORD_SHARD_FAIL_SHARDS", "1")]);
    assert_status(&out, 2);
    let partial = read(&dir.join("merged/report.txt"));
    assert!(
        partial.contains("== shard failures ==") && partial.contains("shard 1: abandoned"),
        "partial report does not name the abandoned shard: {partial}"
    );
    // The two healthy shards' work survived.
    assert!(partial.contains("16 of 24 cases"), "{partial}");

    let resume = run_shard(&["resume", "--dir", ds, "--poll-ms", "5"], &[]);
    assert_status(&resume, 0);
    let full = read(&dir.join("merged/report.txt"));
    assert!(full.contains("24 of 24 cases"), "{full}");
    assert!(!full.contains("shard failures"), "{full}");

    let reference = root.join("ref");
    assert_status(
        &run_shard(&fuzz_args(reference.to_str().expect("utf8"), "1"), &[]),
        0,
    );
    for name in ["report.txt", "metrics.json"] {
        assert_eq!(
            read(&dir.join("merged").join(name)),
            read(&reference.join("merged").join(name)),
            "{name} differs after abandon + resume"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn mid_campaign_kill_resumes_from_checkpoints() {
    let root = temp_dir("kill-resume");
    let dir = root.join("c");
    let ds = dir.to_str().expect("utf8");
    // First invocation is drained almost immediately: the DRAIN marker
    // is the supported stand-in for "the coordinator died" (kill -9 of
    // the whole tree leaves the same on-disk state minus the marker,
    // which the next invocation clears anyway).
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("DRAIN"), "").expect("pre-drain");
    // A pre-existing DRAIN is cleared at startup, so this run starts.
    let args = fuzz_args(ds, "2");
    let drain_dir = dir.clone();
    let killer = std::thread::spawn(move || {
        // Let some chunks land, then request drain mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let _ = fs::write(drain_dir.join("DRAIN"), "");
    });
    let first = run_shard(&args, &[]);
    killer.join().expect("killer thread");
    let code = first.status.code();
    assert!(
        code == Some(4) || code == Some(0),
        "drain run exited {code:?}: {}",
        String::from_utf8_lossy(&first.stderr)
    );

    let resume = run_shard(&["resume", "--dir", ds, "--poll-ms", "5"], &[]);
    assert_status(&resume, 0);
    let reference = root.join("ref");
    assert_status(
        &run_shard(&fuzz_args(reference.to_str().expect("utf8"), "1"), &[]),
        0,
    );
    assert_eq!(
        read(&dir.join("merged/report.txt")),
        read(&reference.join("merged/report.txt")),
        "drained + resumed campaign diverged from the serial run"
    );
    let _ = fs::remove_dir_all(&root);
}

fn sweep_args<'a>(dir: &'a str, shards: &'a str) -> Vec<&'a str> {
    vec![
        "sweep",
        "--dir",
        dir,
        "--shards",
        shards,
        "--apps",
        "fft,radix",
        "--injections",
        "3",
        "--scale",
        "tiny",
        "--seed",
        "13",
        "--threads",
        "4",
        "--worker-jobs",
        "2",
        "--poll-ms",
        "5",
    ]
}

#[test]
fn sharded_sweep_matches_the_in_process_runner() {
    let root = temp_dir("sweep");
    let (d1, d2) = (root.join("s1"), root.join("s2"));
    assert_status(
        &run_shard(&sweep_args(d1.to_str().expect("utf8"), "1"), &[]),
        0,
    );
    assert_status(
        &run_shard(&sweep_args(d2.to_str().expect("utf8"), "2"), &[]),
        0,
    );
    for name in ["results.json", "report.txt", "metrics.json"] {
        assert_eq!(
            read(&d1.join("merged").join(name)),
            read(&d2.join("merged").join(name)),
            "{name} differs between --shards 1 and --shards 2"
        );
    }

    // The merged matrix must be exactly what one in-process SweepRunner
    // produces for the same options.
    let opts = SweepOptions {
        injections_per_app: 3,
        scale: ScaleClassOpt::Tiny,
        threads: 4,
        seed: 13,
        ..SweepOptions::default()
    };
    let direct = SweepRunner::new(opts)
        .apps(&[AppKind::Fft, AppKind::Radix])
        .jobs(2)
        .run(&DetectorConfig::all_for_sweep())
        .expect("direct sweep");
    assert_eq!(
        read(&d1.join("merged/results.json")),
        direct.to_json().to_string_pretty(),
        "sharded results.json diverged from the in-process runner"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn abandoned_sweep_cells_stay_out_of_denominators() {
    let root = temp_dir("sweep-abandon");
    let dir = root.join("c");
    let ds = dir.to_str().expect("utf8");
    let mut args = sweep_args(ds, "2");
    args.extend_from_slice(&["--max-retries", "0"]);
    let out = run_shard(&args, &[("CORD_SHARD_FAIL_SHARDS", "1")]);
    assert_status(&out, 2);

    let results = SweepResults::from_json(
        &Json::parse(&read(&dir.join("merged/results.json"))).expect("json"),
    )
    .expect("decodes");
    let total: usize = results.apps.iter().map(|a| a.runs.len()).sum();
    let completed: usize = results.apps.iter().map(|a| a.completed().count()).sum();
    let abandoned = results
        .apps
        .iter()
        .flat_map(|a| &a.runs)
        .filter(|r| matches!(r.status, RunStatus::Abandoned { .. }))
        .count();
    assert_eq!(total, 6, "matrix lost its shape");
    assert_eq!(abandoned, 3, "shard 1 owns every other cell of 6");
    assert_eq!(completed, total - abandoned, "denominator drifted");
    assert_eq!(
        results.failure_counts().get("abandoned").copied(),
        Some(abandoned),
        "failure taxonomy is missing the abandoned class"
    );
    let report = read(&dir.join("merged/report.txt"));
    assert!(
        report.contains("(3 completed)") && report.contains("abandoned"),
        "report does not separate abandoned work: {report}"
    );

    // Resume heals the matrix completely.
    let resume = run_shard(&["resume", "--dir", ds, "--poll-ms", "5"], &[]);
    assert_status(&resume, 0);
    let healed = SweepResults::from_json(
        &Json::parse(&read(&dir.join("merged/results.json"))).expect("json"),
    )
    .expect("decodes");
    assert_eq!(
        healed
            .apps
            .iter()
            .map(|a| a.completed().count())
            .sum::<usize>(),
        6
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn status_reports_per_shard_progress() {
    let root = temp_dir("status");
    let dir = root.join("c");
    let ds = dir.to_str().expect("utf8");
    assert_status(&run_shard(&fuzz_args(ds, "2"), &[]), 0);
    let out = run_shard(&["status", "--dir", ds], &[]);
    assert_status(&out, 0);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("fuzz (24 cases)"), "{text}");
    assert!(text.contains("shard 0: 12/12 DONE"), "{text}");
    assert!(text.contains("shard 1: 12/12 DONE"), "{text}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn spec_mismatch_is_rejected() {
    let root = temp_dir("spec-mismatch");
    let dir = root.join("c");
    let ds = dir.to_str().expect("utf8");
    assert_status(&run_shard(&fuzz_args(ds, "2"), &[]), 0);
    let mut other = fuzz_args(ds, "2");
    let seed_at = other.iter().position(|a| *a == "7").expect("seed arg");
    other[seed_at] = "8";
    let out = run_shard(&other, &[]);
    assert_status(&out, 1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different spec"), "{stderr}");
    let _ = fs::remove_dir_all(&root);
}
