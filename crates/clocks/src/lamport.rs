//! Classical Lamport clocks (paper §2.4, first paragraph).
//!
//! A Lamport clock is a `(sequence, thread-id)` pair that induces a
//! *total* order on events: sequence numbers compare first and thread IDs
//! break ties. The paper starts from this scheme and then observes that
//! total ordering is counterproductive for race detection — equal
//! sequence numbers should be treated as *concurrent* — which motivates
//! the bare [`crate::scalar::ScalarTime`]. We keep Lamport clocks around
//! both for documentation value and because the order log replayer uses
//! their total order to sequence log entries deterministically.

use std::cmp::Ordering;
use std::fmt;

/// A Lamport clock: a sequence number with a tie-breaking thread ID.
///
/// `LamportClock` implements [`Ord`]: `(seq, tid)` lexicographic order,
/// which is a total order over all events in the system.
///
/// # Examples
///
/// ```
/// use cord_clocks::lamport::LamportClock;
///
/// let a = LamportClock::new(4, 0);
/// let b = LamportClock::new(4, 1);
/// // Equal sequence numbers are tie-broken by thread ID.
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LamportClock {
    seq: u64,
    tid: u16,
}

impl LamportClock {
    /// Creates a clock with the given sequence number owned by `tid`.
    #[inline]
    pub const fn new(seq: u64, tid: u16) -> Self {
        LamportClock { seq, tid }
    }

    /// The sequence-number component.
    #[inline]
    pub const fn seq(self) -> u64 {
        self.seq
    }

    /// The tie-breaking thread ID.
    #[inline]
    pub const fn tid(self) -> u16 {
        self.tid
    }

    /// Lamport receive rule: on observing a message (here: a timestamped
    /// memory location) the local clock becomes
    /// `max(local, observed) + 1` while keeping the local thread ID.
    #[inline]
    #[must_use]
    pub fn receive(self, observed: LamportClock) -> Self {
        LamportClock {
            seq: self.seq.max(observed.seq) + 1,
            tid: self.tid,
        }
    }

    /// Lamport local-event rule: increment the sequence number.
    #[inline]
    #[must_use]
    pub fn tick(self) -> Self {
        LamportClock {
            seq: self.seq + 1,
            tid: self.tid,
        }
    }
}

impl PartialOrd for LamportClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LamportClock {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.seq, self.tid).cmp(&(other.seq, other.tid))
    }
}

impl fmt::Display for LamportClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@T{}", self.seq, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_breaks_ties_by_tid() {
        let a = LamportClock::new(3, 2);
        let b = LamportClock::new(3, 5);
        let c = LamportClock::new(4, 0);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn receive_takes_max_plus_one() {
        let local = LamportClock::new(3, 1);
        let seen = LamportClock::new(9, 0);
        let updated = local.receive(seen);
        assert_eq!(updated, LamportClock::new(10, 1));
        // Receiving something older still ticks.
        let updated2 = updated.receive(LamportClock::new(2, 0));
        assert_eq!(updated2, LamportClock::new(11, 1));
    }

    #[test]
    fn tick_increments_seq_only() {
        let c = LamportClock::new(7, 3).tick();
        assert_eq!(c.seq(), 8);
        assert_eq!(c.tid(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", LamportClock::new(12, 4)), "12@T4");
    }

    #[test]
    fn receive_produces_strictly_greater_clock() {
        // The defining Lamport property: the receiver's new clock is
        // strictly after both its old clock and the observed one.
        for s in 0..8 {
            for o in 0..8 {
                let local = LamportClock::new(s, 1);
                let seen = LamportClock::new(o, 0);
                let next = local.receive(seen);
                assert!(next > local);
                assert!(next > seen);
            }
        }
    }
}
