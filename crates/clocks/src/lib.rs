//! Logical clock substrate for the CORD reproduction.
//!
//! CORD (Prvulovic, HPCA 2006) tracks the happens-before relation between
//! memory accesses with *logical time*. This crate provides every clocking
//! scheme the paper discusses or evaluates:
//!
//! * [`scalar`] — plain integer scalar clocks, the scheme CORD actually
//!   uses (§2.4 of the paper), together with the *D-window* comparison
//!   rules of §2.6 that distinguish order-recording ordering from
//!   data-race-detection synchronization.
//! * [`lamport`] — classical Lamport clocks (sequence number + tie-breaking
//!   thread ID), presented by the paper as the starting point that CORD
//!   then simplifies.
//! * [`vector`] — vector clocks, used by the paper's *Ideal* oracle and by
//!   the vector-clock comparison configurations (InfCache / L2Cache /
//!   L1Cache, §4.3).
//! * [`window16`] — the 16-bit sliding-window comparison of §2.7.5 that
//!   lets CORD store 16-bit timestamps in cache lines without suffering
//!   from overflow, plus the invariant the cache walker must maintain.
//! * [`policy`] — the clock-update policy knobs (the `D` parameter,
//!   update-on-data-races, increment-on-sync-writes) with the exact update
//!   rules from §2.4 and §2.6, factored out so the detector crates share
//!   one implementation.
//!
//! # Quick example
//!
//! ```
//! use cord_clocks::policy::ClockPolicy;
//! use cord_clocks::scalar::ScalarTime;
//!
//! let policy = ClockPolicy::cord(); // D = 16, paper's default
//! let mut clk = ScalarTime::ZERO;
//!
//! // A sync read that observes a lock released at time 7 jumps the
//! // thread's clock to 7 + D.
//! clk = policy.sync_read_update(clk, ScalarTime::new(7));
//! assert_eq!(clk, ScalarTime::new(7 + 16));
//! ```

#![warn(missing_docs)]

pub mod lamport;
pub mod policy;
pub mod scalar;
pub mod vector;
pub mod window16;

pub use lamport::LamportClock;
pub use policy::ClockPolicy;
pub use scalar::ScalarTime;
pub use vector::VectorClock;
