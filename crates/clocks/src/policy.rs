//! Clock-update policy: the exact rules of paper §2.4 and §2.6, factored
//! into one place so CORD and the ablation configurations share a single
//! implementation.
//!
//! The rules, with references to the figures they come from:
//!
//! * **Update on every race** (Fig 3): whenever a clock–timestamp
//!   comparison finds a race (`clk <= ts`), the thread's clock becomes
//!   `ts + 1`. The paper argues "overlapping" races are very likely the
//!   same underlying bug, so losing them is acceptable; an ablation knob
//!   restricts updates to synchronization races.
//! * **Increment only after sync writes** (Figs 4–5): the thread's clock
//!   ticks once *after* each synchronization write. Incrementing on reads
//!   or data writes would hide real races (Fig 5); never incrementing
//!   would miss the pre-/post-synchronization distinction (Fig 4).
//! * **Sync-read `+D` updates** (Figs 8–9): a synchronization read jumps
//!   the reader's clock to at least `ts_write + D` while every other
//!   update uses `+1`. This creates a `D`-wide gap that only genuine
//!   synchronization can create, so the DRD test
//!   [`crate::scalar::ScalarTime::is_synchronized_after`] can tell
//!   synchronization-induced ordering from incidental ordering.
//! * **Migration `+D`** (§2.7.4): when a thread starts running on a new
//!   processor its clock advances by `D`, "synchronizing" it with its own
//!   past execution on the other processor to avoid self-races.

use crate::scalar::ScalarTime;

/// The D window and ablation knobs governing scalar-clock updates.
///
/// Use [`ClockPolicy::cord`] for the paper's shipping configuration
/// (D = 16) or [`ClockPolicy::with_d`] to reproduce the Figure 16/17
/// sweeps.
///
/// # Examples
///
/// ```
/// use cord_clocks::policy::ClockPolicy;
/// use cord_clocks::scalar::ScalarTime;
///
/// let p = ClockPolicy::with_d(4);
/// // A race against ts=9 pulls the clock to 10, not 9+D: only sync reads
/// // use the D-sized jump (Fig 9).
/// assert_eq!(
///     p.race_update(ScalarTime::new(7), ScalarTime::new(9)),
///     ScalarTime::new(10),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockPolicy {
    d: u64,
    update_on_data_races: bool,
    increment_on_all_accesses: bool,
}

impl ClockPolicy {
    /// The paper's shipping CORD configuration: `D = 16` (the sweet spot
    /// of Figures 16–17), clock updates on all races, increments only on
    /// sync writes.
    pub fn cord() -> Self {
        Self::with_d(16)
    }

    /// The naive scalar-clock baseline (`D = 1`, the "D1" bars of
    /// Figures 16–17).
    pub fn naive_scalar() -> Self {
        Self::with_d(1)
    }

    /// A CORD policy with an explicit `D`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`; the comparison rules require `D >= 1`.
    pub fn with_d(d: u64) -> Self {
        assert!(d >= 1, "the D window must be at least 1");
        ClockPolicy {
            d,
            update_on_data_races: true,
            increment_on_all_accesses: false,
        }
    }

    /// Ablation: when `false`, clock updates happen only on
    /// synchronization races (the alternative the paper rejects in §2.4
    /// because it floods the log and the bug report with races from a
    /// single underlying problem).
    #[must_use]
    pub fn update_on_data_races(mut self, yes: bool) -> Self {
        self.update_on_data_races = yes;
        self
    }

    /// Ablation: when `true`, the clock increments after *every* shared
    /// access like a textbook Lamport clock (the behaviour Figs 4–5 show
    /// to be harmful and overflow-prone).
    #[must_use]
    pub fn increment_on_all_accesses(mut self, yes: bool) -> Self {
        self.increment_on_all_accesses = yes;
        self
    }

    /// The D window.
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// Whether data races update the clock (see
    /// [`ClockPolicy::update_on_data_races`]).
    #[inline]
    pub fn updates_on_data_races(&self) -> bool {
        self.update_on_data_races
    }

    /// Whether every access ticks the clock (see
    /// [`ClockPolicy::increment_on_all_accesses`]).
    #[inline]
    pub fn increments_on_all_accesses(&self) -> bool {
        self.increment_on_all_accesses
    }

    /// Clock update after a race outcome is observed (both for
    /// order-recording and DRD, §2.4): the new clock is `ts + 1` if that
    /// is an advance, otherwise unchanged.
    #[inline]
    #[must_use]
    pub fn race_update(&self, clk: ScalarTime, ts: ScalarTime) -> ScalarTime {
        clk.max(ts.succ())
    }

    /// Clock update performed by a synchronization read (§2.6): the new
    /// clock is at least `ts_write + D`.
    #[inline]
    #[must_use]
    pub fn sync_read_update(&self, clk: ScalarTime, ts_write: ScalarTime) -> ScalarTime {
        clk.max(ts_write.advanced(self.d))
    }

    /// Clock increment applied after a synchronization write (Fig 4).
    #[inline]
    #[must_use]
    pub fn post_sync_write(&self, clk: ScalarTime) -> ScalarTime {
        clk.succ()
    }

    /// Clock advance applied when a thread migrates onto a processor
    /// (§2.7.4): `+D` "synchronizes" the thread with its own stale
    /// timestamps left in the previous processor's caches.
    #[inline]
    #[must_use]
    pub fn migration_update(&self, clk: ScalarTime) -> ScalarTime {
        clk.advanced(self.d)
    }

    /// DRD synchronization test at this policy's `D` — see
    /// [`ScalarTime::is_synchronized_after`].
    #[inline]
    pub fn is_synchronized(&self, clk: ScalarTime, ts: ScalarTime) -> bool {
        clk.is_synchronized_after(ts, self.d)
    }
}

impl Default for ClockPolicy {
    /// The paper's CORD configuration ([`ClockPolicy::cord`]).
    fn default() -> Self {
        Self::cord()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cord_default_d_is_16() {
        assert_eq!(ClockPolicy::cord().d(), 16);
        assert_eq!(ClockPolicy::default(), ClockPolicy::cord());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_d_rejected() {
        let _ = ClockPolicy::with_d(0);
    }

    #[test]
    fn race_update_is_ts_plus_one() {
        let p = ClockPolicy::with_d(16);
        assert_eq!(
            p.race_update(ScalarTime::new(3), ScalarTime::new(9)),
            ScalarTime::new(10)
        );
        // Already ahead: no regression.
        assert_eq!(
            p.race_update(ScalarTime::new(20), ScalarTime::new(9)),
            ScalarTime::new(20)
        );
    }

    #[test]
    fn sync_read_jumps_by_d() {
        let p = ClockPolicy::with_d(4);
        assert_eq!(
            p.sync_read_update(ScalarTime::new(1), ScalarTime::new(1)),
            ScalarTime::new(5),
        );
        // Figure 9 scenario: Thread B reads lock written at ts=1 with
        // D=4 => clock 5; a later data-race update against ts=5 gives 6.
        let clk = p.sync_read_update(ScalarTime::new(2), ScalarTime::new(1));
        assert_eq!(clk, ScalarTime::new(5));
        let clk = p.race_update(clk, ScalarTime::new(5));
        assert_eq!(clk, ScalarTime::new(6));
    }

    #[test]
    fn post_sync_write_ticks_once() {
        let p = ClockPolicy::cord();
        assert_eq!(p.post_sync_write(ScalarTime::new(1)), ScalarTime::new(2));
    }

    #[test]
    fn migration_advances_by_d() {
        let p = ClockPolicy::with_d(16);
        assert_eq!(
            p.migration_update(ScalarTime::new(100)),
            ScalarTime::new(116)
        );
    }

    #[test]
    fn figure8_scenario_detected_with_d_gt_2() {
        // Fig 8: both threads do 2 sync writes (clk 1->2->3) and the data
        // races on Q/X/Y are separated by fewer than 3 ticks; with D=1
        // they look synchronized, with D=4 they are detected.
        let naive = ClockPolicy::with_d(1);
        let tuned = ClockPolicy::with_d(4);
        let reader_clk = ScalarTime::new(4);
        let ts_write = ScalarTime::new(2);
        assert!(naive.is_synchronized(reader_clk, ts_write)); // missed
        assert!(!tuned.is_synchronized(reader_clk, ts_write)); // detected
    }

    #[test]
    fn builder_knobs() {
        let p = ClockPolicy::cord()
            .update_on_data_races(false)
            .increment_on_all_accesses(true);
        assert!(!p.updates_on_data_races());
        assert!(p.increments_on_all_accesses());
    }
}
