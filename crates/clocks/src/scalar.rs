//! Plain integer scalar logical time (paper §2.4).
//!
//! CORD drops the tie-breaking thread IDs of Lamport clocks and uses a
//! bare integer: two events with the *same* scalar time are treated as
//! concurrent rather than being totally ordered. This is exactly what a
//! race detector wants — "a race is now found when the thread's current
//! clock is less than **or equal to** the timestamp of a conflicting
//! access" (§2.4).
//!
//! The hardware stores these as 16-bit values with a sliding-window
//! comparison (see [`crate::window16`]); this module uses `u64` as the
//! unbounded mathematical reference. Property tests in `window16` prove
//! the two agree while the window invariant holds.

use std::fmt;

/// An unbounded scalar logical time.
///
/// `ScalarTime` is a newtype over `u64`; ordering is plain integer
/// ordering. Use [`ScalarTime::is_race_with`] and
/// [`ScalarTime::is_synchronized_after`] for the paper's comparison
/// semantics rather than raw `<`/`>` where the intent matters.
///
/// # Examples
///
/// ```
/// use cord_clocks::scalar::ScalarTime;
///
/// let clk = ScalarTime::new(5);
/// let ts = ScalarTime::new(5);
/// // Equal scalar times are concurrent => a race.
/// assert!(clk.is_race_with(ts));
/// assert!(!ScalarTime::new(6).is_race_with(ts));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ScalarTime(u64);

impl ScalarTime {
    /// The initial logical time of every thread and memory location.
    pub const ZERO: ScalarTime = ScalarTime(0);

    /// Creates a scalar time from a raw tick count.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        ScalarTime(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns this time advanced by `n` ticks.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64` (which would
    /// require more than 10^19 synchronization operations).
    #[inline]
    #[must_use]
    pub fn advanced(self, n: u64) -> Self {
        ScalarTime(self.0 + n)
    }

    /// The successor time, `self + 1`.
    #[inline]
    #[must_use]
    pub fn succ(self) -> Self {
        self.advanced(1)
    }

    /// Order-recording race test (§2.4): a thread at clock `self`
    /// accessing a location last conflicting-accessed at `ts` participates
    /// in a race iff `self <= ts`. If `self > ts` the accesses are already
    /// transitively ordered and nothing needs to be recorded.
    #[inline]
    pub fn is_race_with(self, ts: ScalarTime) -> bool {
        self.0 <= ts.0
    }

    /// Data-race-detection synchronization test (§2.6): the access at
    /// clock `self` counts as *synchronized after* the access timestamped
    /// `ts` only when `self >= ts + d`. With `d == 1` this degenerates to
    /// the order-recording rule; larger `d` opens the "window of
    /// opportunity" that lets the DRD scheme distinguish clock advances
    /// caused by synchronization from advances caused by other events.
    #[inline]
    pub fn is_synchronized_after(self, ts: ScalarTime, d: u64) -> bool {
        self.0 >= ts.0.saturating_add(d)
    }

    /// Returns the larger of two times.
    #[inline]
    #[must_use]
    pub fn max(self, other: ScalarTime) -> ScalarTime {
        ScalarTime(self.0.max(other.0))
    }
}

impl From<u64> for ScalarTime {
    fn from(ticks: u64) -> Self {
        ScalarTime(ticks)
    }
}

impl From<ScalarTime> for u64 {
    fn from(t: ScalarTime) -> u64 {
        t.0
    }
}

impl fmt::Display for ScalarTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(ScalarTime::default(), ScalarTime::ZERO);
        assert_eq!(ScalarTime::ZERO.ticks(), 0);
    }

    #[test]
    fn succ_and_advanced() {
        let t = ScalarTime::new(41);
        assert_eq!(t.succ(), ScalarTime::new(42));
        assert_eq!(t.advanced(9), ScalarTime::new(50));
    }

    #[test]
    fn race_when_equal_or_behind() {
        let ts = ScalarTime::new(10);
        assert!(ScalarTime::new(9).is_race_with(ts));
        assert!(ScalarTime::new(10).is_race_with(ts));
        assert!(!ScalarTime::new(11).is_race_with(ts));
    }

    #[test]
    fn synchronized_requires_d_gap() {
        let ts = ScalarTime::new(10);
        // d = 1: same as strict ordering.
        assert!(ScalarTime::new(11).is_synchronized_after(ts, 1));
        assert!(!ScalarTime::new(10).is_synchronized_after(ts, 1));
        // d = 4: a gap of 1..3 is "ordered for recording but racy for DRD".
        assert!(!ScalarTime::new(13).is_synchronized_after(ts, 4));
        assert!(ScalarTime::new(14).is_synchronized_after(ts, 4));
    }

    #[test]
    fn drd_window_is_superset_of_recording_races() {
        // Every pair that is a race for order-recording is also a data
        // race for DRD at any d >= 1.
        for clk in 0..30u64 {
            for ts in 0..30u64 {
                let c = ScalarTime::new(clk);
                let t = ScalarTime::new(ts);
                if c.is_race_with(t) {
                    for d in 1..5 {
                        assert!(!c.is_synchronized_after(t, d));
                    }
                }
            }
        }
    }

    #[test]
    fn saturating_d_does_not_wrap() {
        let ts = ScalarTime::new(u64::MAX - 1);
        assert!(!ScalarTime::new(5).is_synchronized_after(ts, 1 << 40));
    }

    #[test]
    fn display_and_conversions() {
        let t = ScalarTime::from(7u64);
        assert_eq!(format!("{t}"), "t7");
        assert_eq!(u64::from(t), 7);
    }

    #[test]
    fn max_picks_larger() {
        assert_eq!(
            ScalarTime::new(3).max(ScalarTime::new(9)),
            ScalarTime::new(9)
        );
    }
}
