//! Vector clocks (Fidge/Mattern), used by the paper's *Ideal* oracle and
//! the vector-clock comparison configurations of §4.3.
//!
//! A vector clock has one scalar component per thread. It captures the
//! happens-before relation *exactly*: `a` happened before `b` iff
//! `a <= b` componentwise (and `a != b`); otherwise the two are
//! concurrent. The paper cites Valot's result that no scheme with fewer
//! than N components can be exact for N threads — which is precisely why
//! CORD's scalar clocks must miss some races (Figures 16–17 quantify the
//! loss).

use std::cmp::Ordering;
use std::fmt;

/// Result of comparing two vector clocks under happens-before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Causality {
    /// `a` happened strictly before `b`.
    Before,
    /// `a` happened strictly after `b`.
    After,
    /// Identical vectors (same event, or no information either way).
    Equal,
    /// Neither ordered — the events are concurrent (a race if they
    /// conflict).
    Concurrent,
}

/// A fixed-width vector clock with one `u64` component per thread.
///
/// The width is set at construction time and all operations panic if two
/// clocks of different widths are mixed — widths are a per-run constant
/// (the thread count), so a mismatch is always a program error.
///
/// # Examples
///
/// ```
/// use cord_clocks::vector::{Causality, VectorClock};
///
/// let mut a = VectorClock::new(2);
/// let mut b = VectorClock::new(2);
/// a.tick(0); // a = [1, 0]
/// b.tick(1); // b = [0, 1]
/// assert_eq!(a.causality(&b), Causality::Concurrent);
///
/// b.join(&a); // b = [1, 1]: b has now observed a
/// assert_eq!(a.causality(&b), Causality::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// Creates an all-zero clock for `width` threads.
    pub fn new(width: usize) -> Self {
        VectorClock {
            components: vec![0; width],
        }
    }

    /// Creates a clock from explicit components.
    pub fn from_components(components: Vec<u64>) -> Self {
        VectorClock { components }
    }

    /// Number of thread components.
    #[inline]
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// The component for thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= self.width()`.
    #[inline]
    pub fn component(&self, tid: usize) -> u64 {
        self.components[tid]
    }

    /// Increments thread `tid`'s own component (a local event).
    ///
    /// # Panics
    ///
    /// Panics if `tid >= self.width()`.
    #[inline]
    pub fn tick(&mut self, tid: usize) {
        self.components[tid] += 1;
    }

    /// Overwrites `self` with `other`'s components, reusing `self`'s
    /// existing allocation. Semantically `*self = other.clone()` without
    /// the heap round-trip — detectors use this to refresh per-word
    /// shadow stamps on the access hot path.
    pub fn assign(&mut self, other: &VectorClock) {
        self.components.clone_from(&other.components);
    }

    /// Joins (componentwise max) `other` into `self` — the "receive"
    /// operation that propagates causality.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(
            self.width(),
            other.width(),
            "joining vector clocks of different widths"
        );
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Returns `true` iff `self` happened before **or equals** `other`
    /// (componentwise `<=`).
    pub fn le(&self, other: &VectorClock) -> bool {
        assert_eq!(self.width(), other.width());
        self.components
            .iter()
            .zip(&other.components)
            .all(|(a, b)| a <= b)
    }

    /// Full happens-before classification of `self` relative to `other`.
    pub fn causality(&self, other: &VectorClock) -> Causality {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }

    /// Returns `true` iff the two clocks are concurrent — the race
    /// condition for conflicting accesses.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.causality(other) == Causality::Concurrent
    }

    /// Iterates over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.components.iter()
    }
}

impl PartialOrd for VectorClock {
    /// Partial order: `Some(Less)` iff happened-before, `None` iff
    /// concurrent.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.causality(other) {
            Causality::Before => Some(Ordering::Less),
            Causality::After => Some(Ordering::Greater),
            Causality::Equal => Some(Ordering::Equal),
            Causality::Concurrent => None,
        }
    }
}

impl fmt::Display for VectorClock {
    /// Formats as `<c0,c1,...>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(parts: &[u64]) -> VectorClock {
        VectorClock::from_components(parts.to_vec())
    }

    #[test]
    fn new_is_zero() {
        let c = VectorClock::new(3);
        assert_eq!(c.width(), 3);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn tick_is_local() {
        let mut c = VectorClock::new(3);
        c.tick(1);
        c.tick(1);
        c.tick(2);
        assert_eq!(c, vc(&[0, 2, 1]));
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = vc(&[3, 0, 5]);
        a.join(&vc(&[1, 4, 5]));
        assert_eq!(a, vc(&[3, 4, 5]));
    }

    #[test]
    fn causality_classification() {
        assert_eq!(vc(&[1, 0]).causality(&vc(&[1, 0])), Causality::Equal);
        assert_eq!(vc(&[1, 0]).causality(&vc(&[1, 1])), Causality::Before);
        assert_eq!(vc(&[1, 1]).causality(&vc(&[1, 0])), Causality::After);
        assert_eq!(vc(&[1, 0]).causality(&vc(&[0, 1])), Causality::Concurrent);
    }

    #[test]
    fn concurrent_is_symmetric() {
        let a = vc(&[2, 0, 1]);
        let b = vc(&[0, 3, 1]);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn partial_ord_matches_causality() {
        assert_eq!(vc(&[1, 0]).partial_cmp(&vc(&[2, 0])), Some(Ordering::Less));
        assert_eq!(vc(&[1, 0]).partial_cmp(&vc(&[0, 1])), None);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn join_width_mismatch_panics() {
        let mut a = VectorClock::new(2);
        a.join(&VectorClock::new(3));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", vc(&[1, 2, 3])), "<1,2,3>");
    }

    #[test]
    fn message_passing_transitivity() {
        // T0 ticks, T1 observes T0 then ticks, T2 observes T1:
        // T0's event must be Before T2's final clock (transitivity).
        let mut t0 = VectorClock::new(3);
        t0.tick(0);
        let e0 = t0.clone();

        let mut t1 = VectorClock::new(3);
        t1.join(&e0);
        t1.tick(1);

        let mut t2 = VectorClock::new(3);
        t2.join(&t1);
        t2.tick(2);

        assert_eq!(e0.causality(&t2), Causality::Before);
    }
}
