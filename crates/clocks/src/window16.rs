//! 16-bit sliding-window timestamp comparison (paper §2.7.5).
//!
//! CORD stores 16-bit timestamps in cache lines to keep the area overhead
//! at 19% of cache data capacity. Sixteen-bit clocks overflow, so the
//! hardware compares them *modulo 2^16* under the assumption that all
//! live timestamps fall within a window of `2^15 - 1` ticks ending at the
//! current clock. A cache walker evicts timestamps that are about to fall
//! out of the window, and clock updates that would grow the window past
//! its limit stall (the paper observes such stalls never trigger in
//! practice because the walker keeps up).
//!
//! This module provides the windowed comparison primitives and
//! [`WindowTracker`], the bookkeeping the cache walker relies on. The
//! property tests at the bottom prove that, while the window invariant
//! holds, every windowed comparison agrees with the unbounded
//! [`ScalarTime`](crate::scalar::ScalarTime) comparison — which is the
//! justification for the rest of the code base using `u64` clocks as the
//! reference implementation.

/// Maximum spread between the oldest live timestamp and the newest clock
/// for windowed comparisons to be exact: `2^15 - 1`.
pub const WINDOW: u16 = i16::MAX as u16; // 32767

/// A 16-bit hardware timestamp as stored in a cache line.
pub type Ts16 = u16;

/// Truncates an unbounded logical time to its 16-bit hardware encoding.
#[inline]
pub fn truncate(ticks: u64) -> Ts16 {
    (ticks & 0xFFFF) as u16
}

/// Windowed `a < b`: `a` is strictly older than `b` assuming both lie in
/// a window of [`WINDOW`] ticks.
///
/// # Examples
///
/// ```
/// use cord_clocks::window16::{wrapped_lt, truncate};
///
/// // Near the wrap point, 65530 is still older than 5 (= 65541 mod 2^16).
/// assert!(wrapped_lt(truncate(65530), truncate(65541)));
/// assert!(!wrapped_lt(truncate(65541), truncate(65530)));
/// ```
#[inline]
pub fn wrapped_lt(a: Ts16, b: Ts16) -> bool {
    // Branchless: `b - a` lands in 1..=WINDOW exactly when its signed
    // 16-bit interpretation is positive — one subtract and one compare,
    // no short-circuit chain on the per-access race-check path.
    (b.wrapping_sub(a) as i16) > 0
}

/// Windowed `a <= b`.
#[inline]
pub fn wrapped_le(a: Ts16, b: Ts16) -> bool {
    // Branchless: `b - a` in 0..=WINDOW iff non-negative as signed.
    (b.wrapping_sub(a) as i16) >= 0
}

/// Windowed distance `b - a`, meaningful when `wrapped_le(a, b)`.
#[inline]
pub fn wrapped_distance(a: Ts16, b: Ts16) -> u16 {
    b.wrapping_sub(a)
}

/// Windowed order-recording race test: races iff `clk <= ts` (mirrors
/// [`ScalarTime::is_race_with`](crate::scalar::ScalarTime::is_race_with)).
#[inline]
pub fn is_race_with(clk: Ts16, ts: Ts16) -> bool {
    wrapped_le(clk, ts)
}

/// Windowed DRD synchronization test: synchronized iff `clk >= ts + d`
/// (mirrors
/// [`ScalarTime::is_synchronized_after`](crate::scalar::ScalarTime::is_synchronized_after)).
/// `d` must be much smaller than [`WINDOW`] for the result to be exact,
/// which holds for all values the paper sweeps (max 256). Enforced in
/// debug builds: `d >= WINDOW` would push `ts + d` past the half-range
/// the wrapped comparison can represent, silently inverting results —
/// the same precondition the detector's audit guard checks before
/// calling (`d < WINDOW`).
#[inline]
pub fn is_synchronized_after(clk: Ts16, ts: Ts16, d: u16) -> bool {
    debug_assert!(
        d < WINDOW,
        "is_synchronized_after requires d < WINDOW (= {WINDOW}), got {d}"
    );
    // synchronized <=> ts + d <= clk within the window.
    wrapped_le(ts.wrapping_add(d), clk)
}

/// The 16-bit *epoch* of an unbounded clock: how many times its
/// hardware encoding has wrapped. Two clocks in different epochs only
/// compare correctly while their distance stays within [`WINDOW`].
#[inline]
pub fn epoch(ticks: u64) -> u64 {
    ticks >> 16
}

/// Number of 16-bit rollovers a clock advance from `old` to `new`
/// crosses (0 when both lie in the same epoch, or when `new <= old`).
/// The detector counts these per run: every crossing is a wrap the
/// windowed comparisons must survive, and the count grows with
/// synchronization intensity — i.e. with core count.
#[inline]
pub fn rollovers_crossed(old: u64, new: u64) -> u64 {
    epoch(new).saturating_sub(epoch(old))
}

/// `true` when the windowed race test for this unbounded pair agrees
/// with the reference comparison. Disagreement begins once the pair's
/// distance leaves the window — e.g. a full epoch apart the truncated
/// values collide and a long-retired timestamp looks concurrent again.
#[inline]
pub fn race_audit_agrees(clk: u64, ts: u64) -> bool {
    let wide = clk <= ts;
    is_race_with(truncate(clk), truncate(ts)) == wide
}

/// `true` when the windowed D-synchronization test for this unbounded
/// triple agrees with the reference comparison. Exact while `clk` is at
/// most `WINDOW + d` ahead of `ts` and at most `WINDOW - d + 1` behind
/// it. The first divergence as deltas grow is therefore on the *behind*
/// side, at distance `WINDOW - d + 2` — and it errs dangerously: the
/// narrow test reports "synchronized" for a pair the wide reference
/// says is not. (The ahead side diverges later, at `WINDOW + d + 1`,
/// and errs conservatively — it misses established synchronization.)
/// This behind-side onset is what the cores-scaling characterization
/// sweeps for: inter-core clock deltas grow with core count until they
/// cross this line. `d` must be below [`WINDOW`] like
/// [`is_synchronized_after`]'s precondition.
#[inline]
pub fn sync_audit_agrees(clk: u64, ts: u64, d: u16) -> bool {
    let wide = clk >= ts + u64::from(d);
    is_synchronized_after(truncate(clk), truncate(ts), d) == wide
}

/// Tracks the minimum (oldest) live timestamp so the cache walker can
/// enforce the window invariant (§2.7.5).
///
/// The real hardware keeps, per cache, the minimum timestamp found during
/// the walker's last pass and stalls clock updates that would exceed
/// `min + WINDOW`. The simulator uses this type both to decide which
/// timestamps the walker must evict and to *check* (in tests) that no
/// comparison was ever performed outside the window.
#[derive(Debug, Clone, Default)]
pub struct WindowTracker {
    /// Oldest unbounded timestamp still live in the tracked cache.
    min_live: Option<u64>,
    /// Newest unbounded clock value observed.
    max_clock: u64,
    /// Count of comparisons that would have been outside the window (0 in
    /// a correct configuration).
    violations: u64,
}

impl WindowTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a timestamp with unbounded value `ts` is now live.
    pub fn on_timestamp_live(&mut self, ts: u64) {
        self.min_live = Some(self.min_live.map_or(ts, |m| m.min(ts)));
        self.max_clock = self.max_clock.max(ts);
    }

    /// Recomputes the minimum after a walker pass over `live` timestamps.
    pub fn rescan<I: IntoIterator<Item = u64>>(&mut self, live: I) {
        self.min_live = live.into_iter().min();
    }

    /// Records a clock advance; returns `true` if the advance keeps the
    /// window invariant, `false` if the hardware would have to stall
    /// until the walker evicts old timestamps.
    pub fn on_clock_advance(&mut self, clk: u64) -> bool {
        self.max_clock = self.max_clock.max(clk);
        let ok = self.within_window();
        if !ok {
            self.violations += 1;
        }
        ok
    }

    /// `true` while all live timestamps are within [`WINDOW`] of the
    /// newest clock.
    pub fn within_window(&self) -> bool {
        match self.min_live {
            None => true,
            Some(min) => self.max_clock - min <= u64::from(WINDOW),
        }
    }

    /// Timestamps older than this bound must be evicted by the walker to
    /// keep headroom; the walker evicts anything older than
    /// `max_clock - WINDOW/2` (half-window hysteresis).
    pub fn eviction_bound(&self) -> u64 {
        self.max_clock.saturating_sub(u64::from(WINDOW) / 2)
    }

    /// Number of would-be stalls observed (0 when the walker keeps up,
    /// matching the paper's "no such stalls actually occur").
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Oldest live unbounded timestamp, if any.
    pub fn min_live(&self) -> Option<u64> {
        self.min_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarTime;
    use proptest::prelude::*;

    #[test]
    fn window_constant() {
        assert_eq!(WINDOW, 32767);
    }

    #[test]
    fn lt_basic() {
        assert!(wrapped_lt(1, 2));
        assert!(!wrapped_lt(2, 1));
        assert!(!wrapped_lt(5, 5));
    }

    #[test]
    fn lt_across_wrap() {
        assert!(wrapped_lt(u16::MAX, 0));
        assert!(wrapped_lt(u16::MAX - 10, 20));
        assert!(!wrapped_lt(20, u16::MAX - 10));
    }

    #[test]
    fn le_includes_equal() {
        assert!(wrapped_le(7, 7));
        assert!(wrapped_le(u16::MAX, 3));
    }

    #[test]
    fn race_test_matches_semantics() {
        // clk <= ts means race.
        assert!(is_race_with(5, 5));
        assert!(is_race_with(4, 5));
        assert!(!is_race_with(6, 5));
        // across wrap: clk=2 (really 65538), ts=65535: clk > ts, no race.
        assert!(!is_race_with(2, u16::MAX));
    }

    #[test]
    fn synchronized_at_d_window_minus_one_is_exact() {
        // The largest permitted distance: d = WINDOW - 1 still keeps
        // `ts + d` within the wrapped half-range when clk and ts are
        // close, so the comparison stays exact.
        let d = WINDOW - 1;
        // clk = ts + d => synchronized.
        assert!(is_synchronized_after(truncate(u64::from(d)), 0, d));
        // clk = ts + d - 1 => not yet.
        assert!(!is_synchronized_after(truncate(u64::from(d) - 1), 0, d));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "requires d < WINDOW")]
    fn synchronized_at_d_window_asserts() {
        // d = WINDOW is the first oversized distance: the audit guard in
        // the detector skips it, and the primitive refuses it.
        is_synchronized_after(0, 0, WINDOW);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "requires d < WINDOW")]
    fn synchronized_past_d_window_asserts() {
        is_synchronized_after(0, 0, WINDOW + 1);
    }

    #[test]
    fn synchronized_with_d_across_wrap() {
        // ts = 65534, d = 16 => synchronized from (65534+16) mod 2^16 = 14.
        assert!(is_synchronized_after(14, u16::MAX - 1, 16));
        assert!(!is_synchronized_after(13, u16::MAX - 1, 16));
    }

    #[test]
    fn tracker_flags_violation() {
        let mut t = WindowTracker::new();
        t.on_timestamp_live(0);
        assert!(t.on_clock_advance(u64::from(WINDOW)));
        assert!(!t.on_clock_advance(u64::from(WINDOW) + 1));
        assert_eq!(t.violations(), 1);
    }

    #[test]
    fn tracker_rescan_restores_headroom() {
        let mut t = WindowTracker::new();
        t.on_timestamp_live(0);
        t.on_timestamp_live(40_000);
        assert!(!t.on_clock_advance(40_000)); // 0 is too old
        t.rescan([40_000]); // walker evicted the stale entry
        assert!(t.on_clock_advance(40_001));
        assert_eq!(t.min_live(), Some(40_000));
    }

    #[test]
    fn eviction_bound_has_half_window_hysteresis() {
        let mut t = WindowTracker::new();
        t.on_timestamp_live(100_000);
        assert_eq!(t.eviction_bound(), 100_000 - u64::from(WINDOW) / 2);
    }

    proptest! {
        /// While |clk - ts| <= WINDOW, the windowed comparison agrees
        /// with the unbounded ScalarTime comparison — the correctness
        /// argument for using u64 clocks as the reference model.
        #[test]
        fn windowed_race_test_equals_unbounded(
            base in 0u64..u64::from(u32::MAX),
            clk_off in 0u64..=u64::from(WINDOW),
            ts_off in 0u64..=u64::from(WINDOW),
        ) {
            let clk = base + clk_off;
            let ts = base + ts_off;
            prop_assume!(clk.abs_diff(ts) <= u64::from(WINDOW));
            let wide = ScalarTime::new(clk).is_race_with(ScalarTime::new(ts));
            let narrow = is_race_with(truncate(clk), truncate(ts));
            prop_assert_eq!(wide, narrow);
        }

        #[test]
        fn windowed_sync_test_equals_unbounded(
            base in 0u64..u64::from(u32::MAX),
            clk_off in 0u64..=u64::from(WINDOW) - 256,
            ts_off in 0u64..=u64::from(WINDOW) - 256,
            d in 1u16..=256,
        ) {
            let clk = base + clk_off;
            let ts = base + ts_off;
            prop_assume!(clk.abs_diff(ts) + u64::from(d) <= u64::from(WINDOW));
            let wide = ScalarTime::new(clk)
                .is_synchronized_after(ScalarTime::new(ts), u64::from(d));
            let narrow = is_synchronized_after(truncate(clk), truncate(ts), d);
            prop_assert_eq!(wide, narrow);
        }

        #[test]
        fn wrapped_lt_antisymmetric(a: u16, b: u16) {
            prop_assume!(a != b);
            // Exactly one of a<b, b<a within a half-range window, except
            // the ambiguous antipodal distance.
            let d = b.wrapping_sub(a);
            prop_assume!(d != WINDOW + 1); // antipodal: both false
            prop_assert!(wrapped_lt(a, b) ^ wrapped_lt(b, a));
        }

        #[test]
        fn distance_inverts_advance(a: u16, d in 0u16..=WINDOW) {
            let b = a.wrapping_add(d);
            prop_assert!(wrapped_le(a, b));
            prop_assert_eq!(wrapped_distance(a, b), d);
        }
    }
}
