//! Clock-rollover boundary behavior (§2.7.5): what the 16-bit windowed
//! comparisons do as inter-core clock deltas approach, reach, and pass
//! WINDOW — the regime the cores-scaling sweep drives machines into.
//!
//! On a 4-core machine with one barrier per phase, per-thread clocks
//! stay within a few ticks of each other. At 32 cores with skewed
//! synchronization rates, the fastest and slowest threads drift apart
//! by thousands of ticks per phase. Once a reader's clock falls more
//! than `WINDOW - d + 1` behind a writer's timestamp the windowed sync
//! test diverges from the unbounded reference — and in the dangerous
//! direction (it reports "synchronized" for a pair that is not). A
//! clock running *ahead* diverges later (`WINDOW + d + 1`) and only
//! conservatively. A full epoch apart the race test inverts too (a
//! long-retired timestamp looks concurrent again). These tests pin
//! down those boundaries exactly.

use cord_clocks::scalar::ScalarTime;
use cord_clocks::window16::{
    epoch, is_race_with, is_synchronized_after, race_audit_agrees, rollovers_crossed,
    sync_audit_agrees, truncate, WindowTracker, WINDOW,
};
use proptest::prelude::*;

#[test]
fn rollover_counting_tracks_epochs() {
    assert_eq!(rollovers_crossed(0, 0xFFFF), 0);
    assert_eq!(rollovers_crossed(0xFFFF, 0x1_0000), 1);
    assert_eq!(rollovers_crossed(0x1_0000, 0x3_0000), 2);
    // Non-advances (same epoch, or backwards) cross nothing.
    assert_eq!(rollovers_crossed(0x2_0000, 0x2_FFFF), 0);
    assert_eq!(rollovers_crossed(0x3_0000, 0x2_0000), 0);
    assert_eq!(epoch(0x12_3456), 0x12);
}

#[test]
fn sync_check_is_exact_inside_both_boundaries() {
    // Behind side: exact up to delta = WINDOW - d + 1; ahead side:
    // exact up to delta = WINDOW + d.
    for d in [1u16, 16, 256, WINDOW - 1] {
        for base in [70_000u64, 1 << 20, (1 << 32) - 5] {
            let behind_edge = u64::from(WINDOW - d) + 1;
            assert!(
                sync_audit_agrees(base, base + behind_edge, d),
                "d={d} base={base}: behind by {behind_edge} must agree"
            );
            let ahead_edge = u64::from(WINDOW) + u64::from(d);
            assert!(
                sync_audit_agrees(base + ahead_edge, base, d),
                "d={d} base={base}: ahead by {ahead_edge} must agree"
            );
        }
    }
}

#[test]
fn sync_check_first_diverges_behind_at_window_minus_d_plus_two() {
    // A reader's clock one tick past WINDOW - d + 1 behind the
    // writer's timestamp: the narrow check claims synchronization the
    // wide reference denies — the mis-synchronization the scaling
    // sweep's mismatch counters count.
    for d in [16u16, 256, WINDOW - 1] {
        let ts = 70_000u64; // past one rollover already
        let delta = u64::from(WINDOW - d) + 2;
        let clk = ts - delta;
        assert!(
            !sync_audit_agrees(clk, ts, d),
            "d={d}: behind by {delta} must be the first divergence"
        );
        assert!(!ScalarTime::new(clk).is_synchronized_after(ScalarTime::new(ts), u64::from(d)));
        assert!(is_synchronized_after(truncate(clk), truncate(ts), d));
    }
}

#[test]
fn sync_check_first_diverges_ahead_at_window_plus_d_plus_one() {
    // The ahead side holds out longer and then errs conservatively:
    // the wide reference says synchronized, the narrow check misses it.
    for d in [16u16, 256, WINDOW - 1] {
        let ts = 70_000u64;
        let delta = u64::from(WINDOW) + u64::from(d) + 1;
        let clk = ts + delta;
        assert!(
            !sync_audit_agrees(clk, ts, d),
            "d={d}: ahead by {delta} must be the first divergence"
        );
        assert!(ScalarTime::new(clk).is_synchronized_after(ScalarTime::new(ts), u64::from(d)));
        assert!(!is_synchronized_after(truncate(clk), truncate(ts), d));
    }
}

#[test]
fn race_check_inverts_a_full_epoch_apart() {
    // Distance 2^16: the truncations collide, so an ancient timestamp
    // compares as "concurrent" — the false positive the walker exists
    // to prevent. Within the window the audit always agrees.
    let ts = 10u64;
    let clk = ts + (1 << 16);
    assert!(!race_audit_agrees(clk, ts));
    assert!(is_race_with(truncate(clk), truncate(ts))); // narrow: race
                                                        // Wide reference: properly ordered, no race.
    assert!(!ScalarTime::new(clk).is_race_with(ScalarTime::new(ts)));
    assert!(race_audit_agrees(ts + u64::from(WINDOW), ts));
}

#[test]
fn skewed_core_clocks_cross_the_window_as_cores_grow() {
    // Model of the scaling sweep's skew: thread i performs one sync
    // write every i+1 rounds, so after N rounds its clock is about
    // N/(i+1). The fastest-to-slowest spread grows with the core
    // count; find where the d=16 sync check stops being exact for the
    // dangerous pairing — the slow reader's clock audited against the
    // fast writer's timestamp.
    let rounds = 40_000u64;
    let d = 16u16;
    let mut first_bad_cores = None;
    for cores in [4usize, 8, 16, 32] {
        let clocks: Vec<u64> = (0..cores).map(|i| rounds / (i as u64 + 1)).collect();
        let fastest = clocks[0];
        let slowest = *clocks.last().expect("nonempty");
        let spread = fastest - slowest;
        let exact = sync_audit_agrees(slowest, fastest, d);
        assert_eq!(
            exact,
            spread <= u64::from(WINDOW - d) + 1,
            "cores={cores} spread={spread}"
        );
        if !exact && first_bad_cores.is_none() {
            first_bad_cores = Some(cores);
        }
    }
    // With 40k rounds the 4-core spread (30k ticks) already sits near
    // the edge; by 8 cores (35k) the window is blown. The sweep's
    // per-core-count mismatch counters trace this same onset.
    assert_eq!(first_bad_cores, Some(8));
}

#[test]
fn tracker_survives_rollover_with_walker_but_not_without() {
    // With rescans (the walker) the tracker stays inside the window
    // across many epochs; without them violations accumulate.
    let mut walked = WindowTracker::new();
    let mut unwalked = WindowTracker::new();
    let mut live = Vec::new();
    for step in 1..=20u64 {
        let clk = step * 10_000; // crosses several 65 536 boundaries
        live.push(clk);
        walked.on_timestamp_live(clk);
        unwalked.on_timestamp_live(clk);
        // Walker: evict everything older than the half-window bound.
        let bound = walked.eviction_bound();
        live.retain(|&t| t >= bound);
        walked.rescan(live.iter().copied());
        assert!(walked.on_clock_advance(clk), "walker keeps step {step} ok");
        unwalked.on_clock_advance(clk);
    }
    assert_eq!(walked.violations(), 0);
    assert!(unwalked.violations() > 0);
    assert!(epoch(200_000) >= 3, "the run really crossed epochs");
}

proptest! {
    /// Within the window the audits agree everywhere, for every d the
    /// paper sweeps and beyond, at arbitrary epochs.
    #[test]
    fn audits_agree_inside_window_at_any_epoch(
        base in 0u64..(1 << 40),
        delta in 0u64..=u64::from(WINDOW) - 512,
        d in 1u16..=512,
    ) {
        prop_assume!(delta + u64::from(d) <= u64::from(WINDOW));
        prop_assert!(sync_audit_agrees(base + delta, base, d));
        prop_assert!(sync_audit_agrees(base, base + delta, d));
        prop_assert!(race_audit_agrees(base + delta, base));
        prop_assert!(race_audit_agrees(base, base + delta));
    }

    /// Rollover counting is consistent with epoch arithmetic for any
    /// forward advance.
    #[test]
    fn rollovers_match_epoch_difference(
        old in 0u64..(1 << 40),
        advance in 0u64..(1 << 20),
    ) {
        let new = old + advance;
        prop_assert_eq!(rollovers_crossed(old, new), epoch(new) - epoch(old));
    }
}
