//! Analytic chip-area model for timestamp state (§2.3–§2.4).
//!
//! The paper quantifies the cache-area cost of each design point:
//!
//! * per-word vector timestamps with four 16-bit components → **200%**
//!   of the cache's data area;
//! * two per-line 4×16-bit vector timestamps with per-word access bits →
//!   **38%**;
//! * CORD's two per-line 16-bit scalar timestamps with per-word access
//!   bits → **19%**, *independent of the number of threads*.
//!
//! These functions reproduce those numbers and generalize them over
//! thread counts, so the `figures area` harness can regenerate the
//! paper's comparisons and show vector state growing linearly while
//! scalar state stays flat.

use cord_trace::types::LINE_BYTES;

/// Bits in one hardware timestamp component (16, §2.4).
pub const TS_BITS: u64 = 16;
/// Words per line (16 for 64-byte lines of 4-byte words).
const WORDS: u64 = LINE_BYTES / 4;
/// Data bits per cache line.
const LINE_BITS: u64 = LINE_BYTES * 8;

/// Per-line CORD state in bits for scalar timestamps: `ts_per_line`
/// entries of (16-bit timestamp + 16 read bits + 16 write bits), plus
/// the two check-filter bits.
pub fn scalar_state_bits(ts_per_line: u64) -> u64 {
    ts_per_line * (TS_BITS + 2 * WORDS) + 2
}

/// Per-line state in bits for vector timestamps supporting `threads`
/// threads.
pub fn vector_state_bits(threads: u64, ts_per_line: u64) -> u64 {
    ts_per_line * (threads * TS_BITS + 2 * WORDS) + 2
}

/// Per-line state in bits for *per-word* vector timestamps (the ideal
/// organization the paper dismisses as a 200% overhead).
pub fn per_word_vector_state_bits(threads: u64) -> u64 {
    WORDS * threads * TS_BITS
}

/// Overhead of scalar CORD state relative to the line's data bits.
pub fn scalar_overhead(ts_per_line: u64) -> f64 {
    scalar_state_bits(ts_per_line) as f64 / LINE_BITS as f64
}

/// Overhead of per-line vector state relative to the line's data bits.
pub fn vector_overhead(threads: u64, ts_per_line: u64) -> f64 {
    vector_state_bits(threads, ts_per_line) as f64 / LINE_BITS as f64
}

/// Overhead of per-word vector timestamps relative to the line's data
/// bits.
pub fn per_word_vector_overhead(threads: u64) -> f64 {
    per_word_vector_state_bits(threads) as f64 / LINE_BITS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cord_scalar_state_is_19_percent() {
        // 2 x (16 + 32) + 2 = 98 bits over 512 data bits = 19.1%.
        assert_eq!(scalar_state_bits(2), 98);
        let o = scalar_overhead(2);
        assert!((o - 0.19).abs() < 0.005, "got {o}");
    }

    #[test]
    fn four_thread_vector_state_is_38_percent() {
        // 2 x (64 + 32) + 2 = 194 bits over 512 = 37.9%.
        assert_eq!(vector_state_bits(4, 2), 194);
        let o = vector_overhead(4, 2);
        assert!((o - 0.38).abs() < 0.005, "got {o}");
    }

    #[test]
    fn per_word_vectors_cost_200_percent() {
        // 16 words x 4 threads x 16 bits = 1024 bits over 512 = 200%.
        let o = per_word_vector_overhead(4);
        assert!((o - 2.0).abs() < 1e-9, "got {o}");
    }

    #[test]
    fn scalar_state_is_thread_count_independent() {
        // The paper: vector state "grows in linear proportion to the
        // number of supported threads" while CORD "supports any number
        // of threads" at the same 19%.
        assert_eq!(scalar_overhead(2), scalar_overhead(2));
        assert!(vector_overhead(16, 2) > 2.0 * vector_overhead(4, 2));
        // 2-thread vector state equals CORD's scalar budget roughly:
        // "vector timestamps used in prior work require the same amount
        // of state to support only two threads".
        let two_thread = vector_overhead(2, 2);
        let cord = scalar_overhead(2);
        assert!((two_thread - cord - 0.0625).abs() < 0.01); // one extra 16-bit component x2
    }
}
