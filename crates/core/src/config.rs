//! CORD mechanism configuration.

use cord_clocks::policy::ClockPolicy;

/// Knobs of the CORD mechanism, with the paper's shipping defaults and
/// the ablations §4.3/§4.4 sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CordConfig {
    /// Scalar-clock update policy (the `D` window of §2.6 and related
    /// ablations).
    pub policy: ClockPolicy,
    /// Timestamp entries kept per cache line (2 in the paper, §2.3;
    /// 1 reproduces the Figure 2 history-erasure problem).
    pub ts_per_line: usize,
    /// Maintain the main-memory read/write timestamps of §2.5. Disabling
    /// them (ablation) loses ordering through displaced lines.
    pub mem_ts: bool,
    /// Ignore data-race detections that compared against a main-memory
    /// timestamp (§2.5: "we can simply ignore (and not report) any data
    /// race detections that used a main memory timestamp"), trading
    /// missed races through memory for zero false positives.
    pub suppress_mem_ts_reports: bool,
    /// Maintain the per-line check filter bits of §2.7.2 that let whole
    /// lines be re-accessed without race-check broadcasts.
    pub check_filters: bool,
    /// Enable data-race detection. When `false` the mechanism degrades
    /// to a pure order-recorder (the related-work comparison point: "low
    /// overhead order-recording hardware has been proposed by Xu et al.,
    /// but without DRD support", §5): no race-check broadcasts, no race
    /// reports — only the clock updates and log that replay needs.
    pub drd: bool,
    /// Track the 16-bit sliding-window invariant and run the cache
    /// walker (§2.7.5). Affects statistics only — the reference
    /// implementation uses unbounded clocks, which `cord-clocks`'s
    /// property tests show are equivalent while the invariant holds.
    pub window_walker: bool,
    /// Order-log size budget in entries. A run whose recorder exceeds
    /// it fails with
    /// [`CordError::LogOverflow`](crate::error::CordError::LogOverflow)
    /// instead of silently growing without bound (models a fixed log
    /// buffer). `None` (the paper setup) is unbounded.
    pub max_log_entries: Option<u64>,
}

impl CordConfig {
    /// The paper's shipping configuration: `D = 16`, two timestamps per
    /// line, main-memory timestamps on, suppression on, filters on.
    pub fn paper() -> Self {
        CordConfig {
            policy: ClockPolicy::cord(),
            ts_per_line: 2,
            mem_ts: true,
            suppress_mem_ts_reports: true,
            check_filters: true,
            drd: true,
            window_walker: true,
            max_log_entries: None,
        }
    }

    /// The naive scalar-clock configuration (`D = 1`), the "D1" bars of
    /// Figures 16–17.
    pub fn naive_scalar() -> Self {
        CordConfig {
            policy: ClockPolicy::naive_scalar(),
            ..Self::paper()
        }
    }

    /// The paper configuration with an explicit `D` (Figures 16–17 sweep
    /// D ∈ {1, 4, 16, 256}).
    pub fn with_d(d: u64) -> Self {
        CordConfig {
            policy: ClockPolicy::with_d(d),
            ..Self::paper()
        }
    }

    /// Returns a copy with data-race detection disabled: a pure
    /// order-recorder in the spirit of FDR (§5's comparison point).
    #[must_use]
    pub fn record_only(mut self) -> Self {
        self.drd = false;
        self
    }

    /// Returns a copy with a single timestamp per line (Figure 2
    /// ablation).
    #[must_use]
    pub fn single_timestamp(mut self) -> Self {
        self.ts_per_line = 1;
        self
    }

    /// Returns a copy without main-memory timestamps (Figure 6 ablation;
    /// order recording becomes unsound for displaced synchronization).
    #[must_use]
    pub fn without_mem_ts(mut self) -> Self {
        self.mem_ts = false;
        self
    }

    /// Returns a copy with a bounded order log of `entries` entries.
    #[must_use]
    pub fn with_log_limit(mut self, entries: u64) -> Self {
        self.max_log_entries = Some(entries);
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `ts_per_line` is zero.
    pub fn validate(&self) {
        assert!(
            self.ts_per_line >= 1,
            "need at least one timestamp per line"
        );
    }
}

impl Default for CordConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CordConfig::paper();
        c.validate();
        assert_eq!(c.policy.d(), 16);
        assert_eq!(c.ts_per_line, 2);
        assert!(c.mem_ts && c.suppress_mem_ts_reports && c.check_filters);
    }

    #[test]
    fn sweeps_and_ablations() {
        assert_eq!(CordConfig::naive_scalar().policy.d(), 1);
        assert_eq!(CordConfig::with_d(256).policy.d(), 256);
        assert_eq!(CordConfig::paper().single_timestamp().ts_per_line, 1);
        assert!(!CordConfig::paper().without_mem_ts().mem_ts);
        assert_eq!(CordConfig::paper().max_log_entries, None);
        assert_eq!(
            CordConfig::paper().with_log_limit(1024).max_log_entries,
            Some(1024)
        );
    }

    #[test]
    #[should_panic(expected = "at least one timestamp")]
    fn zero_ts_rejected() {
        let mut c = CordConfig::paper();
        c.ts_per_line = 0;
        c.validate();
    }
}
