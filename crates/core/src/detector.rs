//! The CORD detector: scalar-clock order-recording and data race
//! detection as a [`MemoryObserver`] plugged into the CMP simulator.
//!
//! Mechanism summary (paper §2):
//!
//! * Each thread has a scalar logical clock; each core's L2-resident
//!   lines carry up to two timestamp entries with per-word read/write
//!   bits ([`LineHistory`]).
//! * An access compares the thread's clock against **remote** cores'
//!   histories for the word: snooped automatically when the access
//!   already performs a bus transaction (miss or upgrade), or via an
//!   explicit *race check broadcast* on a local hit whose access bit is
//!   clear and whose line check-filter does not grant permission
//!   (§2.7.2).
//! * `clock <= ts` is a race outcome: recorded (clock update `ts + 1`,
//!   log entry) and — for data accesses — reported as a data race.
//!   `ts < clock < ts + D` is ordered for recording but still a data
//!   race for DRD (§2.6).
//! * Synchronization reads jump the clock to `ts_write + D`;
//!   synchronization writes increment it afterwards; migrations add `D`.
//! * Displaced history entries fold into the whole-memory read/write
//!   timestamps (§2.5); memory-sourced fills compare against those,
//!   update the clock, and are never *reported* (no false positives).

use crate::config::CordConfig;
use crate::history::LineHistory;
use crate::memts::MemTimestamps;
use crate::record::OrderRecorder;
use crate::shadow::LineTable;
use cord_clocks::scalar::ScalarTime;
use cord_clocks::window16::{self, WINDOW};
use cord_obs::{EventKind, MetricsRegistry, TraceEvent, TraceHandle, NO_THREAD};
use cord_sim::observer::{
    AccessEvent, AccessKind, CoreId, Level, LineRemoval, MemoryObserver, ObserverOutcome,
    RemovalCause,
};
use cord_trace::types::{Addr, LineAddr, ThreadId};
use std::collections::HashSet;

/// A detected data race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// The thread whose access detected the race (the second access).
    pub thread: ThreadId,
    /// The racing word.
    pub addr: Addr,
    /// The detecting access's kind.
    pub kind: AccessKind,
    /// The core whose cached timestamp conflicted.
    pub other_core: CoreId,
    /// The detecting thread's clock before any update.
    pub my_clock: ScalarTime,
    /// The conflicting timestamp.
    pub other_ts: ScalarTime,
    /// Instruction index of the detecting access.
    pub instr_index: u64,
    /// Cycle of the detecting access.
    pub cycle: u64,
}

/// Counters the CORD detector accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CordStats {
    /// Data races reported (after memory-timestamp suppression and
    /// deduplication).
    pub data_races: u64,
    /// Ordering races between synchronization accesses (these are what
    /// the order log exists to capture).
    pub sync_races: u64,
    /// Clock updates of any kind (= order-log race/jump entries).
    pub clock_updates: u64,
    /// Explicit race-check broadcasts issued on local hits.
    pub race_check_broadcasts: u64,
    /// Memory-timestamp update broadcasts on displacements.
    pub memts_broadcasts: u64,
    /// Would-be data-race reports suppressed because they compared
    /// against a main-memory timestamp (§2.5).
    pub suppressed_mem_detections: u64,
    /// Accesses that skipped the race check thanks to a check-filter bit.
    pub filter_hits: u64,
    /// Check-filter grants.
    pub filter_grants: u64,
    /// Accesses that skipped the race check because the word's access
    /// bit was already set at the current timestamp.
    pub bit_hits: u64,
    /// Sliding-window violations observed (0 when the walker keeps up,
    /// §2.7.5).
    pub window_violations: u64,
    /// Comparisons audited through the 16-bit hardware encoding
    /// (truncated clocks + wrapped comparison, §2.7.5).
    pub window16_audits: u64,
    /// Audited comparisons whose 16-bit result disagreed with the
    /// unbounded reference (must be 0 while the walker keeps the window
    /// invariant).
    pub window16_mismatches: u64,
    /// History entries evicted by the cache walker.
    pub walker_evictions: u64,
    /// Clock bumps due to thread migration (§2.7.4).
    pub migration_bumps: u64,
    /// 16-bit epoch boundaries (multiples of 2^16 ticks) crossed by
    /// committed clock updates — each one is a hardware-counter
    /// rollover the windowed comparisons must survive. Grows with
    /// synchronization intensity, i.e. with core count.
    pub clock_rollovers: u64,
}

impl CordStats {
    /// Accumulates every counter into `reg` under the `cord.` prefix.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        reg.add("cord.data_races", self.data_races);
        reg.add("cord.sync_races", self.sync_races);
        reg.add("cord.clock_updates", self.clock_updates);
        reg.add("cord.race_check_broadcasts", self.race_check_broadcasts);
        reg.add("cord.memts_broadcasts", self.memts_broadcasts);
        reg.add(
            "cord.suppressed_mem_detections",
            self.suppressed_mem_detections,
        );
        reg.add("cord.filter_hits", self.filter_hits);
        reg.add("cord.filter_grants", self.filter_grants);
        reg.add("cord.bit_hits", self.bit_hits);
        reg.add("cord.window_violations", self.window_violations);
        reg.add("cord.window16_audits", self.window16_audits);
        reg.add("cord.window16_mismatches", self.window16_mismatches);
        reg.add("cord.walker_evictions", self.walker_evictions);
        reg.add("cord.migration_bumps", self.migration_bumps);
        // Rollovers only show up on long or wide (high-core-count)
        // runs; emitting the counter conditionally keeps the key set of
        // existing registries — and the fixtures that pin their bytes —
        // unchanged.
        if self.clock_rollovers > 0 {
            reg.add("cord.clock_rollovers", self.clock_rollovers);
        }
    }
}

/// The CORD mechanism, attached to a machine as its observer.
#[derive(Debug)]
pub struct CordDetector {
    cfg: CordConfig,
    clocks: Vec<ScalarTime>,
    last_instr: Vec<u64>,
    /// Per core: CORD state of L2-resident lines, indexed by the dense
    /// interleaved line index (no hashing on the access path).
    hist: Vec<LineTable<LineHistory<ScalarTime>>>,
    memts: MemTimestamps,
    /// Largest stamp each core's cache has recorded; a thread scheduled
    /// onto a core orders after this (co-resident threads' conflicts
    /// flow through the shared cache and are exempt from race checks, so
    /// the schedule-in update carries the ordering instead).
    core_max_stamp: Vec<ScalarTime>,
    recorder: OrderRecorder,
    races: Vec<RaceReport>,
    reported: HashSet<(u16, u64, u64, u8)>,
    stats: CordStats,
    accesses_since_walk: u64,
    /// Reusable buffer for entries displaced by line removals and walker
    /// passes, so neither path allocates in steady state.
    fold_scratch: Vec<crate::history::HistEntry<ScalarTime>>,
    trace: TraceHandle,
    /// Cycle of the most recent access, stamped onto events the
    /// detector raises outside an access context (walker passes).
    last_cycle: u64,
}

impl CordDetector {
    /// Initial thread clock. Starting at 1 (not 0) means untouched
    /// state — history entries never created, memory timestamps still at
    /// their initial 0 — always compares as "already ordered" rather
    /// than as a race with the beginning of time.
    pub const INITIAL_CLOCK: ScalarTime = ScalarTime::new(1);

    /// A detector for `threads` threads on `cores` cores.
    pub fn new(cfg: CordConfig, threads: usize, cores: usize) -> Self {
        cfg.validate();
        CordDetector {
            cfg,
            clocks: vec![Self::INITIAL_CLOCK; threads],
            last_instr: vec![0; threads],
            hist: (0..cores).map(|_| LineTable::new()).collect(),
            memts: MemTimestamps::new(),
            core_max_stamp: vec![ScalarTime::ZERO; cores],
            recorder: OrderRecorder::starting_at(threads, Self::INITIAL_CLOCK),
            races: Vec::new(),
            reported: HashSet::new(),
            stats: CordStats::default(),
            accesses_since_walk: 0,
            fold_scratch: Vec::new(),
            trace: TraceHandle::disabled(),
            last_cycle: 0,
        }
    }

    /// Data races reported so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Detector counters.
    pub fn stats(&self) -> &CordStats {
        &self.stats
    }

    /// The order-recording log.
    pub fn recorder(&self) -> &OrderRecorder {
        &self.recorder
    }

    /// The current logical clock of a thread.
    pub fn clock_of(&self, thread: ThreadId) -> ScalarTime {
        self.clocks[thread.index()]
    }

    /// The main-memory timestamps.
    pub fn mem_timestamps(&self) -> MemTimestamps {
        self.memts
    }

    /// Consumes the detector, returning `(races, recorder, stats)`.
    pub fn into_parts(self) -> (Vec<RaceReport>, OrderRecorder, CordStats) {
        (self.races, self.recorder, self.stats)
    }

    /// Attaches a run-event trace sink. Prefer passing the handle at
    /// construction time through [`crate::sink::ObsCtx`]; this exists
    /// for callers that build the detector directly.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The detector label used in reports and sweep tables.
    pub fn label(&self) -> String {
        format!("CORD-D{}", self.cfg.policy.d())
    }

    /// Order-recording race test, shadow-audited through the 16-bit
    /// hardware datapath when the walker is enabled: the comparison the
    /// real CORD would perform on truncated clocks must agree with the
    /// unbounded reference (the `window16` property tests prove this
    /// holds while the window invariant does; this audits it on real
    /// runs). Operands more than a window apart are skipped — the
    /// wrapped comparison is only exact within `WINDOW`, and hardware
    /// never sees such pairs (the walker evicts stale timestamps; our
    /// unbounded reference keeps them for fidelity of detection).
    fn audited_is_race(&mut self, clk: ScalarTime, ts: ScalarTime) -> bool {
        let wide = clk.is_race_with(ts);
        if self.cfg.window_walker {
            use cord_clocks::window16::{self, WINDOW};
            if clk.ticks().abs_diff(ts.ticks()) <= u64::from(WINDOW) {
                let narrow = window16::is_race_with(
                    window16::truncate(clk.ticks()),
                    window16::truncate(ts.ticks()),
                );
                self.stats.window16_audits += 1;
                if narrow != wide {
                    self.stats.window16_mismatches += 1;
                }
            }
        }
        wide
    }

    /// DRD synchronization test with the same 16-bit shadow audit. The
    /// audit is skipped when `clk` and `ts` are more than a window apart
    /// (the walker would have evicted such stale timestamps in hardware;
    /// our unbounded reference keeps them for fidelity of detection).
    fn audited_is_synchronized(&mut self, clk: ScalarTime, ts: ScalarTime) -> bool {
        let wide = self.cfg.policy.is_synchronized(clk, ts);
        if self.cfg.window_walker {
            use cord_clocks::window16::{self, WINDOW};
            let d = self.cfg.policy.d();
            // The 16-bit comparison is only exact for `d` strictly below
            // the window and operands within `WINDOW - d` of each other
            // (`ts + d` must stay inside the wrapped half-range from
            // `clk`). Oversized `d` skips the audit entirely rather than
            // logging mismatches the hardware encoding cannot represent;
            // the subtraction form cannot overflow, unlike the previous
            // `abs_diff + d` guard.
            if d < u64::from(WINDOW) && clk.ticks().abs_diff(ts.ticks()) <= u64::from(WINDOW) - d {
                let narrow = window16::is_synchronized_after(
                    window16::truncate(clk.ticks()),
                    window16::truncate(ts.ticks()),
                    d as u16,
                );
                self.stats.window16_audits += 1;
                if narrow != wide {
                    self.stats.window16_mismatches += 1;
                }
            }
        }
        wide
    }

    fn report_race(&mut self, report: RaceReport) {
        let key = (
            report.thread.0,
            report.addr.byte(),
            report.other_ts.ticks(),
            report.other_core.0,
        );
        if self.reported.insert(key) {
            self.trace.emit(|| TraceEvent {
                cycle: report.cycle,
                thread: report.thread.0,
                kind: EventKind::Race {
                    addr: report.addr.byte(),
                    other_core: report.other_core.0,
                },
            });
            self.races.push(report);
            self.stats.data_races += 1;
        }
    }

    fn fold_entries_to_memts(&mut self, entries: &[crate::history::HistEntry<ScalarTime>]) -> bool {
        if !self.cfg.mem_ts {
            return false;
        }
        let mut changed = false;
        for e in entries {
            changed |= self.memts.fold(e);
        }
        changed
    }

    /// Periodic cache-walker pass (§2.7.5): evicts history entries that
    /// risk leaving the 16-bit sliding window and records violations.
    fn walk(&mut self) {
        let max_clock = self.clocks.iter().map(|c| c.ticks()).max().unwrap_or(0);
        if max_clock <= u64::from(WINDOW) / 2 {
            return; // plenty of headroom
        }
        let bound = max_clock - u64::from(WINDOW) / 2;
        let mut folded = std::mem::take(&mut self.fold_scratch);
        folded.clear();
        let mut min_live = u64::MAX;
        for core_hist in &mut self.hist {
            for h in core_hist.values_mut() {
                // Single order-preserving partition: stale entries move
                // to `folded` with their bits intact, survivors keep
                // their push order, and resident-line metadata (check
                // filters, shed-write bound) is untouched.
                h.take_entries_into(|e| e.stamp.ticks() < bound, &mut folded);
                for e in h.entries() {
                    min_live = min_live.min(e.stamp.ticks());
                }
            }
        }
        self.stats.walker_evictions += folded.len() as u64;
        let evicted = folded.len() as u64;
        self.trace.emit(|| TraceEvent {
            cycle: self.last_cycle,
            thread: NO_THREAD,
            kind: EventKind::WalkerPass { evicted, bound },
        });
        if self.fold_entries_to_memts(&folded) {
            self.stats.memts_broadcasts += 1;
        }
        self.fold_scratch = folded;
        if min_live != u64::MAX && max_clock - min_live > u64::from(WINDOW) {
            self.stats.window_violations += 1;
        }
    }
}

/// The object-safe face shared by every race detector the experiment
/// harness can attach to a [`Machine`](cord_sim::engine::Machine):
/// a [`MemoryObserver`] that can report how many data races it found.
///
/// `Send` is a supertrait so a `Box<dyn Detector>` can be built on one
/// thread and executed on a sweep worker — the parallel injection
/// executor constructs detectors through
/// `DetectorConfig::build_sink` and fans the runs across a pool.
///
/// Observability wiring (trace handle in, metrics out) is no longer
/// part of this trait: the trace handle arrives at construction time
/// via [`crate::sink::ObsCtx`], and metrics leave through
/// [`crate::sink::DetectorSink::drain`].
pub trait Detector: MemoryObserver + Send {
    /// Number of data races reported so far.
    fn race_count(&self) -> u64;
}

impl Detector for CordDetector {
    fn race_count(&self) -> u64 {
        self.races.len() as u64
    }
}

/// Stable serialization of a race report, used by
/// [`crate::sink::SinkReport`] for the capture→replay byte-identity
/// contract. Kind names match the wire JSON codec
/// (`data-read`/`data-write`/`sync-read`/`sync-write`).
impl cord_json::ToJson for RaceReport {
    fn to_json(&self) -> cord_json::Json {
        let kind = cord_obs::kind_name(self.kind);
        cord_json::obj(vec![
            ("thread", cord_json::Json::UInt(u64::from(self.thread.0))),
            ("addr", cord_json::Json::UInt(self.addr.byte())),
            ("kind", cord_json::Json::Str(kind.to_string())),
            (
                "other_core",
                cord_json::Json::UInt(u64::from(self.other_core.0)),
            ),
            ("my_clock", cord_json::Json::UInt(self.my_clock.ticks())),
            ("other_ts", cord_json::Json::UInt(self.other_ts.ticks())),
            ("instr_index", cord_json::Json::UInt(self.instr_index)),
            ("cycle", cord_json::Json::UInt(self.cycle)),
        ])
    }
}

impl crate::sink::DetectorSink for CordDetector {
    fn ingest(&mut self, ev: &cord_obs::StreamEvent) -> ObserverOutcome {
        crate::sink::apply_stream_event(self, ev)
    }

    fn drain(&mut self) -> crate::sink::SinkReport {
        use cord_json::ToJson;
        let mut report = crate::sink::SinkReport::new(self.label());
        report.race_count = self.races.len() as u64;
        report.races = self.races.iter().map(|r| r.to_json()).collect();
        self.stats.record_into(&mut report.metrics);
        report
    }
}

impl MemoryObserver for CordDetector {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        let t = ev.thread.index();
        let my_core = ev.core.index();
        let line = ev.addr.line();
        let word = ev.addr.word_in_line();
        let is_write = ev.kind.is_write();
        let is_sync = ev.kind.is_sync();
        let is_data = !is_sync;
        let orig_clk = self.clocks[t];
        let mut checks: u32 = 0;
        let mut posted: u32 = 0;
        self.last_cycle = self.last_cycle.max(ev.cycle);

        // -- 1. Decide whether remote histories get checked. Misses and
        // upgrades snoop for free; local hits need a broadcast unless a
        // filter bit or the word's own access bit says it's covered.
        let mut need_remote_check = ev.path.has_bus_transaction();
        if !need_remote_check && self.cfg.drd {
            let h = self.hist[my_core].entry_or_default(line);
            if self.cfg.check_filters && h.filter_allows(is_write) {
                self.stats.filter_hits += 1;
            } else {
                // The word is covered if *any* resident entry records it
                // in this mode — the older timestamp "can provide access
                // history for words that are not yet accessed with the
                // newest timestamp" (Figure 2's rationale), so a
                // timestamp change must not trigger a fresh broadcast
                // per word.
                let bit_set = h.entries().iter().any(|e| {
                    if is_write {
                        e.written(word)
                    } else {
                        e.read(word)
                    }
                });
                if bit_set {
                    self.stats.bit_hits += 1;
                } else {
                    need_remote_check = true;
                    checks += 1;
                    self.stats.race_check_broadcasts += 1;
                }
            }
        }

        // -- 2. Compare against remote histories.
        let mut new_clk = orig_clk;
        let mut line_max_ts: Option<ScalarTime> = None;
        if need_remote_check {
            for core in 0..self.hist.len() {
                if core == my_core {
                    continue;
                }
                let Some(h) = self.hist[core].get(line) else {
                    continue;
                };
                let mut max_conflict_ts: Option<ScalarTime> = None;
                let mut max_write_ts: Option<ScalarTime> = None;
                for e in h.entries() {
                    line_max_ts = Some(line_max_ts.map_or(e.stamp, |m| m.max(e.stamp)));
                    if e.conflicts_with(word, is_write) {
                        max_conflict_ts = Some(max_conflict_ts.map_or(e.stamp, |m| m.max(e.stamp)));
                    }
                    if ev.kind == AccessKind::SyncRead && e.written(word) {
                        max_write_ts = Some(max_write_ts.map_or(e.stamp, |m| m.max(e.stamp)));
                    }
                }
                if ev.kind == AccessKind::SyncRead {
                    // The variable's latest write may have been displaced
                    // from the two-entry history by newer spin-read
                    // stamps; the line's shed-write bound covers it.
                    if let Some(shed) = h.shed_write_stamp {
                        max_write_ts = Some(max_write_ts.map_or(shed, |m| m.max(shed)));
                    }
                }
                if let Some(ts) = max_conflict_ts {
                    let is_race = self.audited_is_race(orig_clk, ts);
                    if is_race {
                        if is_sync {
                            self.stats.sync_races += 1;
                        }
                        if is_sync || self.cfg.policy.updates_on_data_races() {
                            new_clk = new_clk.max(self.cfg.policy.race_update(orig_clk, ts));
                        }
                    }
                    // DRD: report when both are data accesses and the
                    // gap is under D (covers both clk <= ts and the
                    // Figure 9 window ts < clk < ts + D).
                    if self.cfg.drd && is_data && !self.audited_is_synchronized(orig_clk, ts) {
                        self.report_race(RaceReport {
                            thread: ev.thread,
                            addr: ev.addr,
                            kind: ev.kind,
                            other_core: CoreId(core as u8),
                            my_clock: orig_clk,
                            other_ts: ts,
                            instr_index: ev.instr_index,
                            cycle: ev.cycle,
                        });
                    }
                }
                if let Some(wts) = max_write_ts {
                    // Sync read: jump to ts_write + D (§2.6).
                    new_clk = new_clk.max(self.cfg.policy.sync_read_update(orig_clk, wts));
                }
            }
            // Remote activity invalidates other cores' check filters —
            // mode-aware: any access voids remote *write* filters (their
            // premise is "no remote bits at all"), but only a write
            // voids remote *read* filters (premise: "no remote write
            // bits").
            for core in 0..self.hist.len() {
                if core != my_core {
                    if let Some(h) = self.hist[core].get_mut(line) {
                        h.write_filter = false;
                        if is_write {
                            h.read_filter = false;
                        }
                    }
                }
            }
        }

        // -- 3. Unconditional ordering from the response tag (§2.7.2:
        // "Data responses are tagged with the data's timestamp and
        // result in a clock update on the requesting processor"). A
        // transfer or upgrade orders the requester after the *line's*
        // newest remote timestamp; because displacement always removes
        // the line's lowest stamp, the line maximum dominates every
        // stamp the line ever shed, which is what makes the recorded
        // order sound (see DESIGN.md).
        if matches!(
            ev.path,
            cord_sim::observer::AccessPath::FillFromSibling(_)
                | cord_sim::observer::AccessPath::UpgradeHit
        ) {
            if let Some(ts) = line_max_ts {
                // Ordering only (+1); a sync read's +D jump over the
                // latest write stamp (visible or shed) was applied in
                // the remote scan above.
                if self.audited_is_race(orig_clk, ts) {
                    new_clk = new_clk.max(self.cfg.policy.race_update(orig_clk, ts));
                }
            }
            // A write also orders against reads whose history left every
            // cache for memory (capacity evictions fold read stamps into
            // the memory read timestamp; nothing reported).
            if is_write && self.cfg.mem_ts {
                let ts = self.memts.read();
                if orig_clk.is_race_with(ts) {
                    self.stats.suppressed_mem_detections += u64::from(is_data);
                    new_clk = new_clk.max(self.cfg.policy.race_update(orig_clk, ts));
                }
            }
        }

        // -- 4. Memory responses use the main memory timestamps instead
        // (§2.5): the clock update keeps order recording correct, but
        // the detection is never reported — "we can simply ignore (and
        // not report) any data race detections that used a main memory
        // timestamp". A synchronization read takes the +D jump over the
        // memory *write* timestamp, because the displaced lock write it
        // is ordering against folded into it (Figure 6); without the
        // jump, data the lock protected would sit inside the DRD window.
        if ev.path.from_memory() && self.cfg.mem_ts {
            if ev.kind == AccessKind::SyncRead && self.memts.write() > ScalarTime::ZERO {
                new_clk = new_clk.max(
                    self.cfg
                        .policy
                        .sync_read_update(orig_clk, self.memts.write()),
                );
            }
            let ts = self.memts.relevant_for(is_write);
            if orig_clk.is_race_with(ts) {
                if is_data {
                    if self.cfg.suppress_mem_ts_reports {
                        self.stats.suppressed_mem_detections += 1;
                    } else {
                        self.report_race(RaceReport {
                            thread: ev.thread,
                            addr: ev.addr,
                            kind: ev.kind,
                            other_core: ev.core, // no specific core: memory
                            my_clock: orig_clk,
                            other_ts: ts,
                            instr_index: ev.instr_index,
                            cycle: ev.cycle,
                        });
                    }
                }
                new_clk = new_clk.max(self.cfg.policy.race_update(orig_clk, ts));
            }
        }

        // -- 5. Commit the clock update and timestamp the access with
        // the *updated* clock (this is what makes conflicting pairs
        // strictly clock-ordered, the invariant replay relies on).
        if new_clk != orig_clk {
            self.recorder
                .record_change(ev.thread, new_clk, ev.instr_index);
            self.clocks[t] = new_clk;
            self.stats.clock_updates += 1;
            self.stats.clock_rollovers +=
                window16::rollovers_crossed(orig_clk.ticks(), new_clk.ticks());
        }
        let stamp = self.clocks[t];

        // -- 6. Update the local line history; displacement removes the
        // lower timestamp (§2.7.2) and folds it into memory (§2.5).
        let ts_per_line = self.cfg.ts_per_line;
        let h = self.hist[my_core].entry_or_default(line);
        let displaced = if h.newest().map(|e| e.stamp) == Some(stamp) {
            None
        } else {
            h.push_stamp_displace_min(stamp, ts_per_line)
        };
        h.newest_mut()
            .expect("entry just ensured")
            .set(word, is_write);
        self.core_max_stamp[my_core] = self.core_max_stamp[my_core].max(stamp);
        if let Some(old) = displaced {
            if old.any_written() {
                let stamp = old.stamp;
                self.hist[my_core]
                    .get_mut(line)
                    .expect("line history just touched")
                    .note_shed_write(stamp);
            }
            if self.fold_entries_to_memts(&[old]) {
                posted += 1;
                self.stats.memts_broadcasts += 1;
            }
        }

        // -- 7. Check-filter grant: a race check that found no
        // *potential* conflict anywhere in the line grants line-wide
        // permission for this mode (§2.7.2). A remote entry is a
        // potential conflict only while its timestamp could still race
        // with this thread under the D window — stamps the thread is
        // already synchronized past (e.g. through the barrier that
        // ordered a producer's writes before this consumer's reads) can
        // never produce a detection and do not block the grant.
        if need_remote_check && self.cfg.check_filters {
            let clk_now = self.clocks[t].max(new_clk);
            let line_clear = (0..self.hist.len()).filter(|&c| c != my_core).all(|c| {
                match self.hist[c].get(line) {
                    None => true,
                    Some(h) => h.entries().iter().all(|e| {
                        let conflicts = if is_write {
                            e.any_read() || e.any_written()
                        } else {
                            e.any_written()
                        };
                        !conflicts || self.cfg.policy.is_synchronized(clk_now, e.stamp)
                    }),
                }
            });
            if line_clear {
                let h = self.hist[my_core].entry_or_default(line);
                h.grant_filter(is_write);
                self.stats.filter_grants += 1;
            }
        }

        // -- 8. Post-synchronization-write increment (Fig 4), or the
        // increment-on-everything ablation (Fig 5).
        if ev.kind == AccessKind::SyncWrite || self.cfg.policy.increments_on_all_accesses() {
            let cur = self.clocks[t];
            let next = self.cfg.policy.post_sync_write(cur);
            self.recorder
                .record_change(ev.thread, next, ev.instr_index + 1);
            self.clocks[t] = next;
            self.stats.clock_updates += 1;
            self.stats.clock_rollovers += window16::rollovers_crossed(cur.ticks(), next.ticks());
        }

        self.last_instr[t] = ev.instr_index + 1;

        // -- 9. Periodic cache-walker pass.
        if self.cfg.window_walker {
            self.accesses_since_walk += 1;
            if self.accesses_since_walk >= 4096 {
                self.accesses_since_walk = 0;
                self.walk();
            }
        }

        ObserverOutcome {
            race_check_requests: checks,
            posted_transactions: posted,
        }
    }

    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        if level == Level::L2 {
            // Revive-and-reset: a previously parked arena slot hands its
            // entry buffer back instead of allocating a fresh history.
            self.hist[core.index()].entry_or_default(line).reset();
        }
    }

    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        if removal.level != Level::L2 {
            return ObserverOutcome::NONE;
        }
        let mut entries = std::mem::take(&mut self.fold_scratch);
        entries.clear();
        match self.hist[removal.core.index()].vacate(removal.line) {
            Some(h) => h.drain_into(&mut entries),
            None => {
                self.fold_scratch = entries;
                return ObserverOutcome::NONE;
            }
        }
        // Capacity evictions fold into the memory timestamps (§2.5).
        // Invalidations do not: the requesting writer's response-tag
        // clock update already ordered it after the line's maximum
        // stamp, and its new history entry dominates the dropped ones
        // from then on.
        let outcome =
            if removal.cause == RemovalCause::Capacity && self.fold_entries_to_memts(&entries) {
                self.stats.memts_broadcasts += 1;
                ObserverOutcome::posted(1)
            } else {
                ObserverOutcome::NONE
            };
        self.fold_scratch = entries;
        outcome
    }

    fn on_thread_migrated(&mut self, thread: ThreadId, _from: CoreId, to: CoreId) {
        // "Synchronize" the migrating thread with its prior execution on
        // the old processor so stale same-thread timestamps can't flag
        // self-races (§2.7.4) — and with everything the destination
        // core's cache has stamped, because conflicts with co-resident
        // threads' cached accesses are exempt from race checks (local
        // histories are never compared) and must be ordered here for
        // replay to stay exact.
        let t = thread.index();
        let prev = self.clocks[t];
        let next = self
            .cfg
            .policy
            .migration_update(prev)
            .max(self.core_max_stamp[to.index()].succ());
        self.recorder
            .record_change(thread, next, self.last_instr[t]);
        self.clocks[t] = next;
        self.stats.migration_bumps += 1;
        self.stats.clock_updates += 1;
        self.stats.clock_rollovers += window16::rollovers_crossed(prev.ticks(), next.ticks());
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        self.recorder.flush(final_instr_counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_sim::config::MachineConfig;
    use cord_sim::engine::{InjectionPlan, Machine};
    use cord_trace::builder::WorkloadBuilder;
    use cord_trace::program::Workload;

    fn run(
        w: &Workload,
        cfg: CordConfig,
        seed: u64,
        plan: InjectionPlan,
    ) -> (cord_sim::engine::RunOutput, CordDetector) {
        let mc = MachineConfig::paper_4core();
        let det = CordDetector::new(cfg, w.num_threads(), mc.cores);
        let m = Machine::new(mc, w, det, seed, plan);
        m.run().expect("no deadlock")
    }

    /// Producer/consumer through a flag: properly synchronized, no races.
    fn flag_workload() -> Workload {
        let mut b = WorkloadBuilder::new("sync-ok", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        b.build()
    }

    #[test]
    fn no_false_positives_on_synchronized_flag() {
        let (_, det) = run(
            &flag_workload(),
            CordConfig::paper(),
            1,
            InjectionPlan::none(),
        );
        assert!(det.races().is_empty(), "false positives: {:?}", det.races());
        // Ordering was recorded: the consumer's clock advanced past the
        // producer's.
        assert!(det.clock_of(ThreadId(1)) > ScalarTime::ZERO);
        assert!(det.recorder().is_flushed());
    }

    #[test]
    fn removed_flag_wait_yields_data_race() {
        // Removing the flag wait (the only removable instance) leaves
        // the read racing with the write.
        let mut b = WorkloadBuilder::new("sync-broken", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        // Producer computes first so the consumer really runs ahead.
        b.thread_mut(0).compute(20_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).compute(30_000).read(d.word(0));
        let w = b.build();
        let (out, det) = run(&w, CordConfig::paper(), 1, InjectionPlan::remove_nth(0));
        assert!(out.stats.injection_applied);
        assert!(
            !det.races().is_empty(),
            "expected a data race on the shared word"
        );
        let r = det.races()[0];
        assert_eq!(r.addr, Addr::new(0));
        assert_eq!(r.kind, AccessKind::DataRead);
    }

    #[test]
    fn lock_ordering_prevents_false_positives() {
        let mut b = WorkloadBuilder::new("lock-ok", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(4);
        for t in 0..2 {
            for i in 0..4 {
                b.thread_mut(t)
                    .lock(l)
                    .update(d.word(i))
                    .unlock(l)
                    .compute(200);
            }
        }
        let w = b.build();
        let (_, det) = run(&w, CordConfig::paper(), 3, InjectionPlan::none());
        assert!(det.races().is_empty(), "false positives: {:?}", det.races());
        assert!(det.stats().sync_races > 0, "lock handoffs are sync races");
    }

    #[test]
    fn removed_lock_yields_data_race() {
        let mut b = WorkloadBuilder::new("lock-broken", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t)
                .compute(t as u32 * 500)
                .lock(l)
                .update(d.word(0))
                .unlock(l);
        }
        let w = b.build();
        // Remove thread 0's acquire (instance 0).
        let (out, det) = run(&w, CordConfig::paper(), 5, InjectionPlan::remove_nth(0));
        assert!(out.stats.injection_applied);
        assert!(!det.races().is_empty(), "expected race on the counter");
    }

    #[test]
    fn order_log_entries_partition_instructions() {
        let mut b = WorkloadBuilder::new("log", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(2);
        for t in 0..2 {
            for i in 0..3 {
                b.thread_mut(t)
                    .lock(l)
                    .update(d.word(i % 2))
                    .unlock(l)
                    .compute(50);
            }
        }
        let w = b.build();
        let (out, det) = run(&w, CordConfig::paper(), 7, InjectionPlan::none());
        let total_logged: u64 = det
            .recorder()
            .entries()
            .iter()
            .map(|e| e.instructions)
            .sum();
        let total_instr: u64 = out.stats.instr_counts.iter().sum();
        assert_eq!(total_logged, total_instr);
        assert!(det.recorder().bytes() > 0);
    }

    #[test]
    fn barrier_workload_is_race_free() {
        let mut b = WorkloadBuilder::new("barrier-ok", 4);
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(16);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            for round in 0..3u64 {
                tb.write(d.word(t as u64 * 4 + round % 4));
                tb.barrier(bar);
                tb.read(d.word(((t as u64 + 1) % 4) * 4 + round % 4));
                tb.barrier(bar);
            }
        }
        let w = b.build();
        let (_, det) = run(&w, CordConfig::paper(), 11, InjectionPlan::none());
        assert!(det.races().is_empty(), "false positives: {:?}", det.races());
    }

    #[test]
    fn migration_does_not_self_race() {
        let mut b = WorkloadBuilder::new("mig", 4);
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(64);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            // Private per-thread region accessed before and after
            // migration: without the +D bump, the post-migration access
            // would race with the thread's own stale timestamps.
            for i in 0..16 {
                tb.update(d.word(t as u64 * 16 + i));
            }
            tb.barrier(bar);
            for i in 0..16 {
                tb.update(d.word(t as u64 * 16 + i));
            }
        }
        let w = b.build();
        let mc = MachineConfig::paper_4core().with_barrier_migration();
        let det = CordDetector::new(CordConfig::paper(), 4, mc.cores);
        let m = Machine::new(mc, &w, det, 13, InjectionPlan::none());
        let (out, det) = m.run().expect("no deadlock");
        assert!(out.stats.migrations > 0);
        assert!(det.stats().migration_bumps > 0);
        assert!(
            det.races().is_empty(),
            "self-races after migration: {:?}",
            det.races()
        );
    }

    #[test]
    fn sync_write_storm_counts_rollovers() {
        // Enough synchronization writes to push the single thread's
        // clock across at least one 2^16 epoch boundary. With a
        // monotone clock the per-commit rollover increments telescope
        // to the final clock's epoch.
        let mut b = WorkloadBuilder::new("rollover", 1);
        let g = b.alloc_flag();
        for _ in 0..70_000 {
            b.thread_mut(0).flag_set(g);
        }
        let w = b.build();
        let (_, det) = run(&w, CordConfig::paper(), 17, InjectionPlan::none());
        let stats = *det.stats();
        assert!(stats.clock_rollovers >= 1, "the clock never wrapped");
        assert_eq!(
            stats.clock_rollovers,
            det.clock_of(ThreadId(0)).ticks() >> 16
        );
        // Nonzero counts reach the registry; all-zero stats leave the
        // key out entirely (fixture byte-compatibility).
        let mut reg = MetricsRegistry::default();
        stats.record_into(&mut reg);
        assert_eq!(reg.counter("cord.clock_rollovers"), stats.clock_rollovers);
        let mut reg0 = MetricsRegistry::default();
        CordStats::default().record_into(&mut reg0);
        assert!(reg0.counters().keys().all(|k| k != "cord.clock_rollovers"));
    }

    #[test]
    fn d_window_detects_figure8_style_race() {
        // Figure 8's problem: synchronization writes occur at about the
        // same rate in both threads, so a naive scalar clock (D=1) sees
        // the later thread as "already ordered" after the earlier one's
        // write even though no synchronization connects them. The two
        // threads here use *disjoint* locks, so nothing orders them; the
        // reader's clock has ticked a little past the writer's
        // timestamp. D=1 misses the race, D=16 catches it.
        let build = || {
            let mut b = WorkloadBuilder::new("fig8", 2);
            let l0 = b.alloc_lock();
            let l1 = b.alloc_lock();
            let x = b.alloc_line_aligned(1);
            let private = b.alloc_line_aligned(2);
            // Thread 0: two private critical sections, then write X.
            // Clock ends around 1 + 2 sync-write ticks = 3.
            b.thread_mut(0)
                .lock(l0)
                .update(private.word(0))
                .unlock(l0)
                .write(x.word(0));
            // Thread 1: four private critical sections (clock ~5), then
            // read X — entirely unsynchronized with thread 0's write.
            let tb = &mut b.thread_mut(1);
            tb.compute(50_000);
            for _ in 0..2 {
                tb.lock(l1).update(private.word(1)).unlock(l1);
            }
            tb.read(x.word(0));
            b.build()
        };
        let count_x_races = |det: &CordDetector| {
            det.races()
                .iter()
                .filter(|r| r.addr == Addr::new(0))
                .count()
        };
        let (_, det_d1) = run(&build(), CordConfig::with_d(1), 17, InjectionPlan::none());
        let (_, det_d16) = run(&build(), CordConfig::with_d(16), 17, InjectionPlan::none());
        assert_eq!(
            count_x_races(&det_d1),
            0,
            "D=1 treats the slightly-later reader as ordered (the miss)"
        );
        assert!(
            count_x_races(&det_d16) > 0,
            "D=16 should catch the unsynchronized read of X; clocks: {:?} {:?}",
            det_d16.clock_of(ThreadId(0)),
            det_d16.clock_of(ThreadId(1)),
        );
    }

    #[test]
    fn check_filters_reduce_broadcasts() {
        let mut b = WorkloadBuilder::new("filters", 1);
        let d = b.alloc_line_aligned(16);
        // Sequential sweep over one private line: after the first word's
        // race check finds nothing, the filter covers the rest.
        for i in 0..16 {
            b.thread_mut(0).read(d.word(i));
        }
        let w = b.build();
        let (_, with_filters) = run(&w, CordConfig::paper(), 19, InjectionPlan::none());
        let mut no_filters_cfg = CordConfig::paper();
        no_filters_cfg.check_filters = false;
        let (_, without_filters) = run(&w, no_filters_cfg, 19, InjectionPlan::none());
        assert!(
            with_filters.stats().race_check_broadcasts
                < without_filters.stats().race_check_broadcasts
        );
        assert!(with_filters.stats().filter_grants > 0);
        assert!(with_filters.stats().filter_hits > 0);
    }

    #[test]
    fn memts_suppression_avoids_false_positive_through_memory() {
        // A word written, displaced to memory by cache pressure, then
        // read by another thread *after* proper synchronization would be
        // a false positive if memory detections were reported.
        let mut b = WorkloadBuilder::new("memts", 2);
        let g = b.alloc_flag();
        let x = b.alloc_line_aligned(1);
        // Enough lines to blow the 32 KB L2 (512 lines).
        let filler = b.alloc_line_aligned(16 * 1024);
        b.thread_mut(0).write(x.word(0));
        {
            let tb = &mut b.thread_mut(0);
            for i in 0..1024u64 {
                tb.write(filler.word(i * 16));
            }
        }
        b.thread_mut(0).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(x.word(0));
        let w = b.build();
        let (_, det) = run(&w, CordConfig::paper(), 23, InjectionPlan::none());
        assert!(
            det.races().is_empty(),
            "memory-path detections must not be reported: {:?}",
            det.races()
        );
        assert!(det.stats().memts_broadcasts > 0, "displacements folded");
    }

    #[test]
    fn window16_audit_skipped_for_oversized_d() {
        // d = WINDOW and d = WINDOW + 1 cannot be represented by the
        // 16-bit wrapped comparison; the audit must be skipped entirely
        // instead of logging spurious mismatches.
        for d in [u64::from(WINDOW), u64::from(WINDOW) + 1] {
            let mut det = CordDetector::new(CordConfig::with_d(d), 2, 4);
            let _ = det.audited_is_synchronized(ScalarTime::new(100), ScalarTime::new(90));
            let _ = det.audited_is_synchronized(ScalarTime::new(100_000), ScalarTime::new(99_999));
            assert_eq!(det.stats().window16_audits, 0, "d={d} must skip the audit");
            assert_eq!(
                det.stats().window16_mismatches,
                0,
                "d={d} must not mismatch"
            );
        }
    }

    #[test]
    fn window16_audit_guard_boundaries() {
        // Default d = 16: operands within WINDOW - d of each other are
        // audited and must agree with the unbounded reference; one tick
        // past that the audit is skipped.
        let mut det = CordDetector::new(CordConfig::paper(), 2, 4);
        let edge = u64::from(WINDOW) - 16;
        let _ = det.audited_is_synchronized(ScalarTime::new(100_000), ScalarTime::new(99_970));
        assert_eq!(det.stats().window16_audits, 1);
        let _ =
            det.audited_is_synchronized(ScalarTime::new(200_000), ScalarTime::new(200_000 - edge));
        let _ =
            det.audited_is_synchronized(ScalarTime::new(200_000 - edge), ScalarTime::new(200_000));
        assert_eq!(
            det.stats().window16_audits,
            3,
            "abs_diff == WINDOW - d is audited"
        );
        let _ = det.audited_is_synchronized(
            ScalarTime::new(200_000),
            ScalarTime::new(200_000 - edge - 1),
        );
        assert_eq!(
            det.stats().window16_audits,
            3,
            "abs_diff > WINDOW - d is skipped"
        );
        assert_eq!(det.stats().window16_mismatches, 0);
    }

    #[test]
    fn window16_race_audit_skips_operands_over_a_window_apart() {
        // A thread clock lagging a cached timestamp by more than WINDOW
        // (or vice versa) is a pairing the hardware walker makes
        // impossible; the wrapped comparison is not exact there and the
        // audit must skip it instead of logging a mismatch.
        let mut det = CordDetector::new(CordConfig::paper(), 2, 4);
        let w = u64::from(WINDOW);
        let _ = det.audited_is_race(ScalarTime::new(100_000), ScalarTime::new(100_000 - w));
        let _ = det.audited_is_race(ScalarTime::new(100_000 - w), ScalarTime::new(100_000));
        assert_eq!(det.stats().window16_audits, 2, "abs_diff == WINDOW audited");
        let _ = det.audited_is_race(ScalarTime::new(100_000), ScalarTime::new(100_000 - w - 1));
        let _ = det.audited_is_race(ScalarTime::new(100_000 - w - 1), ScalarTime::new(100_000));
        assert_eq!(
            det.stats().window16_audits,
            2,
            "abs_diff > WINDOW is skipped"
        );
        assert_eq!(det.stats().window16_mismatches, 0);
    }

    #[test]
    fn walker_pass_preserves_surviving_state_and_verdicts() {
        use cord_sim::observer::{AccessEvent, AccessPath};
        // Two detectors with identical state; one takes a walker pass.
        // The pass must evict only the stale entry and leave surviving
        // entries (order, bits) and resident-line metadata (filters,
        // shed-write bound) untouched, so verdicts on later accesses
        // are identical.
        let line_addr = Addr::new(4096);
        let setup = || {
            let mut det = CordDetector::new(CordConfig::paper(), 2, 4);
            det.clocks[0] = ScalarTime::new(39_990);
            det.clocks[1] = ScalarTime::new(40_000); // stamped the live entry
            let h = det.hist[1].entry_or_default(line_addr.line());
            h.push_stamp(ScalarTime::new(10), 2); // stale: < 39_990 - WINDOW/2
            h.newest_mut().unwrap().set(0, true);
            h.push_stamp(ScalarTime::new(39_995), 2); // live
            h.newest_mut().unwrap().set(1, true);
            h.grant_filter(false);
            h.note_shed_write(ScalarTime::new(39_980));
            det
        };
        let mut walked = setup();
        let mut unwalked = setup();
        walked.walk();

        let h = walked.hist[1].get(line_addr.line()).expect("line resident");
        assert_eq!(h.entries().len(), 1);
        assert_eq!(h.newest().unwrap().stamp, ScalarTime::new(39_995));
        assert!(h.newest().unwrap().written(1), "surviving bits intact");
        assert!(
            h.filter_allows(false),
            "walker must not clear check filters"
        );
        assert_eq!(
            h.shed_write_stamp,
            Some(ScalarTime::new(39_980)),
            "walker must not lose the shed-write bound"
        );
        assert_eq!(walked.stats().walker_evictions, 1);
        // The evicted write folded into the memory write timestamp.
        assert_eq!(walked.mem_timestamps().write(), ScalarTime::new(10));

        // Identical verdict on a later access touching the live entry:
        // thread 0 (clock 39_990) reads word 1, which core 1 wrote at
        // 39_995 — a race in both detectors, evicted entry or not.
        let ev = AccessEvent {
            core: CoreId(0),
            thread: ThreadId(0),
            addr: line_addr.offset_words(1),
            kind: AccessKind::DataRead,
            path: AccessPath::L2Hit,
            instr_index: 0,
            cycle: 100,
        };
        walked.on_access(&ev);
        unwalked.on_access(&ev);
        assert_eq!(
            walked.races(),
            unwalked.races(),
            "verdict parity after walk"
        );
        assert_eq!(walked.races().len(), 1);
    }

    #[test]
    fn walker_eviction_keeps_memts_suppression() {
        // §2.5 end-to-end: thread 0 writes x, pumps its clock past the
        // half-window with a private flag (forcing mid-run walker
        // evictions), blows the L2 so x also reaches memory, then
        // releases g. Thread 1 waits on g and reads x — properly
        // synchronized, so the run must stay report-free with the
        // walker folding histories into the memory timestamps, exactly
        // as it is without the walker.
        let build = || {
            let mut b = WorkloadBuilder::new("walker-memts", 2);
            let g = b.alloc_flag();
            let p = b.alloc_flag();
            let x = b.alloc_line_aligned(1);
            let filler = b.alloc_line_aligned(16 * 1024);
            b.thread_mut(0).write(x.word(0));
            {
                let tb = &mut b.thread_mut(0);
                // Well past WINDOW/2 sync writes: each bumps the clock
                // by one, and the surplus beyond 16383 leaves enough
                // accesses for a walker pass (every 4096) to fire after
                // the clock crosses the half-window.
                for _ in 0..22_000u64 {
                    tb.flag_set(p);
                }
                for i in 0..1024u64 {
                    tb.write(filler.word(i * 16));
                }
            }
            b.thread_mut(0).flag_set(g);
            b.thread_mut(1).flag_wait(g).read(x.word(0));
            b.build()
        };
        let mut no_walker = CordConfig::paper();
        no_walker.window_walker = false;
        let (_, with_w) = run(&build(), CordConfig::paper(), 29, InjectionPlan::none());
        let (_, without_w) = run(&build(), no_walker, 29, InjectionPlan::none());
        assert!(
            with_w.stats().walker_evictions > 0,
            "walker must evict mid-run"
        );
        assert_eq!(with_w.stats().window16_mismatches, 0);
        assert!(
            with_w.races().is_empty(),
            "memory-path detections must stay suppressed: {:?}",
            with_w.races()
        );
        assert_eq!(
            with_w.races(),
            without_w.races(),
            "report parity with the no-walker run"
        );
    }

    #[test]
    fn into_parts_hands_back_everything() {
        let (_, det) = run(
            &flag_workload(),
            CordConfig::paper(),
            1,
            InjectionPlan::none(),
        );
        let updates = det.stats().clock_updates;
        let (races, recorder, stats) = det.into_parts();
        assert!(races.is_empty());
        assert!(recorder.is_flushed());
        assert_eq!(stats.clock_updates, updates);
    }
}

#[cfg(test)]
mod record_only_tests {
    use super::*;
    use crate::config::CordConfig;
    use crate::replay::replay_and_verify;
    use cord_sim::config::MachineConfig;
    use cord_sim::engine::{InjectionPlan, Machine};
    use cord_trace::builder::WorkloadBuilder;

    /// A record-only CORD (the FDR-style configuration of §5) still
    /// replays exactly, reports nothing, and issues no race-check
    /// broadcasts.
    #[test]
    fn record_only_replays_without_drd_traffic() {
        let mut b = WorkloadBuilder::new("rec-only", 4);
        let l = b.alloc_lock();
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(64);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            for i in 0..8u64 {
                tb.lock(l).update(d.word((t as u64 * 8 + i) % 64)).unlock(l);
            }
            tb.barrier(bar);
            tb.read(d.word(((t as u64 + 1) % 4) * 8));
        }
        let w = b.build();
        let cfg = CordConfig::paper().record_only();
        // Even with an injected bug, a record-only run reports nothing
        // but its log still replays the (buggy) execution exactly.
        for plan in [InjectionPlan::none(), InjectionPlan::remove_nth(1)] {
            let mc = MachineConfig::paper_4core().with_resolved_capture();
            let det = CordDetector::new(cfg.clone(), 4, mc.cores);
            let m = Machine::new(mc, &w, det, 3, plan);
            let (out, det) = m.run().expect("no deadlock");
            assert!(det.races().is_empty(), "record-only must not report");
            assert_eq!(det.stats().race_check_broadcasts, 0);
            let resolved = out.truth.resolved.as_ref().expect("captured");
            replay_and_verify(
                det.recorder().entries(),
                resolved,
                &out.stats.instr_counts,
                &out.truth.thread_hashes,
            )
            .expect("record-only log replays exactly");
        }
    }

    /// Record-only CORD generates no more timestamp-bus traffic than the
    /// full mechanism.
    #[test]
    fn record_only_costs_no_more_than_full_cord() {
        let mut b = WorkloadBuilder::new("rec-cost", 4);
        let l = b.alloc_lock();
        let d = b.alloc_line_aligned(128);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            for i in 0..32u64 {
                tb.lock(l)
                    .update(d.word((t as u64 * 32 + i) % 128))
                    .unlock(l);
                tb.compute(40);
            }
        }
        let w = b.build();
        let run = |cfg: CordConfig| {
            let det = CordDetector::new(cfg, 4, 4);
            let m = Machine::new(
                MachineConfig::paper_4core(),
                &w,
                det,
                5,
                InjectionPlan::none(),
            );
            let (out, _) = m.run().expect("ok");
            out.stats.observer_addr_transactions
        };
        assert!(run(CordConfig::paper().record_only()) <= run(CordConfig::paper()));
    }
}
