//! The workspace-wide error type.
//!
//! Experiment code used to panic on any abnormal run (`.expect("run
//! deadlocked")`), which is fatal for injection sweeps: a single wedged
//! or aborted run killed the whole campaign. [`CordError`] makes every
//! failure mode a value the sweep runner can record and keep going
//! past.

use crate::replay::ReplayError;
use cord_sim::engine::SimError;
use std::fmt;

/// Any failure an experiment run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CordError {
    /// The simulated machine aborted (deadlock, livelock, or watchdog
    /// budget) — see [`SimError`] for the per-thread diagnostics.
    Sim(SimError),
    /// The order log failed to reproduce the recorded execution.
    Replay(ReplayError),
    /// The order log exceeded the configured size budget
    /// ([`CordConfig::max_log_entries`](crate::config::CordConfig::max_log_entries)).
    LogOverflow {
        /// Entries the recorder produced.
        entries: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// A run that needed captured resolved streams was executed on a
    /// machine without `capture_resolved`.
    MissingResolvedStreams,
    /// A detector failed internally (e.g. a panic caught at the sweep
    /// boundary); the payload is its message.
    Detector(String),
    /// A durable snapshot or checkpoint was recovered abnormally —
    /// the primary generation was corrupt and a previous generation
    /// (or nothing) was loaded instead. Carries the human-readable
    /// recovery description so daemons can surface it in `status`
    /// responses instead of burying it in stderr.
    SnapshotRecovery(String),
    /// The parallel sweep executor failed at the worker-pool level —
    /// a job was lost or a result slot was never filled. Distinct from
    /// a *job* panicking (which the sweep records as a per-run
    /// `Panicked` status and keeps going past); a pool failure means
    /// the executor itself misbehaved and the sweep cannot vouch for
    /// its results.
    Pool(String),
}

impl From<SimError> for CordError {
    fn from(e: SimError) -> Self {
        CordError::Sim(e)
    }
}

impl From<ReplayError> for CordError {
    fn from(e: ReplayError) -> Self {
        CordError::Replay(e)
    }
}

impl fmt::Display for CordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CordError::Sim(e) => write!(f, "simulation failed: {e}"),
            CordError::Replay(e) => write!(f, "replay verification failed: {e}"),
            CordError::LogOverflow { entries, limit } => write!(
                f,
                "order log overflow: {entries} entries exceed the {limit}-entry budget"
            ),
            CordError::MissingResolvedStreams => write!(
                f,
                "resolved access streams were not captured \
                 (enable MachineConfig::capture_resolved)"
            ),
            CordError::Detector(msg) => write!(f, "detector failure: {msg}"),
            CordError::SnapshotRecovery(msg) => write!(f, "snapshot recovery: {msg}"),
            CordError::Pool(msg) => write!(f, "worker pool failure: {msg}"),
        }
    }
}

impl std::error::Error for CordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CordError::Sim(e) => Some(e),
            CordError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl CordError {
    /// The wrapped [`SimError`], if this is a simulation abort.
    pub fn as_sim(&self) -> Option<&SimError> {
        match self {
            CordError::Sim(e) => Some(e),
            _ => None,
        }
    }

    /// Short machine-readable kind name, used in sweep failure records.
    pub fn kind(&self) -> &'static str {
        match self {
            CordError::Sim(e) => e.kind(),
            CordError::Replay(_) => "replay-mismatch",
            CordError::LogOverflow { .. } => "log-overflow",
            CordError::MissingResolvedStreams => "missing-resolved-streams",
            CordError::Detector(_) => "detector-failure",
            CordError::SnapshotRecovery(_) => "snapshot-recovery",
            CordError::Pool(_) => "pool-failure",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sim_errors() {
        let sim = SimError::Deadlock {
            cycle: 10,
            stuck_threads: vec![],
        };
        let e: CordError = sim.clone().into();
        assert_eq!(e.as_sim(), Some(&sim));
        assert_eq!(e.kind(), "deadlock");
        assert!(e.to_string().contains("deadlock at cycle 10"));
    }

    #[test]
    fn kinds_are_distinct() {
        let log = CordError::LogOverflow {
            entries: 10,
            limit: 5,
        };
        assert_eq!(log.kind(), "log-overflow");
        assert_eq!(
            CordError::MissingResolvedStreams.kind(),
            "missing-resolved-streams"
        );
        assert_eq!(CordError::Detector("x".into()).kind(), "detector-failure");
        assert!(log.to_string().contains("10"));
    }

    #[test]
    fn pool_failures_are_a_distinct_kind() {
        let e = CordError::Pool("slot 3 never filled".into());
        assert_eq!(e.kind(), "pool-failure");
        assert!(e.to_string().contains("worker pool failure"));
        assert!(e.to_string().contains("slot 3"));
    }
}
