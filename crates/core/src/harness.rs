//! Convenience harness: run a workload on the simulated machine with or
//! without CORD attached.

use crate::config::CordConfig;
use crate::detector::{CordDetector, CordStats, RaceReport};
use crate::error::CordError;
use crate::record::LogEntry;
use crate::replay::{replay_and_verify, ReplayReport};
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine, RunOutput, SimError};
use cord_sim::observer::NullObserver;
use cord_trace::program::Workload;

/// Everything one CORD run produces.
#[derive(Debug, Clone)]
pub struct CordOutcome {
    /// Data races reported.
    pub races: Vec<RaceReport>,
    /// The order log (already flushed).
    pub order_log: Vec<LogEntry>,
    /// Order-log size at the hardware 8-byte encoding.
    pub log_bytes: u64,
    /// Detector counters.
    pub cord_stats: CordStats,
    /// Simulator output (timing, traffic, ground truth).
    pub sim: RunOutput,
}

/// Runs workloads on a fixed machine configuration with a fixed seed.
///
/// # Examples
///
/// ```
/// use cord_core::harness::ExperimentHarness;
/// use cord_core::config::CordConfig;
/// use cord_sim::config::MachineConfig;
/// use cord_trace::builder::WorkloadBuilder;
///
/// let mut b = WorkloadBuilder::new("demo", 2);
/// let l = b.alloc_lock();
/// let d = b.alloc_words(1);
/// for t in 0..2 {
///     b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
/// }
/// let w = b.build();
///
/// let h = ExperimentHarness::new(MachineConfig::paper_4core());
/// let outcome = h.run_cord(&w, &CordConfig::paper())?;
/// assert!(outcome.races.is_empty()); // properly synchronized
/// assert!(outcome.log_bytes > 0);
/// # Ok::<(), cord_core::error::CordError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentHarness {
    machine: MachineConfig,
    seed: u64,
}

impl ExperimentHarness {
    /// A harness with the given machine configuration and seed 42.
    pub fn new(machine: MachineConfig) -> Self {
        ExperimentHarness { machine, seed: 42 }
    }

    /// Returns a copy with a different scheduling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Runs without any recording/DRD support (Figure 11's baseline).
    ///
    /// # Errors
    ///
    /// Returns [`CordError::Sim`] if the machine aborts (deadlock,
    /// livelock, or watchdog budget — reachable only under fault
    /// injection or a configured watchdog).
    pub fn run_baseline(&self, workload: &Workload) -> Result<RunOutput, CordError> {
        let m = Machine::new(
            self.machine.clone(),
            workload,
            NullObserver,
            self.seed,
            InjectionPlan::none(),
        );
        let (out, _) = m.run()?;
        Ok(out)
    }

    /// Runs with CORD attached, no fault injection.
    ///
    /// # Errors
    ///
    /// See [`ExperimentHarness::run_cord_injected`].
    pub fn run_cord(
        &self,
        workload: &Workload,
        cfg: &CordConfig,
    ) -> Result<CordOutcome, CordError> {
        self.run_cord_injected(workload, cfg, InjectionPlan::none())
    }

    /// Runs with CORD attached and a fault-injection plan (§3.4).
    ///
    /// # Errors
    ///
    /// Returns [`CordError::Sim`] if the machine aborts, or
    /// [`CordError::LogOverflow`] if the recorder exceeds
    /// `cfg.max_log_entries`.
    pub fn run_cord_injected(
        &self,
        workload: &Workload,
        cfg: &CordConfig,
        plan: InjectionPlan,
    ) -> Result<CordOutcome, CordError> {
        let det = CordDetector::new(cfg.clone(), workload.num_threads(), self.machine.cores);
        let m = Machine::new(self.machine.clone(), workload, det, self.seed, plan);
        let (sim, det) = m.run()?;
        let (races, recorder, cord_stats) = det.into_parts();
        if let Some(limit) = cfg.max_log_entries {
            let entries = recorder.entries().len() as u64;
            if entries > limit {
                return Err(CordError::LogOverflow { entries, limit });
            }
        }
        Ok(CordOutcome {
            races,
            log_bytes: recorder.bytes(),
            order_log: recorder.entries().to_vec(),
            cord_stats,
            sim,
        })
    }

    /// Records a run with resolved-stream capture and verifies that the
    /// order log replays it exactly (§3.3's replay validation).
    ///
    /// # Errors
    ///
    /// Returns [`CordError::Replay`] if the log fails to reproduce the
    /// recorded outcome, or [`CordError::Sim`] if the recording run
    /// aborts.
    pub fn verify_replay(
        &self,
        workload: &Workload,
        cfg: &CordConfig,
        plan: InjectionPlan,
    ) -> Result<ReplayReport, CordError> {
        let machine = self.machine.clone().with_resolved_capture();
        let det = CordDetector::new(cfg.clone(), workload.num_threads(), machine.cores);
        let m = Machine::new(machine, workload, det, self.seed, plan);
        let (sim, det) = m.run()?;
        let (_, recorder, _) = det.into_parts();
        let resolved = sim
            .truth
            .resolved
            .as_ref()
            .ok_or(CordError::MissingResolvedStreams)?;
        let report = replay_and_verify(
            recorder.entries(),
            resolved,
            &sim.stats.instr_counts,
            &sim.truth.thread_hashes,
        )?;
        Ok(report)
    }

    /// Relative execution time of CORD vs. the baseline (Figure 11's
    /// metric; 1.004 means 0.4% overhead).
    ///
    /// # Errors
    ///
    /// Returns the first [`CordError`] of the two underlying runs.
    pub fn overhead(&self, workload: &Workload, cfg: &CordConfig) -> Result<f64, CordError> {
        let base = self.run_baseline(workload)?;
        let cord = self.run_cord(workload, cfg)?;
        Ok(cord.sim.stats.cycles as f64 / base.stats.cycles as f64)
    }
}

/// Re-exported so harness users can match on deadlocks without importing
/// `cord-sim` directly.
pub type HarnessSimError = SimError;

// Compile-time Send/Sync audit: the parallel sweep executor builds
// harnesses, detectors, and outcomes on one thread and runs or collects
// them on pool workers. If a non-Send field ever sneaks into one of
// these types, this fails to compile rather than failing at the first
// parallel sweep.
#[allow(dead_code)]
fn _thread_safety_audit() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<ExperimentHarness>();
    sync::<ExperimentHarness>();
    send::<CordOutcome>();
    send::<crate::detector::CordDetector>();
    send::<Box<dyn crate::detector::Detector>>();
    send::<CordError>();
    sync::<CordError>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::builder::WorkloadBuilder;

    fn locked_counter_workload() -> Workload {
        let mut b = WorkloadBuilder::new("hc", 4);
        let l = b.alloc_lock();
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(64);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            for i in 0..8u64 {
                tb.lock(l)
                    .update(d.word((t as u64 * 8 + i) % 64))
                    .unlock(l)
                    .compute(100);
            }
            tb.barrier(bar);
        }
        b.build()
    }

    #[test]
    fn cord_run_produces_log_and_no_false_positives() {
        let h = ExperimentHarness::new(MachineConfig::paper_4core());
        let out = h
            .run_cord(&locked_counter_workload(), &CordConfig::paper())
            .expect("clean run completes");
        assert!(out.races.is_empty(), "false positives: {:?}", out.races);
        assert!(!out.order_log.is_empty());
        assert_eq!(out.log_bytes, out.order_log.len() as u64 * 8);
    }

    #[test]
    fn log_budget_overflow_is_reported() {
        let h = ExperimentHarness::new(MachineConfig::paper_4core());
        let w = locked_counter_workload();
        let cfg = CordConfig::paper().with_log_limit(1);
        let err = h.run_cord(&w, &cfg).expect_err("1-entry budget must blow");
        match err {
            CordError::LogOverflow { entries, limit } => {
                assert_eq!(limit, 1);
                assert!(entries > 1);
            }
            other => panic!("expected LogOverflow, got {other}"),
        }
        assert_eq!(err.kind(), "log-overflow");
        // A generous budget must not trip.
        let roomy = CordConfig::paper().with_log_limit(1 << 32);
        h.run_cord(&w, &roomy).expect("roomy budget completes");
    }

    #[test]
    fn replay_verifies_clean_run() {
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(7);
        let rep = h
            .verify_replay(
                &locked_counter_workload(),
                &CordConfig::paper(),
                InjectionPlan::none(),
            )
            .expect("replay must reproduce the recording");
        assert!(rep.segments > 0);
        assert!(rep.accesses > 0);
    }

    #[test]
    fn replay_verifies_injected_run() {
        // §3.3: "We performed numerous tests, with and without data race
        // injections, to verify that the entire execution can be
        // accurately replayed."
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(11);
        for n in 0..4 {
            h.verify_replay(
                &locked_counter_workload(),
                &CordConfig::paper(),
                InjectionPlan::remove_nth(n),
            )
            .unwrap_or_else(|e| panic!("injected replay {n} failed: {e}"));
        }
    }

    #[test]
    fn overhead_is_small() {
        let h = ExperimentHarness::new(MachineConfig::paper_4core());
        let ratio = h
            .overhead(&locked_counter_workload(), &CordConfig::paper())
            .expect("both runs complete");
        // CORD must not slow the machine by more than a few percent
        // (paper: 0.4% average, 3% worst case). On a workload this tiny
        // scheduling noise (lock handoff order shifting under the extra
        // address-bus traffic) dominates, so the band is generous; the
        // Figure 11 bench uses full-size kernels.
        assert!((0.85..1.15).contains(&ratio), "overhead ratio {ratio}");
    }
}
