//! Per-cache-line access histories: the gray state of Figure 2.
//!
//! Each cache line carries up to `ts_per_line` history entries (two in
//! the shipping CORD), each holding one timestamp and two 16-bit
//! per-word bit vectors recording which words were read/written *at that
//! timestamp* (§2.3). Keeping the previous timestamp alongside the newest
//! one preserves the line's history across a timestamp change — with a
//! single entry, one access at a new logical time would erase everything
//! (Figure 2's problem).
//!
//! The structure is generic over the stamp type so CORD (scalar
//! [`ScalarTime`](cord_clocks::scalar::ScalarTime)) and the comparison
//! configurations of §4.3 (vector clocks, and the *Ideal* oracle with
//! unlimited entries) share one implementation.

use cord_trace::types::WORD_BYTES;

/// Words per line as `usize` (16 for 64-byte lines).
pub const WORDS_PER_LINE: usize = (cord_trace::types::LINE_BYTES / WORD_BYTES) as usize;

/// One history entry: a timestamp and the per-word read/write bits that
/// say which words were accessed at that timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistEntry<S> {
    /// The logical timestamp shared by all accesses recorded in this
    /// entry.
    pub stamp: S,
    /// Bit `w` set ⇔ word `w` was read at `stamp`.
    pub read_bits: u16,
    /// Bit `w` set ⇔ word `w` was written at `stamp`.
    pub write_bits: u16,
}

impl<S> HistEntry<S> {
    /// An entry with no accesses recorded yet.
    pub fn new(stamp: S) -> Self {
        HistEntry {
            stamp,
            read_bits: 0,
            write_bits: 0,
        }
    }

    /// Whether word `w` was read at this entry's timestamp.
    #[inline]
    pub fn read(&self, w: usize) -> bool {
        debug_assert!(w < WORDS_PER_LINE);
        self.read_bits & (1 << w) != 0
    }

    /// Whether word `w` was written at this entry's timestamp.
    #[inline]
    pub fn written(&self, w: usize) -> bool {
        debug_assert!(w < WORDS_PER_LINE);
        self.write_bits & (1 << w) != 0
    }

    /// Records an access to word `w`.
    #[inline]
    pub fn set(&mut self, w: usize, is_write: bool) {
        debug_assert!(w < WORDS_PER_LINE);
        if is_write {
            self.write_bits |= 1 << w;
        } else {
            self.read_bits |= 1 << w;
        }
    }

    /// Whether this entry *conflicts* with an access of the given mode to
    /// word `w`: a write conflicts with any recorded access, a read only
    /// with recorded writes (§2.1: at least one access in a conflict must
    /// be a write).
    #[inline]
    pub fn conflicts_with(&self, w: usize, incoming_is_write: bool) -> bool {
        if incoming_is_write {
            self.read(w) || self.written(w)
        } else {
            self.written(w)
        }
    }

    /// `true` if any word has its read bit set.
    #[inline]
    pub fn any_read(&self) -> bool {
        self.read_bits != 0
    }

    /// `true` if any word has its write bit set.
    #[inline]
    pub fn any_written(&self) -> bool {
        self.write_bits != 0
    }
}

/// The CORD state attached to one resident cache line: history entries
/// in push order (oldest first) plus the two check-filter bits of
/// §2.7.2.
///
/// Entries are stored oldest-first so a push is an O(1) append — the
/// unlimited-entry configurations (*Ideal*, VC-inf) would otherwise pay
/// a front-insert shift per access. Every conflict/filter consumer is
/// order-insensitive (any/all/max over entries), so the physical order
/// is an implementation detail; the one order-sensitive operation, the
/// displacement tie-break in [`LineHistory::push_stamp_displace_min`],
/// explicitly preserves the historical "newest tied minimum" choice.
///
/// Histories are designed to live in an arena slot
/// ([`ShadowSpace`](crate::shadow::ShadowSpace)): [`LineHistory::reset`]
/// and [`LineHistory::drain_into`] return a history to its
/// freshly-filled state while keeping the entry buffer's allocation, so
/// a line fill/evict cycle allocates nothing in steady state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineHistory<S> {
    /// Oldest-first (push-order) entries.
    entries: Vec<HistEntry<S>>,
    /// Line-level permission: the whole line may be *read* without
    /// race-check broadcasts.
    pub read_filter: bool,
    /// Line-level permission: the whole line may be *written* without
    /// race-check broadcasts.
    pub write_filter: bool,
    /// Largest stamp of any *write-carrying* entry displaced from this
    /// history while the line stayed resident. A synchronization read
    /// must take its +D jump over the variable's latest write timestamp
    /// (§2.6) even when that write's entry has been displaced by newer
    /// spin-read stamps; this bound preserves it.
    pub shed_write_stamp: Option<S>,
}

impl<S> Default for LineHistory<S> {
    fn default() -> Self {
        LineHistory {
            entries: Vec::new(),
            read_filter: false,
            write_filter: false,
            shed_write_stamp: None,
        }
    }
}

impl<S> LineHistory<S> {
    /// An empty history (a freshly filled line).
    pub fn new() -> Self {
        Self::default()
    }

    /// Entries in push order (oldest first).
    pub fn entries(&self) -> &[HistEntry<S>] {
        &self.entries
    }

    /// Mutable entries in push order (oldest first).
    pub fn entries_mut(&mut self) -> &mut [HistEntry<S>] {
        &mut self.entries
    }

    /// The newest entry, if any.
    pub fn newest(&self) -> Option<&HistEntry<S>> {
        self.entries.last()
    }

    /// Mutable access to the newest entry.
    pub fn newest_mut(&mut self) -> Option<&mut HistEntry<S>> {
        self.entries.last_mut()
    }

    /// Pushes a new newest entry with `stamp`; if the history already
    /// holds `max_entries`, the *oldest* (least recently pushed) entry
    /// is displaced and returned (CORD folds it into the main-memory
    /// timestamps, §2.5).
    pub fn push_stamp(&mut self, stamp: S, max_entries: usize) -> Option<HistEntry<S>> {
        debug_assert!(max_entries >= 1);
        let displaced = if self.entries.len() >= max_entries {
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push(HistEntry::new(stamp));
        displaced
    }

    /// Like [`LineHistory::push_stamp`], but displaces the entry with
    /// the *smallest* stamp, per §2.7.2: "the lower of the two
    /// timestamps and its access bits are removed". With one thread per
    /// core the two rules agree (stamps grow monotonically); they differ
    /// after thread migration, and the minimum rule is what keeps the
    /// line's maximum stamp an upper bound for every stamp ever
    /// displaced from it — the invariant the ordering argument in
    /// DESIGN.md relies on.
    pub fn push_stamp_displace_min(&mut self, stamp: S, max_entries: usize) -> Option<HistEntry<S>>
    where
        S: Ord,
    {
        debug_assert!(max_entries >= 1);
        let displaced = if self.entries.len() >= max_entries {
            // Tie-break: among equal minimum stamps, displace the
            // *newest* — the historical behaviour of a first-match
            // `min_by` over the old newest-first layout. In push order
            // that is the last tied minimum, hence `<=`.
            let mut idx = 0;
            for i in 1..self.entries.len() {
                if self.entries[i].stamp <= self.entries[idx].stamp {
                    idx = i;
                }
            }
            Some(self.entries.remove(idx))
        } else {
            None
        };
        self.entries.push(HistEntry::new(stamp));
        displaced
    }

    /// The largest stamp in the history, if any.
    pub fn max_stamp(&self) -> Option<&S>
    where
        S: Ord,
    {
        self.entries.iter().map(|e| &e.stamp).max()
    }

    /// Moves every entry matching `pred` into `out`, keeping the
    /// survivors in their original push order with their access bits
    /// intact. Unlike [`LineHistory::drain_into`], the check filters and
    /// shed-write bound are left untouched — the line stays resident
    /// (this is the walker's eviction primitive, not a line removal).
    /// Taken entries are appended to `out` in push order (oldest first).
    pub fn take_entries_into<F>(&mut self, mut pred: F, out: &mut Vec<HistEntry<S>>)
    where
        F: FnMut(&HistEntry<S>) -> bool,
    {
        out.extend(self.entries.extract_if(.., |e| pred(e)));
    }

    /// Removes and returns every entry matching `pred` (see
    /// [`LineHistory::take_entries_into`], which cold callers with a
    /// reusable scratch buffer should prefer).
    pub fn take_entries_where<F>(&mut self, pred: F) -> Vec<HistEntry<S>>
    where
        F: FnMut(&HistEntry<S>) -> bool,
    {
        let mut taken = Vec::new();
        self.take_entries_into(pred, &mut taken);
        taken
    }

    /// Drains all entries into `out` (line leaving the cache), appending
    /// them in push order (oldest first), and resets the filters and
    /// shed-write bound. The entry buffer's allocation is retained, so a
    /// history parked in an arena slot costs nothing to refill.
    pub fn drain_into(&mut self, out: &mut Vec<HistEntry<S>>) {
        self.read_filter = false;
        self.write_filter = false;
        self.shed_write_stamp = None;
        out.append(&mut self.entries);
    }

    /// Drains all entries (line leaving the cache). Hot callers should
    /// prefer [`LineHistory::drain_into`] with a reusable scratch buffer.
    pub fn drain(&mut self) -> Vec<HistEntry<S>> {
        let mut out = Vec::with_capacity(self.entries.len());
        self.drain_into(&mut out);
        out
    }

    /// Returns the history to its freshly-filled state — no entries, no
    /// filters, no shed-write bound — retaining the entry buffer's
    /// allocation. Called on line fill so a parked arena slot is reused
    /// without reallocating.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.read_filter = false;
        self.write_filter = false;
        self.shed_write_stamp = None;
    }

    /// Records that a write-carrying entry with `stamp` was displaced
    /// from this (still-resident) line.
    pub fn note_shed_write(&mut self, stamp: S)
    where
        S: Ord,
    {
        self.shed_write_stamp = Some(match self.shed_write_stamp.take() {
            Some(old) => old.max(stamp),
            None => stamp,
        });
    }

    /// Clears both check-filter bits (remote activity observed on the
    /// line).
    pub fn clear_filters(&mut self) {
        self.read_filter = false;
        self.write_filter = false;
    }

    /// Whether the filter for the given access mode is set.
    #[inline]
    pub fn filter_allows(&self, is_write: bool) -> bool {
        if is_write {
            self.write_filter
        } else {
            self.read_filter
        }
    }

    /// Grants the filter for the given mode.
    pub fn grant_filter(&mut self, is_write: bool) {
        if is_write {
            self.write_filter = true;
        } else {
            self.read_filter = true;
        }
    }

    /// `true` if any entry records a conflict with an access of the
    /// given mode to word `w`.
    pub fn any_conflict(&self, w: usize, incoming_is_write: bool) -> bool {
        self.entries
            .iter()
            .any(|e| e.conflicts_with(w, incoming_is_write))
    }

    /// `true` if any entry records any access at all (used for
    /// line-granular filter grants).
    pub fn any_access(&self) -> bool {
        self.entries.iter().any(|e| e.any_read() || e.any_written())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_clocks::scalar::ScalarTime;

    fn ts(n: u64) -> ScalarTime {
        ScalarTime::new(n)
    }

    #[test]
    fn bits_record_per_word_modes() {
        let mut e = HistEntry::new(ts(5));
        e.set(0, false);
        e.set(3, true);
        assert!(e.read(0) && !e.written(0));
        assert!(e.written(3) && !e.read(3));
        assert!(!e.read(1) && !e.written(1));
        assert!(e.any_read() && e.any_written());
    }

    #[test]
    fn conflict_rules_require_a_write() {
        let mut e = HistEntry::new(ts(1));
        e.set(2, false); // read of word 2
        assert!(!e.conflicts_with(2, false)); // read-read: no conflict
        assert!(e.conflicts_with(2, true)); // write-after-read: conflict
        e.set(4, true); // write of word 4
        assert!(e.conflicts_with(4, false)); // read-after-write
        assert!(e.conflicts_with(4, true)); // write-after-write
        assert!(!e.conflicts_with(5, true)); // untouched word
    }

    #[test]
    fn push_stamp_keeps_two_and_displaces_oldest() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        assert!(h.push_stamp(ts(10), 2).is_none());
        h.newest_mut().unwrap().set(0, true);
        assert!(h.push_stamp(ts(14), 2).is_none());
        h.newest_mut().unwrap().set(1, false);
        // Third stamp displaces ts(10) with its bits intact.
        let displaced = h.push_stamp(ts(17), 2).expect("displacement");
        assert_eq!(displaced.stamp, ts(10));
        assert!(displaced.written(0));
        assert_eq!(h.entries().len(), 2);
        assert_eq!(h.newest().unwrap().stamp, ts(17));
        assert_eq!(h.entries()[0].stamp, ts(14));
    }

    #[test]
    fn displace_min_evicts_newest_tied_minimum() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        h.push_stamp(ts(5), 3);
        h.newest_mut().unwrap().set(0, false);
        h.push_stamp(ts(9), 3);
        h.push_stamp(ts(5), 3);
        h.newest_mut().unwrap().set(1, false);
        // Two entries tie at ts(5); the newest of them (word-1 bits) must
        // be the one displaced, matching the historical tie-break.
        let displaced = h.push_stamp_displace_min(ts(12), 3).expect("displacement");
        assert_eq!(displaced.stamp, ts(5));
        assert!(displaced.read(1) && !displaced.read(0));
        assert!(h.entries().iter().any(|e| e.stamp == ts(5) && e.read(0)));
    }

    #[test]
    fn figure2_single_entry_erases_history() {
        // With one entry per line (Figure 2), a timestamp change loses
        // the old access bits entirely.
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        h.push_stamp(ts(14), 1);
        for w in 0..WORDS_PER_LINE {
            h.newest_mut().unwrap().set(w, true);
        }
        let displaced = h.push_stamp(ts(17), 1).unwrap();
        assert_eq!(displaced.write_bits, u16::MAX);
        // The new entry knows nothing.
        assert!(!h.any_conflict(0, false));
    }

    #[test]
    fn filters_grant_and_clear() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        assert!(!h.filter_allows(false) && !h.filter_allows(true));
        h.grant_filter(false);
        assert!(h.filter_allows(false) && !h.filter_allows(true));
        h.grant_filter(true);
        h.clear_filters();
        assert!(!h.filter_allows(false) && !h.filter_allows(true));
    }

    #[test]
    fn drain_empties_and_resets() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        h.push_stamp(ts(3), 2);
        h.grant_filter(true);
        let drained = h.drain();
        assert_eq!(drained.len(), 1);
        assert!(h.entries().is_empty());
        assert!(!h.filter_allows(true));
    }

    #[test]
    fn unlimited_entries_for_ideal() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        for i in 0..100 {
            assert!(h.push_stamp(ts(i), usize::MAX).is_none());
        }
        assert_eq!(h.entries().len(), 100);
        assert_eq!(h.newest().unwrap().stamp, ts(99));
    }

    #[test]
    fn take_entries_where_preserves_order_bits_and_filters() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        for (i, n) in [2u64, 9, 4, 11].iter().enumerate() {
            h.push_stamp(ts(*n), usize::MAX);
            h.newest_mut().unwrap().set(i, i % 2 == 0);
        }
        h.grant_filter(true);
        h.note_shed_write(ts(7));
        // Entries are push-ordered (oldest first): stamps [2, 9, 4, 11].
        let taken = h.take_entries_where(|e| e.stamp.ticks() < 5);
        assert_eq!(
            taken.iter().map(|e| e.stamp).collect::<Vec<_>>(),
            vec![ts(2), ts(4)]
        );
        // Survivors keep push order and their bits.
        assert_eq!(
            h.entries().iter().map(|e| e.stamp).collect::<Vec<_>>(),
            vec![ts(9), ts(11)]
        );
        assert_eq!(h.newest().unwrap().stamp, ts(11));
        assert!(h.entries()[0].read(1));
        // Resident-line metadata survives, unlike drain().
        assert!(h.filter_allows(true));
        assert_eq!(h.shed_write_stamp, Some(ts(7)));
    }

    #[test]
    fn any_conflict_scans_all_entries() {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        h.push_stamp(ts(1), 2);
        h.newest_mut().unwrap().set(7, true);
        h.push_stamp(ts(2), 2);
        // Write recorded in the *older* entry still conflicts.
        assert!(h.any_conflict(7, false));
        assert!(h.any_access());
    }
}
