//! The CORD mechanism (Prvulovic, HPCA 2006): cost-effective
//! order-recording and data race detection with scalar clocks.
//!
//! This crate implements the paper's contribution on top of the
//! `cord-sim` substrate:
//!
//! * [`history`] — per-cache-line access histories: two timestamps per
//!   line with per-word read/write bits and check-filter bits (§2.3,
//!   §2.7.2).
//! * [`memts`] — the whole-memory read/write timestamp pair that keeps
//!   order recording correct across displacements (§2.5).
//! * [`detector`] — the CORD detector: clock comparisons, race-check
//!   broadcasts, the D-window DRD rule, migration handling, and the
//!   cache walker (§2.4, §2.6, §2.7).
//! * [`shadow`] — dense shadow-state storage ([`ShadowSpace`] /
//!   [`LineTable`]) keyed by the interleaved line index, replacing
//!   per-access `HashMap` probes with vector indexing.
//! * [`record`] — the 8-bytes-per-entry order log (§2.7.1).
//! * [`replay`] — deterministic replay from the log with outcome
//!   verification (§3.3).
//! * [`area`] — the analytic 19%-vs-38%-vs-200% state-overhead model
//!   (§2.3).
//! * [`sink`] — detectors as event-stream sinks ([`DetectorSink`]):
//!   the ingestion surface shared by inline simulation, capture replay,
//!   and the `cord-serve` streaming daemon.
//! * [`error`] — the workspace-wide [`CordError`] failure taxonomy.
//! * [`harness`] — one-call experiment runs.
//!
//! # Example
//!
//! ```
//! use cord_core::{CordConfig, ExperimentHarness};
//! use cord_sim::config::MachineConfig;
//! use cord_trace::builder::WorkloadBuilder;
//!
//! let mut b = WorkloadBuilder::new("quick", 2);
//! let flag = b.alloc_flag();
//! let data = b.alloc_words(1);
//! b.thread_mut(0).write(data.word(0)).flag_set(flag);
//! b.thread_mut(1).flag_wait(flag).read(data.word(0));
//! let w = b.build();
//!
//! let h = ExperimentHarness::new(MachineConfig::paper_4core());
//! let out = h.run_cord(&w, &CordConfig::paper())?;
//! assert!(out.races.is_empty()); // flag-synchronized: no data race
//! # Ok::<(), cord_core::CordError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod area;
pub mod config;
pub mod detector;
pub mod error;
pub mod harness;
pub mod history;
pub mod logfmt;
pub mod memts;
pub mod record;
pub mod replay;
pub mod shadow;
pub mod sink;

pub use config::CordConfig;
pub use detector::{CordDetector, CordStats, Detector, RaceReport};
pub use error::CordError;
pub use harness::{CordOutcome, ExperimentHarness};
pub use history::{HistEntry, LineHistory};
pub use logfmt::{decode as decode_log, encode as encode_log, LogDecodeError};
pub use memts::MemTimestamps;
pub use record::{LogEntry, OrderRecorder, LOG_ENTRY_BYTES};
pub use replay::{
    replay_and_verify, replay_parallelism, ReplayError, ReplayParallelism, ReplayReport,
};
pub use shadow::{LineTable, ShadowSpace};
pub use sink::{
    apply_stream_event, CaptureObserver, DetectorSink, LatencyObserver, ObsCtx, SinkObserver,
    SinkReport,
};

/// One-stop imports for experiment code.
///
/// Everything a harness caller, example, or figure generator needs —
/// the CORD configuration and detector, the error taxonomy, the
/// simulated machine and its configuration, and the workload builder —
/// without reaching through three crates of ad-hoc paths:
///
/// ```
/// use cord_core::prelude::*;
///
/// let mut b = WorkloadBuilder::new("demo", 2);
/// let l = b.alloc_lock();
/// let d = b.alloc_words(1);
/// for t in 0..2 {
///     b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
/// }
/// let h = ExperimentHarness::new(MachineConfig::paper_4core());
/// let out = h.run_cord(&b.build(), &CordConfig::paper())?;
/// assert!(out.races.is_empty());
/// # Ok::<(), CordError>(())
/// ```
pub mod prelude {
    pub use crate::config::CordConfig;
    pub use crate::detector::{CordDetector, CordStats, Detector, RaceReport};
    pub use crate::error::CordError;
    pub use crate::harness::{CordOutcome, ExperimentHarness};
    pub use crate::replay::{replay_and_verify, ReplayError, ReplayReport};
    pub use crate::sink::{CaptureObserver, DetectorSink, ObsCtx, SinkObserver, SinkReport};
    pub use cord_sim::config::{MachineConfig, Watchdog};
    pub use cord_sim::engine::{InjectionPlan, Machine, RunOutput, SimError};
    pub use cord_sim::observer::{MemoryObserver, NullObserver};
    pub use cord_trace::builder::WorkloadBuilder;
    pub use cord_trace::program::Workload;
}
