//! Hardware encoding of the order log (§2.7.1).
//!
//! "We use 16-bit thread IDs and clock values and 32-bit instruction
//! counts, for a total of eight bytes per log entry." This module
//! implements that exact wire format. Clock values are stored truncated
//! to 16 bits; decoding reconstructs the unbounded value by tracking the
//! per-thread sliding window (clocks per thread are non-decreasing and
//! the §2.7.5 walker guarantees successive values stay within the
//! window), so a round trip through the hardware format is lossless for
//! any log a correct CORD run produces.

use crate::record::{LogEntry, LOG_ENTRY_BYTES};
use cord_clocks::scalar::ScalarTime;
use cord_clocks::window16::{self, WINDOW};
use cord_trace::types::ThreadId;
use std::fmt;

/// Errors while decoding a hardware-format log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogDecodeError {
    /// Byte length is not a multiple of eight.
    TruncatedEntry {
        /// The offending length.
        len: usize,
    },
    /// An entry's clock stepped backwards or jumped past the sliding
    /// window relative to the thread's previous entry — impossible in a
    /// log produced by a correct run.
    WindowViolation {
        /// Index of the offending entry.
        index: usize,
        /// The thread whose clock misbehaved.
        thread: ThreadId,
    },
}

impl fmt::Display for LogDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDecodeError::TruncatedEntry { len } => {
                write!(f, "log length {len} is not a multiple of {LOG_ENTRY_BYTES}")
            }
            LogDecodeError::WindowViolation { index, thread } => {
                write!(
                    f,
                    "entry {index}: clock of {thread} outside the sliding window"
                )
            }
        }
    }
}

impl std::error::Error for LogDecodeError {}

/// Encodes entries into the paper's 8-byte format: little-endian
/// `[clock16][thread16][instructions32]`.
///
/// # Panics
///
/// Panics if an entry's instruction count exceeds the hardware's 32-bit
/// field (the recorder's overflow splitting prevents this).
pub fn encode(entries: &[LogEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * LOG_ENTRY_BYTES as usize);
    for e in entries {
        let instr = u32::try_from(e.instructions)
            .expect("recorder splits segments to fit 32-bit instruction counts");
        out.extend_from_slice(&window16::truncate(e.clock.ticks()).to_le_bytes());
        out.extend_from_slice(&e.thread.0.to_le_bytes());
        out.extend_from_slice(&instr.to_le_bytes());
    }
    out
}

/// Decodes a hardware-format log for `num_threads` threads, widening the
/// 16-bit clocks back to unbounded values via per-thread window
/// tracking.
///
/// # Errors
///
/// Returns [`LogDecodeError`] on a malformed length or a per-thread
/// clock sequence no correct run could produce.
pub fn decode(bytes: &[u8], num_threads: usize) -> Result<Vec<LogEntry>, LogDecodeError> {
    if !bytes.len().is_multiple_of(LOG_ENTRY_BYTES as usize) {
        return Err(LogDecodeError::TruncatedEntry { len: bytes.len() });
    }
    let mut last: Vec<u64> = vec![0; num_threads];
    let mut out = Vec::with_capacity(bytes.len() / LOG_ENTRY_BYTES as usize);
    for (index, chunk) in bytes.chunks_exact(LOG_ENTRY_BYTES as usize).enumerate() {
        let clock16 = u16::from_le_bytes([chunk[0], chunk[1]]);
        let thread = ThreadId(u16::from_le_bytes([chunk[2], chunk[3]]));
        let instructions = u64::from(u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]));
        let t = thread.index();
        if t >= num_threads {
            return Err(LogDecodeError::WindowViolation { index, thread });
        }
        // Widen: the clock advanced by the windowed distance from the
        // thread's previous value (possibly zero).
        let prev = last[t];
        let prev16 = window16::truncate(prev);
        if !window16::wrapped_le(prev16, clock16) {
            return Err(LogDecodeError::WindowViolation { index, thread });
        }
        let delta = u64::from(window16::wrapped_distance(prev16, clock16));
        debug_assert!(delta <= u64::from(WINDOW));
        let clock = prev + delta;
        last[t] = clock;
        out.push(LogEntry {
            clock: ScalarTime::new(clock),
            thread,
            instructions,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(clock: u64, thread: u16, instructions: u64) -> LogEntry {
        LogEntry {
            clock: ScalarTime::new(clock),
            thread: ThreadId(thread),
            instructions,
        }
    }

    #[test]
    fn roundtrip_simple_log() {
        let log = vec![
            entry(1, 0, 100),
            entry(1, 1, 50),
            entry(18, 1, 3),
            entry(2, 0, 7),
            entry(19, 1, 0),
        ];
        let bytes = encode(&log);
        assert_eq!(bytes.len(), log.len() * 8);
        let back = decode(&bytes, 2).expect("decodes");
        assert_eq!(back, log);
    }

    #[test]
    fn roundtrip_across_16bit_wrap() {
        // Per-thread clocks crossing the 2^16 boundary survive, as long
        // as successive per-thread steps stay within the window.
        // Steps of 30k stay inside the window while the absolute clock
        // crosses the 2^16 boundary twice.
        let log = vec![
            entry(1_000, 0, 1),
            entry(31_000, 0, 2),
            entry(61_000, 0, 3),
            entry(91_000, 0, 4),
            entry(121_000, 0, 5),
            entry(151_000, 0, 6),
        ];
        let back = decode(&encode(&log), 1).expect("decodes");
        assert_eq!(back, log);

        // A per-thread step in the "backwards half" of the 16-bit circle
        // (more than WINDOW, less than 2^16) is detectably impossible.
        let bad = vec![entry(0, 0, 1), entry(40_000, 0, 2)];
        let err = decode(&encode(&bad), 1).unwrap_err();
        assert!(matches!(
            err,
            LogDecodeError::WindowViolation { index: 1, .. }
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode(&[entry(1, 0, 1)]);
        let err = decode(&bytes[..5], 1).unwrap_err();
        assert_eq!(err, LogDecodeError::TruncatedEntry { len: 5 });
    }

    #[test]
    fn out_of_range_thread_rejected() {
        let bytes = encode(&[entry(1, 7, 1)]);
        assert!(matches!(
            decode(&bytes, 2),
            Err(LogDecodeError::WindowViolation { .. })
        ));
    }

    #[test]
    fn real_recorded_log_roundtrips() {
        use crate::{CordConfig, ExperimentHarness};
        use cord_sim::config::MachineConfig;
        use cord_trace::builder::WorkloadBuilder;

        let mut b = WorkloadBuilder::new("codec", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(4);
        for t in 0..2 {
            for i in 0..4 {
                b.thread_mut(t)
                    .lock(l)
                    .update(d.word(i))
                    .unlock(l)
                    .compute(30);
            }
        }
        let w = b.build();
        let h = ExperimentHarness::new(MachineConfig::paper_4core());
        let out = h.run_cord(&w, &CordConfig::paper()).expect("run completes");
        let bytes = encode(&out.order_log);
        assert_eq!(bytes.len() as u64, out.log_bytes);
        let back = decode(&bytes, 2).expect("hardware log decodes");
        assert_eq!(back, out.order_log);
    }

    proptest! {
        /// Any log whose per-thread clocks are non-decreasing with
        /// window-bounded steps round-trips exactly.
        #[test]
        fn roundtrip_windowed_logs(
            steps in proptest::collection::vec(
                (0u16..4, 0u64..u64::from(WINDOW), 0u64..10_000),
                1..64,
            )
        ) {
            let mut clocks = [0u64; 4];
            let log: Vec<LogEntry> = steps
                .into_iter()
                .map(|(t, step, instr)| {
                    clocks[t as usize] += step;
                    entry(clocks[t as usize], t, instr)
                })
                .collect();
            let back = decode(&encode(&log), 4).expect("decodes");
            prop_assert_eq!(back, log);
        }
    }
}
