//! Main-memory timestamps (§2.5).
//!
//! CORD keeps exactly **one read and one write timestamp for the entire
//! main memory**: when a line's history entry is displaced from a cache,
//! its timestamp folds into the memory read timestamp (if any word's read
//! bit was set) and/or the memory write timestamp (if any write bit was
//! set), taking the maximum. Memory becomes "a very large block that
//! shares a single timestamp, which allows correct order-recording":
//! any later fetch from memory compares against these timestamps and can
//! never miss an ordering through a displaced line, at the cost of
//! extreme conservatism (Figure 7) — which is why detections that used a
//! memory timestamp are not *reported* as data races.
//!
//! In the snooping machine every cache keeps a replica and broadcasts a
//! change; we model the replicas as one coherent pair and account the
//! broadcast as an address-bus transaction.

use crate::history::HistEntry;
use cord_clocks::scalar::ScalarTime;

/// The pair of whole-memory timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTimestamps {
    read: ScalarTime,
    write: ScalarTime,
}

impl MemTimestamps {
    /// Both timestamps at zero (nothing displaced yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The memory read timestamp.
    #[inline]
    pub fn read(&self) -> ScalarTime {
        self.read
    }

    /// The memory write timestamp.
    #[inline]
    pub fn write(&self) -> ScalarTime {
        self.write
    }

    /// Folds a displaced history entry in; returns `true` if either
    /// timestamp changed (a broadcast is needed).
    pub fn fold(&mut self, entry: &HistEntry<ScalarTime>) -> bool {
        let mut changed = false;
        if entry.any_read() && entry.stamp > self.read {
            self.read = entry.stamp;
            changed = true;
        }
        if entry.any_written() && entry.stamp > self.write {
            self.write = entry.stamp;
            changed = true;
        }
        changed
    }

    /// The timestamps a memory response carries for an access of the
    /// given mode: a read conflicts only with past writes; a write
    /// conflicts with past reads *and* writes, so it must order after
    /// the larger of the two.
    pub fn relevant_for(&self, incoming_is_write: bool) -> ScalarTime {
        if incoming_is_write {
            self.read.max(self.write)
        } else {
            self.write
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stamp: u64, read: bool, write: bool) -> HistEntry<ScalarTime> {
        let mut e = HistEntry::new(ScalarTime::new(stamp));
        if read {
            e.set(0, false);
        }
        if write {
            e.set(1, true);
        }
        e
    }

    #[test]
    fn fold_takes_maximum_per_mode() {
        let mut m = MemTimestamps::new();
        assert!(m.fold(&entry(5, true, false)));
        assert_eq!(m.read(), ScalarTime::new(5));
        assert_eq!(m.write(), ScalarTime::ZERO);
        assert!(m.fold(&entry(3, false, true)));
        assert_eq!(m.write(), ScalarTime::new(3));
        // Older stamps change nothing.
        assert!(!m.fold(&entry(2, true, true)));
        assert_eq!(m.read(), ScalarTime::new(5));
        assert_eq!(m.write(), ScalarTime::new(3));
    }

    #[test]
    fn entry_with_no_bits_folds_to_nothing() {
        let mut m = MemTimestamps::new();
        let e = HistEntry::new(ScalarTime::new(100));
        assert!(!m.fold(&e));
        assert_eq!(m, MemTimestamps::new());
    }

    #[test]
    fn relevant_timestamp_per_mode() {
        let mut m = MemTimestamps::new();
        m.fold(&entry(7, true, false));
        m.fold(&entry(4, false, true));
        // A read orders against past writes only.
        assert_eq!(m.relevant_for(false), ScalarTime::new(4));
        // A write orders against both; the read ts dominates here.
        assert_eq!(m.relevant_for(true), ScalarTime::new(7));
    }
}
