//! The order-recording log (§2.7.1).
//!
//! "When a thread's clock changes, it appends to the log an entry that
//! contains the previous clock value, the thread ID and the number of
//! instructions executed with that clock value. We use 16-bit thread IDs
//! and clock values and 32-bit instruction counts, for a total of eight
//! bytes per log entry."
//!
//! The recorder tracks, per thread, the instruction index at which the
//! current clock value took effect; every clock change (race-outcome
//! update, sync-read `+D` jump, post-sync-write increment, migration
//! bump) closes the current segment. A final flush at run end closes
//! each thread's last segment so the log covers the entire execution.
//! Segments longer than `u32::MAX` instructions are split by forced
//! clock increments, exactly as the paper prevents instruction-count
//! overflow.

use cord_clocks::scalar::ScalarTime;
use cord_trace::types::ThreadId;

/// Hardware size of one log entry in bytes (16-bit clock + 16-bit thread
/// ID + 32-bit instruction count).
pub const LOG_ENTRY_BYTES: u64 = 8;

/// One log entry: `thread` executed `instructions` instructions while its
/// clock held `clock`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// The clock value of this execution segment.
    pub clock: ScalarTime,
    /// The thread the segment belongs to.
    pub thread: ThreadId,
    /// Instructions retired during the segment (fits the hardware's
    /// 32-bit field by construction).
    pub instructions: u64,
}

#[derive(Debug, Clone, Copy)]
struct ThreadRec {
    segment_start: u64,
    clock: ScalarTime,
}

/// Accumulates the execution-order log during a run.
#[derive(Debug, Clone)]
pub struct OrderRecorder {
    threads: Vec<ThreadRec>,
    entries: Vec<LogEntry>,
    forced_increments: u64,
    flushed: bool,
}

impl OrderRecorder {
    /// A recorder for `num_threads` threads, all starting at clock 0 and
    /// instruction 0.
    pub fn new(num_threads: usize) -> Self {
        Self::starting_at(num_threads, ScalarTime::ZERO)
    }

    /// A recorder whose threads start at `initial` (the CORD detector
    /// starts clocks at 1 so untouched state — timestamp 0 — never
    /// compares as a race).
    pub fn starting_at(num_threads: usize, initial: ScalarTime) -> Self {
        OrderRecorder {
            threads: vec![
                ThreadRec {
                    segment_start: 0,
                    clock: initial,
                };
                num_threads
            ],
            entries: Vec::new(),
            forced_increments: 0,
            flushed: false,
        }
    }

    /// Records that `thread`'s clock changes to `new_clock` effective at
    /// instruction index `at_instr` (the old clock covered instructions
    /// `[segment_start, at_instr)`).
    ///
    /// # Panics
    ///
    /// Panics if the clock does not advance or `at_instr` precedes the
    /// current segment start.
    pub fn record_change(&mut self, thread: ThreadId, new_clock: ScalarTime, at_instr: u64) {
        let rec = &mut self.threads[thread.index()];
        assert!(
            new_clock > rec.clock,
            "{thread} clock must advance ({} -> {})",
            rec.clock,
            new_clock
        );
        assert!(
            at_instr >= rec.segment_start,
            "{thread} segment boundary {at_instr} before start {}",
            rec.segment_start
        );
        let mut remaining = at_instr - rec.segment_start;
        let mut clock = rec.clock;
        // Split overlong segments with forced increments (§2.7.1).
        while remaining > u64::from(u32::MAX) {
            self.entries.push(LogEntry {
                clock,
                thread,
                instructions: u64::from(u32::MAX),
            });
            remaining -= u64::from(u32::MAX);
            clock = clock.succ();
            self.forced_increments += 1;
        }
        self.entries.push(LogEntry {
            clock,
            thread,
            instructions: remaining,
        });
        rec.segment_start = at_instr;
        rec.clock = new_clock;
    }

    /// The clock value `thread` currently runs with, as the recorder
    /// knows it.
    pub fn current_clock(&self, thread: ThreadId) -> ScalarTime {
        self.threads[thread.index()].clock
    }

    /// Closes every thread's final segment; `final_instrs[t]` is thread
    /// `t`'s total retired instruction count.
    ///
    /// # Panics
    ///
    /// Panics if called twice or if a final count precedes a segment
    /// start.
    pub fn flush(&mut self, final_instrs: &[u64]) {
        assert!(!self.flushed, "order log flushed twice");
        self.flushed = true;
        for (t, &total) in final_instrs.iter().enumerate() {
            let rec = self.threads[t];
            assert!(total >= rec.segment_start);
            let thread = ThreadId(t as u16);
            self.entries.push(LogEntry {
                clock: rec.clock,
                thread,
                instructions: total - rec.segment_start,
            });
        }
    }

    /// All entries, in append order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Log size in bytes at the hardware encoding.
    pub fn bytes(&self) -> u64 {
        self.entries.len() as u64 * LOG_ENTRY_BYTES
    }

    /// Forced clock increments due to instruction-count overflow (zero in
    /// realistic runs).
    pub fn forced_increments(&self) -> u64 {
        self.forced_increments
    }

    /// `true` once [`OrderRecorder::flush`] has run.
    pub fn is_flushed(&self) -> bool {
        self.flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    fn ts(n: u64) -> ScalarTime {
        ScalarTime::new(n)
    }

    #[test]
    fn segments_cover_the_execution() {
        let mut r = OrderRecorder::new(2);
        r.record_change(t(0), ts(3), 100); // clock 0 for instrs [0,100)
        r.record_change(t(0), ts(4), 250); // clock 3 for [100,250)
        r.flush(&[400, 50]);
        let e = r.entries();
        assert_eq!(e.len(), 4);
        assert_eq!(
            (e[0].clock, e[0].instructions, e[0].thread),
            (ts(0), 100, t(0))
        );
        assert_eq!((e[1].clock, e[1].instructions), (ts(3), 150));
        // Flush entries: t0 with clock 4 for [250,400), t1 clock 0 for 50.
        assert_eq!(
            (e[2].clock, e[2].instructions, e[2].thread),
            (ts(4), 150, t(0))
        );
        assert_eq!(
            (e[3].clock, e[3].instructions, e[3].thread),
            (ts(0), 50, t(1))
        );
        // Total instructions match.
        let total: u64 = e.iter().map(|e| e.instructions).sum();
        assert_eq!(total, 450);
        assert_eq!(r.bytes(), 32);
    }

    #[test]
    fn zero_length_segments_are_legal() {
        // Two clock changes at the same instruction (e.g. a race update
        // followed by a post-sync-write increment).
        let mut r = OrderRecorder::new(1);
        r.record_change(t(0), ts(5), 10);
        r.record_change(t(0), ts(6), 10);
        assert_eq!(r.entries()[1].instructions, 0);
        assert_eq!(r.current_clock(t(0)), ts(6));
    }

    #[test]
    #[should_panic(expected = "must advance")]
    fn non_advancing_clock_rejected() {
        let mut r = OrderRecorder::new(1);
        r.record_change(t(0), ts(0), 10);
    }

    #[test]
    fn overflow_splits_with_forced_increments() {
        let mut r = OrderRecorder::new(1);
        let huge = u64::from(u32::MAX) * 2 + 5;
        r.record_change(t(0), ts(100), huge);
        let e = r.entries();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].instructions, u64::from(u32::MAX));
        assert_eq!(e[0].clock, ts(0));
        assert_eq!(e[1].instructions, u64::from(u32::MAX));
        assert_eq!(e[1].clock, ts(1)); // forced increment
        assert_eq!(e[2].instructions, 5);
        assert_eq!(e[2].clock, ts(2));
        assert_eq!(r.forced_increments(), 2);
        // All entries fit the 32-bit hardware field.
        assert!(e.iter().all(|e| e.instructions <= u64::from(u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "flushed twice")]
    fn double_flush_rejected() {
        let mut r = OrderRecorder::new(1);
        r.flush(&[0]);
        r.flush(&[0]);
    }
}
