//! Deterministic replay from the order log (§2.7.1 and §3.3).
//!
//! "Our deterministic replay orders the log by logical time and then
//! proceeds through log entries one by one. For each log entry, the
//! thread with the recorded ID has its clock value set to the recorded
//! clock value, and is then allowed to execute the recorded number of
//! instructions."
//!
//! The replayer re-executes each thread's *resolved* access stream (the
//! concrete accesses the recorded run performed, captured by the
//! simulator's ground-truth tracker) under that log-derived schedule and
//! recomputes the per-thread outcome hashes. Replay is correct iff every
//! hash matches the recorded run — i.e., every read observed the very
//! same write. Because CORD guarantees that conflicting accesses never
//! share a clock value ("only non-conflicting fragments of execution
//! from different threads can have equal logical clocks"), equal-clock
//! segments may run in any fixed order without changing the outcome.

use crate::record::LogEntry;
use cord_sim::observer::AccessKind;
use cord_sim::truth::{GroundTruth, ResolvedAccess};
use cord_trace::types::ThreadId;
use std::fmt;

/// Why replay verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The log's per-thread instruction totals disagree with the run's.
    CoverageMismatch {
        /// The thread whose totals disagree.
        thread: ThreadId,
        /// Instructions the log covers.
        logged: u64,
        /// Instructions the run retired.
        executed: u64,
    },
    /// A thread's replayed outcome hash differs from the recorded one —
    /// some read observed a different write.
    OutcomeMismatch {
        /// The diverging thread.
        thread: ThreadId,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::CoverageMismatch {
                thread,
                logged,
                executed,
            } => write!(
                f,
                "log covers {logged} instructions for {thread} but the run retired {executed}"
            ),
            ReplayError::OutcomeMismatch { thread } => {
                write!(f, "replayed outcome differs from recording for {thread}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// A successful replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Segments executed (log entries).
    pub segments: usize,
    /// Accesses replayed.
    pub accesses: u64,
    /// The recomputed per-thread hashes (equal to the recorded ones).
    pub thread_hashes: Vec<u64>,
}

/// Replays `log` over the per-thread `resolved` access streams and
/// checks the outcome against the recorded `original_hashes`.
///
/// `final_instrs[t]` must be thread `t`'s total retired instructions in
/// the recorded run.
///
/// # Errors
///
/// Returns [`ReplayError::CoverageMismatch`] if the log does not
/// partition each thread's instructions, or
/// [`ReplayError::OutcomeMismatch`] if any thread's replayed outcome
/// differs from the recording.
pub fn replay_and_verify(
    log: &[LogEntry],
    resolved: &[Vec<ResolvedAccess>],
    final_instrs: &[u64],
    original_hashes: &[u64],
) -> Result<ReplayReport, ReplayError> {
    let n = resolved.len();
    assert_eq!(final_instrs.len(), n);
    assert_eq!(original_hashes.len(), n);

    // Coverage check: the log partitions each thread's instructions.
    let mut logged = vec![0u64; n];
    for e in log {
        logged[e.thread.index()] += e.instructions;
    }
    for t in 0..n {
        if logged[t] != final_instrs[t] {
            return Err(ReplayError::CoverageMismatch {
                thread: ThreadId(t as u16),
                logged: logged[t],
                executed: final_instrs[t],
            });
        }
    }

    // Global schedule: logical time first; per-thread entries keep their
    // append order (log order) via the stable sort.
    let mut schedule: Vec<&LogEntry> = log.iter().collect();
    schedule.sort_by_key(|e| (e.clock, e.thread));

    // Replay: execute each segment's instructions, committing accesses
    // into a fresh tracker.
    let mut cursors = vec![0usize; n]; // index into resolved stream
    let mut instr_done = vec![0u64; n];
    let mut truth = GroundTruth::new(n, false);
    let mut accesses = 0u64;
    for e in &schedule {
        let t = e.thread.index();
        let end = instr_done[t] + e.instructions;
        let stream = &resolved[t];
        while cursors[t] < stream.len() && stream[cursors[t]].instr_index < end {
            let acc = stream[cursors[t]];
            truth.commit(e.thread, acc.instr_index, acc.addr, acc.kind);
            cursors[t] += 1;
            accesses += 1;
        }
        instr_done[t] = end;
    }

    let summary = truth.into_summary();
    for (t, original) in original_hashes.iter().enumerate() {
        if summary.thread_hashes[t] != *original {
            return Err(ReplayError::OutcomeMismatch {
                thread: ThreadId(t as u16),
            });
        }
    }

    Ok(ReplayReport {
        segments: schedule.len(),
        accesses,
        thread_hashes: summary.thread_hashes,
    })
}

/// Convenience: `true` iff `kind` is an access the replayer must commit
/// (all of them — kept for API symmetry and future filtering).
pub fn is_replayable(kind: AccessKind) -> bool {
    let _ = kind;
    true
}

/// Concurrency available during replay (§2.7.1 notes "optimizations are
/// possible to allow some concurrency in replay" as future work).
///
/// Segments are grouped into *waves*: a wave is a maximal set of
/// consecutive (in logical time) segments with equal clock values.
/// Because CORD guarantees conflicting accesses never share a clock
/// value, every wave's segments are mutually non-conflicting and may be
/// replayed in parallel. `width` histograms how many segments each wave
/// holds; the mean width is the speedup an idealized parallel replayer
/// could extract.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayParallelism {
    /// Number of waves (sequential replay steps).
    pub waves: usize,
    /// Total segments.
    pub segments: usize,
    /// Largest wave.
    pub max_width: usize,
    /// Mean segments per wave (idealized parallel-replay speedup).
    pub mean_width: f64,
}

/// Analyzes how much concurrency a parallel replayer could extract from
/// `log` (one wave per distinct logical-time value).
pub fn replay_parallelism(log: &[LogEntry]) -> ReplayParallelism {
    let mut clocks: Vec<u64> = log.iter().map(|e| e.clock.ticks()).collect();
    clocks.sort_unstable();
    let segments = clocks.len();
    let mut waves = 0usize;
    let mut max_width = 0usize;
    let mut i = 0;
    while i < segments {
        let mut j = i + 1;
        while j < segments && clocks[j] == clocks[i] {
            j += 1;
        }
        waves += 1;
        max_width = max_width.max(j - i);
        i = j;
    }
    ReplayParallelism {
        waves,
        segments,
        max_width,
        mean_width: if waves == 0 {
            0.0
        } else {
            segments as f64 / waves as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_clocks::scalar::ScalarTime;
    use cord_trace::types::Addr;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    fn entry(clock: u64, thread: u16, instructions: u64) -> LogEntry {
        LogEntry {
            clock: ScalarTime::new(clock),
            thread: t(thread),
            instructions,
        }
    }

    fn acc(instr: u64, byte: u64, write: bool) -> ResolvedAccess {
        ResolvedAccess {
            instr_index: instr,
            addr: Addr::new(byte),
            kind: if write {
                AccessKind::DataWrite
            } else {
                AccessKind::DataRead
            },
        }
    }

    /// Recompute reference hashes by committing in a given global order.
    fn reference_hashes(commits: &[(u16, ResolvedAccess)], n: usize) -> Vec<u64> {
        let mut g = GroundTruth::new(n, false);
        for (tid, a) in commits {
            g.commit(t(*tid), a.instr_index, a.addr, a.kind);
        }
        g.into_summary().thread_hashes
    }

    #[test]
    fn replays_a_write_then_read_ordering() {
        // T0 writes X at clock 0 (1 instr), T1 reads X at clock 2.
        let resolved = vec![vec![acc(0, 0x40, true)], vec![acc(0, 0x40, false)]];
        let log = vec![entry(0, 0, 1), entry(2, 1, 1)];
        let original = reference_hashes(&[(0, acc(0, 0x40, true)), (1, acc(0, 0x40, false))], 2);
        let rep = replay_and_verify(&log, &resolved, &[1, 1], &original).expect("replay ok");
        assert_eq!(rep.segments, 2);
        assert_eq!(rep.accesses, 2);
    }

    #[test]
    fn wrong_order_is_detected() {
        // Original: T0's write before T1's read. A log claiming T1 runs
        // first replays the read before the write => hash mismatch.
        let resolved = vec![vec![acc(0, 0x40, true)], vec![acc(0, 0x40, false)]];
        let original = reference_hashes(&[(0, acc(0, 0x40, true)), (1, acc(0, 0x40, false))], 2);
        let bad_log = vec![entry(2, 0, 1), entry(0, 1, 1)];
        let err = replay_and_verify(&bad_log, &resolved, &[1, 1], &original).unwrap_err();
        assert_eq!(err, ReplayError::OutcomeMismatch { thread: t(1) });
    }

    #[test]
    fn coverage_mismatch_is_detected() {
        let resolved = vec![vec![acc(0, 0x40, true)]];
        let log = vec![entry(0, 0, 5)];
        let err = replay_and_verify(&log, &resolved, &[9], &[0]).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::CoverageMismatch {
                logged: 5,
                executed: 9,
                ..
            }
        ));
    }

    #[test]
    fn equal_clock_segments_of_nonconflicting_threads_replay() {
        // T0 and T1 each write then read a private word, both segments
        // at clock 0: no conflicts across the segments, so the tie-break
        // order (thread id) replays the recorded outcome.
        let resolved = vec![
            vec![acc(0, 0x40, true), acc(1, 0x40, false)],
            vec![acc(0, 0x80, true), acc(1, 0x80, false)],
        ];
        let original = {
            let mut g = GroundTruth::new(2, false);
            g.commit(t(0), 0, Addr::new(0x40), AccessKind::DataWrite);
            g.commit(t(0), 1, Addr::new(0x40), AccessKind::DataRead);
            g.commit(t(1), 0, Addr::new(0x80), AccessKind::DataWrite);
            g.commit(t(1), 1, Addr::new(0x80), AccessKind::DataRead);
            g.into_summary().thread_hashes
        };
        let log = vec![entry(0, 0, 2), entry(0, 1, 2)];
        let result = replay_and_verify(&log, &resolved, &[2, 2], &original);
        assert!(result.is_ok());
    }

    #[test]
    fn parallelism_counts_waves_of_equal_clocks() {
        let log = vec![
            entry(0, 0, 1),
            entry(0, 1, 1),
            entry(0, 2, 1),
            entry(5, 0, 1),
            entry(7, 1, 1),
            entry(7, 2, 1),
        ];
        let p = replay_parallelism(&log);
        assert_eq!(p.segments, 6);
        assert_eq!(p.waves, 3); // clocks {0, 5, 7}
        assert_eq!(p.max_width, 3);
        assert!((p.mean_width - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallelism_of_empty_log_is_zero() {
        let p = replay_parallelism(&[]);
        assert_eq!(p.waves, 0);
        assert_eq!(p.mean_width, 0.0);
    }

    #[test]
    fn fully_serial_log_has_unit_width() {
        let log: Vec<LogEntry> = (0..5).map(|i| entry(i * 3, 0, 1)).collect();
        let p = replay_parallelism(&log);
        assert_eq!(p.waves, 5);
        assert_eq!(p.max_width, 1);
    }

    #[test]
    fn segments_interleave_by_logical_time() {
        // T0: write A (clk 0), then write B (clk 5).
        // T1: read A (clk 2), then read B (clk 7).
        let resolved = vec![
            vec![acc(0, 0x40, true), acc(1, 0x80, true)],
            vec![acc(0, 0x40, false), acc(1, 0x80, false)],
        ];
        let original = reference_hashes(
            &[
                (0, acc(0, 0x40, true)),
                (1, acc(0, 0x40, false)),
                (0, acc(1, 0x80, true)),
                (1, acc(1, 0x80, false)),
            ],
            2,
        );
        let log = vec![
            entry(0, 0, 1),
            entry(5, 0, 1),
            entry(2, 1, 1),
            entry(7, 1, 1),
        ];
        let rep = replay_and_verify(&log, &resolved, &[2, 2], &original).expect("ok");
        assert_eq!(rep.segments, 4);
    }
}
