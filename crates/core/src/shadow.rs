//! Dense shadow-state storage keyed by
//! [`dense_line_index`](cord_trace::layout::dense_line_index).
//!
//! Every per-access structure in the detector stack — CORD's per-core
//! line histories, the comparison detectors' word shadow state — used
//! to live in `HashMap`s probed on the hot path. The workload address
//! space is two compact bands (data heap + sync region), so the dense
//! interleaved line index turns each of those probes into a vector
//! index. [`ShadowSpace`] is the flat auto-growing store; [`LineTable`]
//! wraps it with a `HashMap`-shaped API keyed by `LineAddr` so call
//! sites stay readable.
//!
//! Iteration walks slots in dense-index order, which is deterministic —
//! unlike `HashMap` iteration — and only runs on cold paths (the cache
//! walker, end-of-run accounting), never per access.

use cord_trace::layout::dense_line_index;
use cord_trace::types::LineAddr;

/// A flat, auto-growing map from small dense indices to `T`.
///
/// `get`/`get_mut`/`insert`/`remove` are O(1) vector indexing;
/// iteration is O(capacity) over the slot vector in index order.
#[derive(Debug, Clone)]
pub struct ShadowSpace<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for ShadowSpace<T> {
    fn default() -> Self {
        ShadowSpace {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<T> ShadowSpace<T> {
    /// An empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty space pre-sized for indices `0..capacity` (e.g. from
    /// [`DenseLineMap::line_capacity`](cord_trace::layout::DenseLineMap)).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(capacity, || None);
        ShadowSpace { slots, len: 0 }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `index`, if present.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        self.slots.get(index).and_then(Option::as_ref)
    }

    /// Mutable access to the value at `index`, if present.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.slots.get_mut(index).and_then(Option::as_mut)
    }

    /// Inserts `value` at `index`, returning the previous occupant.
    #[inline]
    pub fn insert(&mut self, index: usize, value: T) -> Option<T> {
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let prev = self.slots[index].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value at `index`.
    #[inline]
    pub fn remove(&mut self, index: usize) -> Option<T> {
        let v = self.slots.get_mut(index).and_then(Option::take);
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// The slot at `index`, inserting `T::default()` if vacant.
    #[inline]
    pub fn entry_or_default(&mut self, index: usize) -> &mut T
    where
        T: Default,
    {
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        if self.slots[index].is_none() {
            self.slots[index] = Some(T::default());
            self.len += 1;
        }
        self.slots[index].as_mut().expect("slot just filled")
    }

    /// Iterates occupied slots as `(index, &value)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    /// Iterates occupied slots mutably in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (i, v)))
    }

    /// Iterates occupied values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates occupied values mutably in index order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

/// [`ShadowSpace`] keyed directly by [`LineAddr`] via the dense
/// interleaved index — a drop-in replacement for
/// `HashMap<LineAddr, T>` on the per-access path.
#[derive(Debug, Clone, Default)]
pub struct LineTable<T> {
    space: ShadowSpace<T>,
}

impl<T> LineTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        LineTable {
            space: ShadowSpace::new(),
        }
    }

    /// An empty table pre-sized for `line_capacity` dense line indices.
    pub fn with_capacity(line_capacity: usize) -> Self {
        LineTable {
            space: ShadowSpace::with_capacity(line_capacity),
        }
    }

    /// Number of lines with shadow state.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// `true` if no line has shadow state.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// The state for `line`, if present.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&T> {
        self.space.get(dense_line_index(line))
    }

    /// Mutable state for `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        self.space.get_mut(dense_line_index(line))
    }

    /// Inserts state for `line`, returning the previous occupant.
    #[inline]
    pub fn insert(&mut self, line: LineAddr, value: T) -> Option<T> {
        self.space.insert(dense_line_index(line), value)
    }

    /// Removes and returns the state for `line`.
    #[inline]
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        self.space.remove(dense_line_index(line))
    }

    /// The state for `line`, inserting `T::default()` if vacant.
    #[inline]
    pub fn entry_or_default(&mut self, line: LineAddr) -> &mut T
    where
        T: Default,
    {
        self.space.entry_or_default(dense_line_index(line))
    }

    /// Iterates present values in dense-index order (deterministic).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.space.values()
    }

    /// Iterates present values mutably in dense-index order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.space.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::layout::SYNC_BASE_LINE;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: ShadowSpace<u32> = ShadowSpace::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(5, 7), None);
        assert_eq!(s.insert(5, 9), Some(7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(5), Some(&9));
        assert_eq!(s.get(4), None);
        assert_eq!(s.remove(5), Some(9));
        assert_eq!(s.remove(5), None);
        assert!(s.is_empty());
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut s: ShadowSpace<Vec<u8>> = ShadowSpace::new();
        s.entry_or_default(3).push(1);
        s.entry_or_default(3).push(2);
        assert_eq!(s.get(3), Some(&vec![1, 2]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_index_ordered() {
        let mut s: ShadowSpace<&str> = ShadowSpace::with_capacity(2);
        s.insert(9, "c");
        s.insert(0, "a");
        s.insert(4, "b");
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(0, &"a"), (4, &"b"), (9, &"c")]);
    }

    #[test]
    fn line_table_separates_bands() {
        let mut t: LineTable<u64> = LineTable::new();
        t.insert(LineAddr(0), 10);
        t.insert(LineAddr(SYNC_BASE_LINE), 20);
        assert_eq!(t.get(LineAddr(0)), Some(&10));
        assert_eq!(t.get(LineAddr(SYNC_BASE_LINE)), Some(&20));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(LineAddr(0)), Some(10));
        assert_eq!(t.get(LineAddr(0)), None);
    }

    #[test]
    fn line_table_values_deterministic() {
        let mut t: LineTable<u64> = LineTable::new();
        for l in [7u64, 3, 5, 1] {
            t.insert(LineAddr(l), l);
        }
        let vals: Vec<u64> = t.values().copied().collect();
        assert_eq!(vals, vec![1, 3, 5, 7]);
    }
}
