//! Dense shadow-state storage keyed by
//! [`dense_line_index`](cord_trace::layout::dense_line_index).
//!
//! Every per-access structure in the detector stack — CORD's per-core
//! line histories, the comparison detectors' word shadow state — used
//! to live in `HashMap`s probed on the hot path. The workload address
//! space is two compact bands (data heap + sync region), so the dense
//! interleaved line index turns each of those probes into a vector
//! index. [`ShadowSpace`] is the flat auto-growing store; [`LineTable`]
//! wraps it with a `HashMap`-shaped API keyed by `LineAddr` so call
//! sites stay readable.
//!
//! Iteration walks slots in dense-index order, which is deterministic —
//! unlike `HashMap` iteration — and only runs on cold paths (the cache
//! walker, end-of-run accounting), never per access.

use cord_trace::layout::dense_line_index;
use cord_trace::types::LineAddr;

/// Occupancy state of one shadow slot (one byte in the state array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum SlotState {
    /// Never occupied (value is `T::default()`).
    Empty = 0,
    /// Previously occupied, vacated with buffers parked for reuse. The
    /// parked value is *logically* default (see [`ShadowSpace::vacate`])
    /// but keeps its heap allocations.
    Parked = 1,
    /// Occupied.
    Live = 2,
}

/// A flat, auto-growing map from small dense indices to `T`, laid out as
/// a structure of arrays: a one-byte-per-slot occupancy array probed on
/// the hot path, and a parallel value array touched only on live slots.
///
/// `get`/`get_mut`/`insert`/`remove` are O(1) vector indexing; the
/// presence test reads a single dense byte, so scanning several spaces
/// for the same index (the detector's remote-core probe) stays friendly
/// to the cache even when the values themselves are large. Iteration is
/// O(capacity) over the state array in index order.
///
/// Vacating instead of removing ([`ShadowSpace::vacate`]) parks the
/// value in place, so per-slot heap buffers (history vectors, clock
/// allocations) survive an occupant's removal and are reused by the next
/// [`ShadowSpace::entry_or_default`] — the arena behaviour the detectors
/// rely on to keep line fill/evict cycles allocation-free.
#[derive(Debug, Clone)]
pub struct ShadowSpace<T> {
    state: Vec<SlotState>,
    values: Vec<T>,
    len: usize,
}

impl<T> Default for ShadowSpace<T> {
    fn default() -> Self {
        ShadowSpace {
            state: Vec::new(),
            values: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Default> ShadowSpace<T> {
    /// An empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty space pre-sized for indices `0..capacity` (e.g. from
    /// [`DenseLineMap::line_capacity`](cord_trace::layout::DenseLineMap)).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut s = Self::default();
        s.grow_to(capacity);
        s
    }

    fn grow_to(&mut self, capacity: usize) {
        if capacity > self.state.len() {
            self.state.resize(capacity, SlotState::Empty);
            self.values.resize_with(capacity, T::default);
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `index`, if present.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        match self.state.get(index) {
            Some(SlotState::Live) => Some(&self.values[index]),
            _ => None,
        }
    }

    /// Mutable access to the value at `index`, if present.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        match self.state.get(index) {
            Some(SlotState::Live) => Some(&mut self.values[index]),
            _ => None,
        }
    }

    /// Inserts `value` at `index`, returning the previous occupant.
    #[inline]
    pub fn insert(&mut self, index: usize, value: T) -> Option<T> {
        self.grow_to(index + 1);
        let prev = std::mem::replace(&mut self.values[index], value);
        let was_live = self.state[index] == SlotState::Live;
        self.state[index] = SlotState::Live;
        if was_live {
            Some(prev)
        } else {
            self.len += 1;
            None
        }
    }

    /// Removes and returns the value at `index`, resetting the slot to
    /// `T::default()`. Prefer [`ShadowSpace::vacate`] on hot paths — it
    /// keeps the occupant's buffers parked in the slot for reuse.
    #[inline]
    pub fn remove(&mut self, index: usize) -> Option<T> {
        match self.state.get(index) {
            Some(SlotState::Live) => {
                self.state[index] = SlotState::Empty;
                self.len -= 1;
                Some(std::mem::take(&mut self.values[index]))
            }
            _ => None,
        }
    }

    /// Vacates the slot at `index`, returning a mutable reference the
    /// caller uses to drain the occupant in place. The value stays
    /// parked in the slot with its heap buffers intact and will be
    /// handed back by the next [`ShadowSpace::entry_or_default`] on this
    /// index — so the caller MUST leave it logically equivalent to
    /// `T::default()` (e.g. a drained [`LineHistory`]) before the
    /// reference is dropped.
    ///
    /// [`LineHistory`]: crate::history::LineHistory
    #[inline]
    pub fn vacate(&mut self, index: usize) -> Option<&mut T> {
        match self.state.get(index) {
            Some(SlotState::Live) => {
                self.state[index] = SlotState::Parked;
                self.len -= 1;
                Some(&mut self.values[index])
            }
            _ => None,
        }
    }

    /// The slot at `index`, inserting `T::default()` if vacant. A parked
    /// occupant ([`ShadowSpace::vacate`]) is revived in place — by the
    /// vacate contract it is logically default, but keeps its buffers.
    #[inline]
    pub fn entry_or_default(&mut self, index: usize) -> &mut T {
        self.grow_to(index + 1);
        match self.state[index] {
            SlotState::Live => {}
            SlotState::Parked => {
                self.state[index] = SlotState::Live;
                self.len += 1;
            }
            SlotState::Empty => {
                self.state[index] = SlotState::Live;
                self.len += 1;
            }
        }
        &mut self.values[index]
    }

    /// Iterates occupied slots as `(index, &value)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.state
            .iter()
            .zip(self.values.iter())
            .enumerate()
            .filter_map(|(i, (s, v))| (*s == SlotState::Live).then_some((i, v)))
    }

    /// Iterates occupied slots mutably in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.state
            .iter()
            .zip(self.values.iter_mut())
            .enumerate()
            .filter_map(|(i, (s, v))| (*s == SlotState::Live).then_some((i, v)))
    }

    /// Iterates occupied values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.state
            .iter()
            .zip(self.values.iter())
            .filter_map(|(s, v)| (*s == SlotState::Live).then_some(v))
    }

    /// Iterates occupied values mutably in index order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.state
            .iter()
            .zip(self.values.iter_mut())
            .filter_map(|(s, v)| (*s == SlotState::Live).then_some(v))
    }
}

/// [`ShadowSpace`] keyed directly by [`LineAddr`] via the dense
/// interleaved index — a drop-in replacement for
/// `HashMap<LineAddr, T>` on the per-access path.
#[derive(Debug, Clone, Default)]
pub struct LineTable<T> {
    space: ShadowSpace<T>,
}

impl<T: Default> LineTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        LineTable {
            space: ShadowSpace::new(),
        }
    }

    /// An empty table pre-sized for `line_capacity` dense line indices.
    pub fn with_capacity(line_capacity: usize) -> Self {
        LineTable {
            space: ShadowSpace::with_capacity(line_capacity),
        }
    }

    /// Number of lines with shadow state.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// `true` if no line has shadow state.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// The state for `line`, if present.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&T> {
        self.space.get(dense_line_index(line))
    }

    /// Mutable state for `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        self.space.get_mut(dense_line_index(line))
    }

    /// Inserts state for `line`, returning the previous occupant.
    #[inline]
    pub fn insert(&mut self, line: LineAddr, value: T) -> Option<T> {
        self.space.insert(dense_line_index(line), value)
    }

    /// Removes and returns the state for `line`.
    #[inline]
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        self.space.remove(dense_line_index(line))
    }

    /// Vacates the state for `line` in place — see
    /// [`ShadowSpace::vacate`] for the drain-before-drop contract.
    #[inline]
    pub fn vacate(&mut self, line: LineAddr) -> Option<&mut T> {
        self.space.vacate(dense_line_index(line))
    }

    /// The state for `line`, inserting `T::default()` if vacant.
    #[inline]
    pub fn entry_or_default(&mut self, line: LineAddr) -> &mut T {
        self.space.entry_or_default(dense_line_index(line))
    }

    /// Iterates present values in dense-index order (deterministic).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.space.values()
    }

    /// Iterates present values mutably in dense-index order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.space.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::layout::SYNC_BASE_LINE;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: ShadowSpace<u32> = ShadowSpace::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(5, 7), None);
        assert_eq!(s.insert(5, 9), Some(7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(5), Some(&9));
        assert_eq!(s.get(4), None);
        assert_eq!(s.remove(5), Some(9));
        assert_eq!(s.remove(5), None);
        assert!(s.is_empty());
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut s: ShadowSpace<Vec<u8>> = ShadowSpace::new();
        s.entry_or_default(3).push(1);
        s.entry_or_default(3).push(2);
        assert_eq!(s.get(3), Some(&vec![1, 2]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_index_ordered() {
        let mut s: ShadowSpace<&str> = ShadowSpace::with_capacity(2);
        s.insert(9, "c");
        s.insert(0, "a");
        s.insert(4, "b");
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(0, &"a"), (4, &"b"), (9, &"c")]);
    }

    #[test]
    fn line_table_separates_bands() {
        let mut t: LineTable<u64> = LineTable::new();
        t.insert(LineAddr(0), 10);
        t.insert(LineAddr(SYNC_BASE_LINE), 20);
        assert_eq!(t.get(LineAddr(0)), Some(&10));
        assert_eq!(t.get(LineAddr(SYNC_BASE_LINE)), Some(&20));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(LineAddr(0)), Some(10));
        assert_eq!(t.get(LineAddr(0)), None);
    }

    #[test]
    fn line_table_values_deterministic() {
        let mut t: LineTable<u64> = LineTable::new();
        for l in [7u64, 3, 5, 1] {
            t.insert(LineAddr(l), l);
        }
        let vals: Vec<u64> = t.values().copied().collect();
        assert_eq!(vals, vec![1, 3, 5, 7]);
    }
}
