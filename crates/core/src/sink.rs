//! Detectors as event-stream sinks.
//!
//! The redesigned ingestion surface: a detector is a [`DetectorSink`]
//! that consumes [`StreamEvent`]s one at a time, regardless of whether
//! they come from a live simulator, a capture file, or a socket. The
//! Machine-coupled path is a thin adapter — [`SinkObserver`] turns the
//! `MemoryObserver` callback stream into `StreamEvent`s — so inline
//! detection and stream replay execute the *same* detector code on the
//! *same* event sequence. That is what makes the capture→replay
//! byte-identity contract (enforced by the cord-fuzz oracle and the
//! cord-serve smoke) meaningful rather than aspirational.
//!
//! * [`ObsCtx`] — observability wiring handed to
//!   `DetectorConfig::build_sink()` at construction time, replacing the
//!   old post-construction `set_trace`/`record_metrics` mutation pair.
//! * [`SinkReport`] — what [`DetectorSink::drain`] returns: the race
//!   report plus metrics, with a canonical byte serialization
//!   ([`SinkReport::to_bytes`]) that replay legs compare bit-for-bit.
//! * [`apply_stream_event`] — the one dispatch table from reified
//!   events back to observer callbacks.
//! * [`CaptureObserver`] — tee: records the event stream while
//!   forwarding it, without perturbing the inner observer.

use cord_json::{obj, FromJson, Json, JsonError, ToJson};
use cord_obs::{MetricsRegistry, ObserverOutcome, StreamEvent, TraceHandle};
use cord_sim::observer::{AccessEvent, CoreId, Level, LineRemoval, MemoryObserver};
use cord_trace::types::{LineAddr, ThreadId};

/// Observability context handed to a sink at construction time: one
/// value instead of the old `set_trace` + `record_metrics` mutation
/// pair. Metrics now travel *out* of the sink (in
/// [`SinkReport::metrics`]); the trace handle travels *in* here.
#[derive(Debug, Clone, Default)]
pub struct ObsCtx {
    /// Run-event trace sink; [`TraceHandle::disabled`] for no tracing.
    pub trace: TraceHandle,
}

impl ObsCtx {
    /// No observability: disabled trace handle.
    pub fn disabled() -> Self {
        ObsCtx::default()
    }

    /// Wires a trace handle in.
    pub fn with_trace(trace: TraceHandle) -> Self {
        ObsCtx { trace }
    }
}

/// The drained result of a detector sink: who checked, what it found,
/// and the counters it accumulated.
///
/// The compact-JSON byte serialization ([`SinkReport::to_bytes`]) is
/// the unit of the capture→replay contract: a daemon replaying a
/// captured stream must drain to bytes identical to inline detection.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkReport {
    /// Detector label (e.g. `"CORD-D16"`).
    pub detector: String,
    /// Number of races reported.
    pub race_count: u64,
    /// Per-race records, detector-specific but stably serialized.
    pub races: Vec<Json>,
    /// Detector counters (empty for detectors without structured stats).
    pub metrics: MetricsRegistry,
}

impl SinkReport {
    /// An empty report for `detector`.
    pub fn new(detector: impl Into<String>) -> Self {
        SinkReport {
            detector: detector.into(),
            race_count: 0,
            races: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Canonical byte serialization (compact JSON). Two reports are
    /// *the same report* iff these bytes are equal.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().to_string_compact().into_bytes()
    }
}

impl ToJson for SinkReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("detector", self.detector.to_json()),
            ("race_count", self.race_count.to_json()),
            ("races", Json::Array(self.races.clone())),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl FromJson for SinkReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SinkReport {
            detector: FromJson::from_json(v.field("detector")?)?,
            race_count: FromJson::from_json(v.field("race_count")?)?,
            races: v.field("races")?.as_array()?.to_vec(),
            metrics: FromJson::from_json(v.field("metrics")?)?,
        })
    }
}

/// A race detector as an event-stream sink — the ingestion surface
/// shared by inline simulation, capture replay, and the cord-serve
/// daemon.
///
/// `Send` is a supertrait for the same reason it is on
/// [`Detector`](crate::Detector): sinks are built on one thread and
/// driven on another (sweep workers, daemon sessions).
pub trait DetectorSink: Send {
    /// Consumes one event, returning any extra bus work it caused (only
    /// meaningful to a live simulator; replay drivers ignore it).
    fn ingest(&mut self, ev: &StreamEvent) -> ObserverOutcome;

    /// Inline fast path for [`StreamEvent::Access`]: consumes the
    /// access without reifying it as a `StreamEvent`.
    ///
    /// The provided default routes through [`DetectorSink::ingest`], so
    /// any sink is correct out of the box; sinks on the simulator's
    /// per-access hot path override these `ingest_*` methods to
    /// dispatch straight to their callback handlers. Overrides must
    /// stay observationally identical to the default — inline
    /// detection and capture replay are required to produce
    /// bit-identical reports.
    #[inline]
    fn ingest_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.ingest(&StreamEvent::Access(*ev))
    }

    /// Inline fast path for [`StreamEvent::LineFilled`].
    #[inline]
    fn ingest_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        self.ingest(&StreamEvent::LineFilled { core, level, line });
    }

    /// Inline fast path for [`StreamEvent::LineRemoved`].
    #[inline]
    fn ingest_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        self.ingest(&StreamEvent::LineRemoved(*removal))
    }

    /// Inline fast path for [`StreamEvent::ThreadMigrated`].
    #[inline]
    fn ingest_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        self.ingest(&StreamEvent::ThreadMigrated { thread, from, to });
    }

    /// Inline fast path for [`StreamEvent::RunEnd`]. The default pays
    /// the `instr_counts` clone the wire event requires; overrides
    /// hand the slice to the detector directly.
    #[inline]
    fn ingest_run_end(&mut self, instr_counts: &[u64]) {
        self.ingest(&StreamEvent::RunEnd {
            instr_counts: instr_counts.to_vec(),
        });
    }

    /// A synchronization point: any buffered work must be applied
    /// before `flush` returns. The default is a no-op for sinks that
    /// apply events eagerly.
    fn flush(&mut self) {}

    /// Produces the race report accumulated so far. Does not reset the
    /// sink; draining twice yields the same report.
    fn drain(&mut self) -> SinkReport;
}

impl<S: DetectorSink + ?Sized> DetectorSink for Box<S> {
    fn ingest(&mut self, ev: &StreamEvent) -> ObserverOutcome {
        (**self).ingest(ev)
    }

    fn ingest_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        (**self).ingest_access(ev)
    }

    fn ingest_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        (**self).ingest_line_filled(core, level, line)
    }

    fn ingest_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        (**self).ingest_line_removed(removal)
    }

    fn ingest_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        (**self).ingest_thread_migrated(thread, from, to)
    }

    fn ingest_run_end(&mut self, instr_counts: &[u64]) {
        (**self).ingest_run_end(instr_counts)
    }

    fn flush(&mut self) {
        (**self).flush()
    }

    fn drain(&mut self) -> SinkReport {
        (**self).drain()
    }
}

/// Dispatches one reified event to the matching [`MemoryObserver`]
/// callback — the single translation table between the wire vocabulary
/// and the callback vocabulary. [`StreamEvent::Trace`] passthroughs are
/// not detector inputs and are ignored.
pub fn apply_stream_event<O: MemoryObserver + ?Sized>(
    obs: &mut O,
    ev: &StreamEvent,
) -> ObserverOutcome {
    match ev {
        StreamEvent::Access(a) => obs.on_access(a),
        StreamEvent::LineFilled { core, level, line } => {
            obs.on_line_filled(*core, *level, *line);
            ObserverOutcome::NONE
        }
        StreamEvent::LineRemoved(r) => obs.on_line_removed(r),
        StreamEvent::ThreadMigrated { thread, from, to } => {
            obs.on_thread_migrated(*thread, *from, *to);
            ObserverOutcome::NONE
        }
        StreamEvent::RunEnd { instr_counts } => {
            obs.on_run_end(instr_counts);
            ObserverOutcome::NONE
        }
        StreamEvent::Trace(_) => ObserverOutcome::NONE,
    }
}

/// The thin adapter that keeps the `Machine` path on the sink API: a
/// [`MemoryObserver`] that feeds each callback to the wrapped sink.
/// Inline detection is therefore *defined* as replaying the callback
/// stream through the sink — the same event sequence a capture replay
/// drives through [`DetectorSink::ingest`].
///
/// Dispatch goes through the sink's `ingest_*` fast-path methods, so a
/// sink that overrides them (the concrete `DetectorEnum` does) pays no
/// `StreamEvent` reification on the inline path; stream-driven sinks
/// fall back to the provided defaults, which reify and route through
/// [`DetectorSink::ingest`] exactly as this adapter used to.
#[derive(Debug)]
pub struct SinkObserver<S> {
    sink: S,
}

impl<S> SinkObserver<S> {
    /// Wraps a sink for attachment to a `Machine`.
    pub fn new(sink: S) -> Self {
        SinkObserver { sink }
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped sink, mutably.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> S {
        self.sink
    }
}

impl<S: DetectorSink> MemoryObserver for SinkObserver<S> {
    #[inline]
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.sink.ingest_access(ev)
    }

    #[inline]
    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        self.sink.ingest_line_filled(core, level, line);
    }

    #[inline]
    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        self.sink.ingest_line_removed(removal)
    }

    #[inline]
    fn on_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        self.sink.ingest_thread_migrated(thread, from, to);
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        self.sink.ingest_run_end(final_instr_counts);
        self.sink.flush();
    }
}

/// A per-access latency profiler: times each `on_access` callback of
/// the wrapped observer and records it into a
/// [`Histogram`](cord_obs::Histogram), forwarding everything unchanged.
///
/// This wrapper exists so the hot path stays provably zero-cost when
/// profiling is off: instead of a branch (or worse, a clock read) inside
/// every access, the sweep instantiates `Machine<LatencyObserver<...>>`
/// only when observability is enabled, and the plain
/// `Machine<SinkObserver<...>>` otherwise — the disabled path never even
/// contains the timing code. Latencies are timing-dependent by nature,
/// so the harvested histogram must only flow into the profile side of
/// sweep output, never into deterministic results.
#[derive(Debug)]
pub struct LatencyObserver<O> {
    inner: O,
    hist: cord_obs::Histogram,
}

impl<O> LatencyObserver<O> {
    /// Wraps `inner` with an empty histogram.
    pub fn new(inner: O) -> Self {
        LatencyObserver {
            inner,
            hist: cord_obs::Histogram::new(),
        }
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The wrapped observer, mutably.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// The latency histogram collected so far.
    pub fn histogram(&self) -> &cord_obs::Histogram {
        &self.hist
    }

    /// Unwraps into `(inner, histogram)`.
    pub fn into_parts(self) -> (O, cord_obs::Histogram) {
        (self.inner, self.hist)
    }
}

impl<O: MemoryObserver> MemoryObserver for LatencyObserver<O> {
    #[inline]
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        let start = std::time::Instant::now();
        let out = self.inner.on_access(ev);
        self.hist.record_ns(start.elapsed().as_nanos() as u64);
        out
    }

    #[inline]
    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        self.inner.on_line_filled(core, level, line);
    }

    #[inline]
    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        self.inner.on_line_removed(removal)
    }

    #[inline]
    fn on_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        self.inner.on_thread_migrated(thread, from, to);
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        self.inner.on_run_end(final_instr_counts);
    }
}

/// A tee observer: records every event as a [`StreamEvent`] while
/// forwarding it (and its outcome) unchanged to the inner observer.
/// Wrapping a detector in a capture changes nothing about the run —
/// which is exactly why a capture replayed through a fresh sink must
/// reproduce the inline result bit-for-bit.
#[derive(Debug)]
pub struct CaptureObserver<O> {
    inner: O,
    events: Vec<StreamEvent>,
}

impl<O> CaptureObserver<O> {
    /// Wraps `inner`, capturing into an empty buffer.
    pub fn new(inner: O) -> Self {
        CaptureObserver {
            inner,
            events: Vec::new(),
        }
    }

    /// The captured events so far.
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps into `(inner, captured events)`.
    pub fn into_parts(self) -> (O, Vec<StreamEvent>) {
        (self.inner, self.events)
    }
}

impl<O: MemoryObserver> MemoryObserver for CaptureObserver<O> {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.events.push(StreamEvent::Access(*ev));
        self.inner.on_access(ev)
    }

    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        self.events
            .push(StreamEvent::LineFilled { core, level, line });
        self.inner.on_line_filled(core, level, line)
    }

    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        self.events.push(StreamEvent::LineRemoved(*removal));
        self.inner.on_line_removed(removal)
    }

    fn on_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        self.events
            .push(StreamEvent::ThreadMigrated { thread, from, to });
        self.inner.on_thread_migrated(thread, from, to)
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        self.events.push(StreamEvent::RunEnd {
            instr_counts: final_instr_counts.to_vec(),
        });
        self.inner.on_run_end(final_instr_counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_obs::AccessKind;
    use cord_trace::types::Addr;

    /// A sink that counts what it ingested.
    struct CountingSink {
        events: u64,
        accesses: u64,
        flushed: bool,
    }

    impl DetectorSink for CountingSink {
        fn ingest(&mut self, ev: &StreamEvent) -> ObserverOutcome {
            self.events += 1;
            if matches!(ev, StreamEvent::Access(_)) {
                self.accesses += 1;
            }
            ObserverOutcome::NONE
        }

        fn flush(&mut self) {
            self.flushed = true;
        }

        fn drain(&mut self) -> SinkReport {
            let mut r = SinkReport::new("counting");
            r.metrics.add("test.events", self.events);
            r
        }
    }

    fn access(addr: u64) -> AccessEvent {
        AccessEvent {
            core: CoreId(0),
            thread: ThreadId(0),
            addr: Addr::new(addr),
            kind: AccessKind::DataRead,
            path: cord_obs::AccessPath::L1Hit,
            instr_index: 0,
            cycle: 0,
        }
    }

    #[test]
    fn sink_observer_reifies_every_callback() {
        let mut obs = SinkObserver::new(CountingSink {
            events: 0,
            accesses: 0,
            flushed: false,
        });
        obs.on_access(&access(0x40));
        obs.on_line_filled(CoreId(1), Level::L2, LineAddr(3));
        obs.on_line_removed(&LineRemoval {
            core: CoreId(1),
            level: Level::L2,
            line: LineAddr(3),
            cause: cord_obs::RemovalCause::Capacity,
            dirty: false,
        });
        obs.on_thread_migrated(ThreadId(0), CoreId(0), CoreId(1));
        obs.on_run_end(&[5, 5]);
        let sink = obs.into_inner();
        assert_eq!(sink.events, 5);
        assert_eq!(sink.accesses, 1);
        assert!(sink.flushed, "on_run_end must flush the sink");
    }

    #[test]
    fn capture_observer_is_a_transparent_tee() {
        let mut cap = CaptureObserver::new(cord_obs::NullObserver);
        cap.on_access(&access(0x80));
        cap.on_run_end(&[1]);
        let (_, events) = cap.into_parts();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], StreamEvent::Access(_)));
        assert!(matches!(events[1], StreamEvent::RunEnd { .. }));
    }

    impl CountingSink {
        fn fresh() -> Self {
            CountingSink {
                events: 0,
                accesses: 0,
                flushed: false,
            }
        }
    }

    #[test]
    fn captured_events_replay_identically_through_apply() {
        // Capture a short callback sequence, then replay it through a
        // fresh sink via apply_stream_event: the sink must see the same
        // event count as one driven live through SinkObserver.
        let mut cap = CaptureObserver::new(cord_obs::NullObserver);
        cap.on_access(&access(0x40));
        cap.on_line_filled(CoreId(0), Level::L1, LineAddr(1));
        cap.on_run_end(&[1]);
        let (_, events) = cap.into_parts();

        let mut live = SinkObserver::new(CountingSink::fresh());
        live.on_access(&access(0x40));
        live.on_line_filled(CoreId(0), Level::L1, LineAddr(1));
        live.on_run_end(&[1]);

        let mut replayed = CountingSink::fresh();
        for ev in &events {
            replayed.ingest(ev);
        }
        replayed.flush();

        let live = live.into_inner();
        assert_eq!(replayed.events, live.events);
        assert_eq!(replayed.accesses, live.accesses);
        assert_eq!(replayed.flushed, live.flushed);
    }

    #[test]
    fn sink_report_roundtrips_and_byte_compares() {
        let mut a = SinkReport::new("cord");
        a.race_count = 2;
        a.races.push(cord_json::Json::UInt(1));
        a.metrics.add("cord.data_races", 2);
        let back = SinkReport::from_json(&a.to_json()).expect("parses");
        assert_eq!(back, a);
        assert_eq!(back.to_bytes(), a.to_bytes());
        let mut b = a.clone();
        b.race_count = 3;
        assert_ne!(b.to_bytes(), a.to_bytes());
    }

    #[test]
    fn apply_ignores_trace_passthrough() {
        let outcome = apply_stream_event(
            &mut cord_obs::NullObserver,
            &StreamEvent::Trace(cord_obs::TraceEvent {
                cycle: 0,
                thread: 0,
                kind: cord_obs::EventKind::MemtsBroadcast { count: 1 },
            }),
        );
        assert_eq!(outcome, ObserverOutcome::NONE);
    }
}
