//! Model-based property test pinning the arena-backed
//! [`LineHistory`] (oldest-first entry storage, buffer-retaining
//! `reset`/`drain_into`, O(n) `take_entries_into` partition) against a
//! straightforward reference model.
//!
//! The model is written from the documented semantics, not the
//! implementation: entries live in push order; `push_stamp` displaces
//! the oldest entry when full; `push_stamp_displace_min` displaces the
//! *newest among the tied minimum stamps* (the historical behaviour of
//! a first-match `min_by` over the old newest-first layout);
//! `take_entries_into` stably partitions by predicate without touching
//! filters or the shed-write bound; `drain_into`/`reset` clear
//! everything. Any divergence — entry order, access bits, filter
//! state, displaced-entry identity — fails the property.

use cord_clocks::scalar::ScalarTime;
use cord_core::history::{HistEntry, LineHistory};
use proptest::prelude::*;

const WORDS: usize = 16;

/// Reference model entry: stamp plus per-word read/write flags.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ModelEntry {
    stamp: u64,
    read: [bool; WORDS],
    written: [bool; WORDS],
}

impl ModelEntry {
    fn new(stamp: u64) -> Self {
        ModelEntry {
            stamp,
            read: [false; WORDS],
            written: [false; WORDS],
        }
    }
}

/// Reference model: the documented `LineHistory` semantics over plain
/// vectors, with no buffer reuse or layout tricks.
#[derive(Debug, Default)]
struct Model {
    entries: Vec<ModelEntry>,
    read_filter: bool,
    write_filter: bool,
    shed_write_stamp: Option<u64>,
}

impl Model {
    fn push_stamp(&mut self, stamp: u64, max: usize) -> Option<ModelEntry> {
        let displaced = if self.entries.len() >= max {
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push(ModelEntry::new(stamp));
        displaced
    }

    fn push_stamp_displace_min(&mut self, stamp: u64, max: usize) -> Option<ModelEntry> {
        let displaced = if self.entries.len() >= max {
            let min = self
                .entries
                .iter()
                .map(|e| e.stamp)
                .min()
                .expect("non-empty");
            // Newest among the tied minima = the last one in push order.
            let idx = self
                .entries
                .iter()
                .rposition(|e| e.stamp == min)
                .expect("min exists");
            Some(self.entries.remove(idx))
        } else {
            None
        };
        self.entries.push(ModelEntry::new(stamp));
        displaced
    }

    fn take_below(&mut self, bound: u64) -> Vec<ModelEntry> {
        let (taken, kept): (Vec<_>, Vec<_>) = self.entries.drain(..).partition(|e| e.stamp < bound);
        self.entries = kept;
        taken
    }

    fn drain_all(&mut self) -> Vec<ModelEntry> {
        self.read_filter = false;
        self.write_filter = false;
        self.shed_write_stamp = None;
        std::mem::take(&mut self.entries)
    }

    fn reset(&mut self) {
        self.drain_all();
    }

    fn note_shed_write(&mut self, stamp: u64) {
        self.shed_write_stamp = Some(match self.shed_write_stamp {
            Some(old) => old.max(stamp),
            None => stamp,
        });
    }
}

/// Asserts the real history and the model agree on every observable.
fn assert_equiv(h: &LineHistory<ScalarTime>, m: &Model) -> Result<(), String> {
    prop_assert_eq!(h.entries().len(), m.entries.len());
    for (he, me) in h.entries().iter().zip(&m.entries) {
        prop_assert_eq!(he.stamp.ticks(), me.stamp);
        for w in 0..WORDS {
            prop_assert_eq!(he.read(w), me.read[w]);
            prop_assert_eq!(he.written(w), me.written[w]);
        }
    }
    prop_assert_eq!(h.read_filter, m.read_filter);
    prop_assert_eq!(h.write_filter, m.write_filter);
    prop_assert_eq!(h.shed_write_stamp.map(|s| s.ticks()), m.shed_write_stamp);
    prop_assert_eq!(
        h.newest().map(|e| e.stamp.ticks()),
        m.entries.last().map(|e| e.stamp)
    );
    prop_assert_eq!(
        h.max_stamp().map(|s| s.ticks()),
        m.entries.iter().map(|e| e.stamp).max()
    );
    for w in 0..WORDS {
        let model_conflict = |is_write: bool| {
            m.entries
                .iter()
                .any(|e| e.written[w] || (is_write && e.read[w]))
        };
        prop_assert_eq!(h.any_conflict(w, false), model_conflict(false));
        prop_assert_eq!(h.any_conflict(w, true), model_conflict(true));
    }
    prop_assert_eq!(
        h.any_access(),
        m.entries
            .iter()
            .any(|e| e.read.iter().chain(&e.written).any(|&b| b))
    );
    Ok(())
}

fn assert_taken_equiv(
    taken: &[HistEntry<ScalarTime>],
    model_taken: &[ModelEntry],
) -> Result<(), String> {
    prop_assert_eq!(taken.len(), model_taken.len());
    for (te, me) in taken.iter().zip(model_taken) {
        prop_assert_eq!(te.stamp.ticks(), me.stamp);
        for w in 0..WORDS {
            prop_assert_eq!(te.read(w), me.read[w]);
            prop_assert_eq!(te.written(w), me.written[w]);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random op sequences hit every public mutator; the real history
    /// must track the reference model exactly — including the entries
    /// it displaces and takes out.
    #[test]
    fn arena_history_matches_vec_model(
        ops in proptest::collection::vec(
            (0u8..9, 0u64..64, 0u8..(2 * WORDS as u8), 1usize..4),
            0..64,
        ),
    ) {
        let mut h: LineHistory<ScalarTime> = LineHistory::new();
        let mut m = Model::default();
        // A couple of reusable scratch buffers, as the detector holds.
        let mut scratch: Vec<HistEntry<ScalarTime>> = Vec::new();

        for (op, stamp, wordmode, max) in ops {
            let word = usize::from(wordmode) % WORDS;
            let is_write = wordmode >= WORDS as u8;
            match op {
                0 => {
                    let d = h.push_stamp(ScalarTime::new(stamp), max);
                    let md = m.push_stamp(stamp, max);
                    prop_assert_eq!(d.is_some(), md.is_some());
                    if let (Some(d), Some(md)) = (d, md) {
                        assert_taken_equiv(&[d], &[md])?;
                    }
                }
                1 => {
                    let d = h.push_stamp_displace_min(ScalarTime::new(stamp), max);
                    let md = m.push_stamp_displace_min(stamp, max);
                    prop_assert_eq!(d.is_some(), md.is_some());
                    if let (Some(d), Some(md)) = (d, md) {
                        assert_taken_equiv(&[d], &[md])?;
                    }
                }
                2 => {
                    if let Some(e) = h.newest_mut() {
                        e.set(word, is_write);
                        let me = m.entries.last_mut().expect("model newest in sync");
                        if is_write {
                            me.written[word] = true;
                        } else {
                            me.read[word] = true;
                        }
                    }
                }
                3 => {
                    h.grant_filter(is_write);
                    if is_write {
                        m.write_filter = true;
                    } else {
                        m.read_filter = true;
                    }
                }
                4 => {
                    h.clear_filters();
                    m.read_filter = false;
                    m.write_filter = false;
                }
                5 => {
                    h.note_shed_write(ScalarTime::new(stamp));
                    m.note_shed_write(stamp);
                }
                6 => {
                    scratch.clear();
                    h.take_entries_into(|e| e.stamp.ticks() < stamp, &mut scratch);
                    let model_taken = m.take_below(stamp);
                    assert_taken_equiv(&scratch, &model_taken)?;
                }
                7 => {
                    scratch.clear();
                    h.drain_into(&mut scratch);
                    let model_taken = m.drain_all();
                    assert_taken_equiv(&scratch, &model_taken)?;
                }
                _ => {
                    h.reset();
                    m.reset();
                }
            }
            assert_equiv(&h, &m)?;
            prop_assert_eq!(h.filter_allows(false), m.read_filter);
            prop_assert_eq!(h.filter_allows(true), m.write_filter);
        }
    }
}
