//! The paper's hardest promise, as a property: CORD reports **zero**
//! data races on *any* properly-synchronized program (§2.3: "we need a
//! scheme free of false alarms").
//!
//! Workloads come from `cord-fuzz`'s race-free-by-construction
//! generator — random thread counts (including core oversubscription,
//! §2.7.4), nested locks, flag pipelines, barrier exchanges, flag
//! reset/reuse, and false-sharing traffic — so the interleavings these
//! cases reach are far wilder than the three fixed shapes this test
//! used to build, and every cross-thread conflict is still ordered by
//! construction. Any reported race is a false positive.
//!
//! The vendored `proptest` stand-in does not shrink, and that is by
//! design here: a failing case prints its generator seed, and
//! `cord_fuzz::shrink` (or `cargo run --release -p cord-bench --bin
//! fuzz -- --seed N --count 1 --corpus-dir DIR`) minimizes the
//! *workload* while preserving the structural invariants, which
//! tree-shrinking a seed could not do.

use cord_core::{CordConfig, CordDetector};
use cord_fuzz::gen::{generate, GenConfig};
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cord_never_reports_on_synchronized_programs(
        gen_seed in 0u64..1_000_000,
        sim_seed in 0u64..1_000,
        d in prop_oneof![Just(1u64), Just(4), Just(16), Just(256)],
    ) {
        let w = generate(&GenConfig::race_free(), gen_seed);
        w.validate().expect("generated workload is well-formed");
        let threads = w.num_threads();
        let det = CordDetector::new(CordConfig::with_d(d), threads, 4);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            det,
            sim_seed,
            InjectionPlan::none(),
        );
        let (_, det) = m.run().expect("race-free workloads terminate");
        prop_assert!(
            det.races().is_empty(),
            "false positives with D={d}, gen seed {gen_seed}, sim seed {sim_seed}: {:?}",
            det.races()
        );
    }

    /// The shipping window16 configuration agrees with its own
    /// full-width audit on every race-free interleaving (§2.7.5).
    #[test]
    fn window16_audit_is_clean_on_synchronized_programs(
        gen_seed in 0u64..1_000_000,
        sim_seed in 0u64..1_000,
    ) {
        let w = generate(&GenConfig::race_free(), gen_seed);
        let threads = w.num_threads();
        let det = CordDetector::new(CordConfig::paper(), threads, 4);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            det,
            sim_seed,
            InjectionPlan::none(),
        );
        let (_, det) = m.run().expect("race-free workloads terminate");
        prop_assert_eq!(det.stats().window16_mismatches, 0);
        prop_assert_eq!(det.stats().window_violations, 0);
    }

    /// The order log always partitions each thread's instructions, so
    /// replay coverage never fails — for *any* generated program,
    /// racy ones included (the mixed generator leaves some conflicts
    /// deliberately unordered).
    #[test]
    fn order_log_partitions_instructions(
        gen_seed in 0u64..1_000_000,
        sim_seed in 0u64..500,
    ) {
        let w = generate(&GenConfig::default(), gen_seed);
        let threads = w.num_threads();
        let det = CordDetector::new(CordConfig::paper(), threads, 4);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            det,
            sim_seed,
            InjectionPlan::none(),
        );
        let (out, det) = m.run().expect("generated workloads terminate");
        let mut per_thread = vec![0u64; threads];
        for e in det.recorder().entries() {
            per_thread[e.thread.index()] += e.instructions;
        }
        prop_assert_eq!(per_thread, out.stats.instr_counts);
    }
}
