//! The paper's hardest promise, as a property: CORD reports **zero**
//! data races on *any* properly-synchronized program (§2.3: "we need a
//! scheme free of false alarms").
//!
//! The generator builds random well-synchronized workloads from three
//! safe ingredients — private accesses, critical sections on shared data
//! (one lock per shared region), and all-thread barrier phases with
//! owner-partitioned sharing — so every cross-thread conflict is ordered
//! by construction. Any reported race is a false positive.

use cord_core::{CordConfig, CordDetector};
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use proptest::prelude::*;

/// One random phase of the generated program.
#[derive(Debug, Clone)]
enum Phase {
    /// Each thread touches only its own slice of a fresh region.
    Private { words_per_thread: u64 },
    /// Each thread does `rounds` lock-protected updates of a shared
    /// region guarded by the region's dedicated lock.
    Locked { rounds: u8, span: u64 },
    /// Barrier, then every thread reads the word its *left neighbour*
    /// wrote before the barrier.
    Exchange,
}

fn phase_strategy() -> impl Strategy<Value = Phase> {
    prop_oneof![
        (1u64..8).prop_map(|words_per_thread| Phase::Private { words_per_thread }),
        (1u8..4, 1u64..4).prop_map(|(rounds, span)| Phase::Locked { rounds, span }),
        Just(Phase::Exchange),
    ]
}

fn build(phases: &[Phase], threads: usize) -> Workload {
    let mut b = WorkloadBuilder::new("prop-sync", threads);
    let barrier = b.alloc_barrier();
    for phase in phases {
        match phase {
            Phase::Private { words_per_thread } => {
                let region = b.alloc_line_aligned(words_per_thread * threads as u64);
                for t in 0..threads {
                    let tb = &mut b.thread_mut(t);
                    for i in 0..*words_per_thread {
                        tb.update(region.word(t as u64 * words_per_thread + i));
                    }
                    tb.compute(17);
                }
            }
            Phase::Locked { rounds, span } => {
                let lock = b.alloc_lock();
                let region = b.alloc_line_aligned(*span);
                for t in 0..threads {
                    let tb = &mut b.thread_mut(t);
                    for r in 0..*rounds {
                        tb.lock(lock);
                        tb.update(region.word(u64::from(r) % span));
                        tb.unlock(lock);
                        tb.compute(11);
                    }
                }
            }
            Phase::Exchange => {
                let region = b.alloc_line_aligned(threads as u64 * 16);
                for t in 0..threads {
                    let tb = &mut b.thread_mut(t);
                    tb.write(region.word(t as u64 * 16));
                    tb.barrier(barrier);
                    let left = (t + threads - 1) % threads;
                    tb.read(region.word(left as u64 * 16));
                    tb.barrier(barrier);
                }
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cord_never_reports_on_synchronized_programs(
        phases in proptest::collection::vec(phase_strategy(), 1..6),
        threads in 2usize..5,
        seed in 0u64..1_000,
        d in prop_oneof![Just(1u64), Just(4), Just(16), Just(256)],
    ) {
        let w = build(&phases, threads);
        w.validate().expect("generated workload is well-formed");
        let det = CordDetector::new(CordConfig::with_d(d), threads, 4);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            det,
            seed,
            InjectionPlan::none(),
        );
        let (_, det) = m.run().expect("no deadlock");
        prop_assert!(
            det.races().is_empty(),
            "false positives with D={d}, seed {seed}: {:?}",
            det.races()
        );
    }

    /// The order log always partitions each thread's instructions, so
    /// replay coverage never fails, for any generated program.
    #[test]
    fn order_log_partitions_instructions(
        phases in proptest::collection::vec(phase_strategy(), 1..5),
        seed in 0u64..500,
    ) {
        let threads = 4;
        let w = build(&phases, threads);
        let det = CordDetector::new(CordConfig::paper(), threads, 4);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            det,
            seed,
            InjectionPlan::none(),
        );
        let (out, det) = m.run().expect("no deadlock");
        let mut per_thread = vec![0u64; threads];
        for e in det.recorder().entries() {
            per_thread[e.thread.index()] += e.instructions;
        }
        prop_assert_eq!(per_thread, out.stats.instr_counts);
    }
}
