//! The detector configurations compared in §4, and their single
//! construction point.
//!
//! This module used to live in `cord-bench`; it moved here so that
//! *every* consumer of detectors — the sweep, the fuzzer, the
//! `cord-serve` daemon — can name and build them without depending on
//! the benchmark harness. Construction goes through
//! [`DetectorConfig::build_sink`], which returns the concrete
//! [`DetectorEnum`] wired with its observability context; the daemon
//! resolves labels from stream headers back to configurations with
//! [`DetectorConfig::from_label`].

use crate::{IdealDetector, VcConfig, VcLimitedDetector};
use cord_core::{CordConfig, CordDetector, Detector, DetectorSink, ObsCtx, SinkReport};
use cord_obs::StreamEvent;
use cord_sim::config::MachineConfig;
use cord_sim::observer::{
    AccessEvent, CoreId, Level, LineRemoval, MemoryObserver, ObserverOutcome,
};
use cord_trace::types::{LineAddr, ThreadId};

/// A named detector configuration from the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorConfig {
    /// CORD with the given `D` (the paper's default is 16; Figures 16–17
    /// sweep 1, 4, 16, 256).
    Cord {
        /// The sync-read clock-update window.
        d: u64,
    },
    /// Vector clocks, two timestamps per line, unlimited cache
    /// (InfCache, §4.3).
    VcInfCache,
    /// Vector clocks limited to the L2 (the "vector clock" reference of
    /// Figures 12–13/16–17).
    VcL2Cache,
    /// Vector clocks limited to the L1 (the severe constraint of
    /// Figures 14–15).
    VcL1Cache,
    /// The Ideal oracle: vector clocks, infinite cache, unlimited
    /// per-word history.
    Ideal,
    /// A deliberately faulty detector for fault-tolerance tests: runs
    /// with an odd seed panic (caught by the sweep's per-run isolation
    /// boundary and recorded as `RunStatus::Panicked`), even-seeded runs
    /// report zero races, so a probed sweep mixes panicked and completed
    /// records. Never part of [`DetectorConfig::all_for_sweep`].
    PanicProbe,
}

impl DetectorConfig {
    /// The figure label.
    pub fn label(self) -> String {
        match self {
            DetectorConfig::Cord { d } => format!("CORD-D{d}"),
            DetectorConfig::VcInfCache => "InfCache".to_string(),
            DetectorConfig::VcL2Cache => "L2Cache(VC)".to_string(),
            DetectorConfig::VcL1Cache => "L1Cache(VC)".to_string(),
            DetectorConfig::Ideal => "Ideal".to_string(),
            DetectorConfig::PanicProbe => "PanicProbe".to_string(),
        }
    }

    /// The inverse of [`DetectorConfig::label`]: resolves a label (as
    /// carried in a [`cord_obs::StreamHeader`]) back to the
    /// configuration, so a daemon can build the right sink for a
    /// captured stream.
    pub fn from_label(label: &str) -> Option<DetectorConfig> {
        match label {
            "InfCache" => Some(DetectorConfig::VcInfCache),
            "L2Cache(VC)" => Some(DetectorConfig::VcL2Cache),
            "L1Cache(VC)" => Some(DetectorConfig::VcL1Cache),
            "Ideal" => Some(DetectorConfig::Ideal),
            "PanicProbe" => Some(DetectorConfig::PanicProbe),
            _ => {
                let d = label.strip_prefix("CORD-D")?.parse().ok()?;
                Some(DetectorConfig::Cord { d })
            }
        }
    }

    /// The machine this configuration runs on: Ideal and InfCache use
    /// the infinite-cache machine ("Ideal's L2 cache is infinite and
    /// always hits", §4.2), everything else uses the paper's 4-core CMP.
    pub fn machine(self) -> MachineConfig {
        match self {
            DetectorConfig::Ideal | DetectorConfig::VcInfCache => MachineConfig::infinite_cache(),
            _ => MachineConfig::paper_4core(),
        }
    }

    /// The CORD detector configuration, when this is a CORD variant.
    pub fn cord_config(self) -> Option<CordConfig> {
        match self {
            DetectorConfig::Cord { d } => Some(CordConfig::with_d(d)),
            _ => None,
        }
    }

    /// The vector-clock detector configuration, when applicable.
    pub fn vc_config(self) -> Option<VcConfig> {
        match self {
            DetectorConfig::VcInfCache => Some(VcConfig::inf_cache()),
            DetectorConfig::VcL2Cache => Some(VcConfig::l2_cache()),
            DetectorConfig::VcL1Cache => Some(VcConfig::l1_cache()),
            _ => None,
        }
    }

    /// Constructs the detector this configuration names as the concrete
    /// [`DetectorEnum`], wired with its observability context — the
    /// single construction point every sweep, figure, fuzz leg, and
    /// daemon session goes through. Adding a detector means adding a
    /// variant here, not touching each call site. The sweep hot path
    /// runs `Machine<SinkObserver<DetectorEnum>>`, so every observer
    /// callback dispatches through one match instead of a vtable.
    ///
    /// `seed` is the run's scheduling seed; real detectors ignore it,
    /// but [`DetectorConfig::PanicProbe`] uses its parity to decide
    /// whether to fault (odd seeds panic at the first observed access,
    /// or at run end if nothing was observed).
    pub fn build_sink(&self, threads: usize, cores: usize, seed: u64, ctx: ObsCtx) -> DetectorEnum {
        let mut det = self.dispatch(threads, cores, seed);
        if let DetectorEnum::Cord(d) = &mut det {
            d.set_trace(ctx.trace);
        }
        det
    }

    /// Raw construction without observability wiring; prefer
    /// [`DetectorConfig::build_sink`].
    pub fn dispatch(&self, threads: usize, cores: usize, seed: u64) -> DetectorEnum {
        match *self {
            DetectorConfig::Cord { d } => {
                DetectorEnum::Cord(CordDetector::new(CordConfig::with_d(d), threads, cores))
            }
            DetectorConfig::Ideal => DetectorEnum::Ideal(IdealDetector::new(threads)),
            DetectorConfig::VcInfCache => DetectorEnum::VcLimited(VcLimitedDetector::new(
                VcConfig::inf_cache(),
                threads,
                cores,
            )),
            DetectorConfig::VcL2Cache => DetectorEnum::VcLimited(VcLimitedDetector::new(
                VcConfig::l2_cache(),
                threads,
                cores,
            )),
            DetectorConfig::VcL1Cache => DetectorEnum::VcLimited(VcLimitedDetector::new(
                VcConfig::l1_cache(),
                threads,
                cores,
            )),
            DetectorConfig::PanicProbe => DetectorEnum::PanicProbe(PanicProbeDetector { seed }),
        }
    }

    /// [`DetectorConfig::build_sink`] behind the object-safe
    /// session-API edge, for callers that store heterogeneous detectors.
    #[deprecated(
        since = "0.1.0",
        note = "construct through build_sink(); the Machine path is an adapter over \
                the sink API now (SinkObserver)"
    )]
    pub fn build(&self, threads: usize, cores: usize, seed: u64) -> Box<dyn Detector> {
        Box::new(self.dispatch(threads, cores, seed))
    }

    /// Builds a boxed sink for dynamic contexts (the daemon holds
    /// `Box<dyn DetectorSink>` per session).
    pub fn build_boxed_sink(
        &self,
        threads: usize,
        cores: usize,
        seed: u64,
        ctx: ObsCtx,
    ) -> Box<dyn DetectorSink> {
        Box::new(self.build_sink(threads, cores, seed, ctx))
    }

    /// Every configuration any figure needs, so one sweep serves all of
    /// Figures 12–17.
    pub fn all_for_sweep() -> Vec<DetectorConfig> {
        vec![
            DetectorConfig::Cord { d: 1 },
            DetectorConfig::Cord { d: 4 },
            DetectorConfig::Cord { d: 16 },
            DetectorConfig::Cord { d: 256 },
            DetectorConfig::VcInfCache,
            DetectorConfig::VcL2Cache,
            DetectorConfig::VcL1Cache,
        ]
    }
}

/// Every detector a [`DetectorConfig`] can name, as one concrete type.
///
/// `Machine<SinkObserver<DetectorEnum>>` is what the sweep's
/// (app × run) inner loop executes: the observer callbacks on the
/// per-access hot path compile to a jump over this enum's variants
/// instead of virtual calls through `Box<dyn Detector>`, which stays
/// confined to the session-API edge.
#[derive(Debug)]
pub enum DetectorEnum {
    /// A [`CordDetector`] (any `D`).
    Cord(CordDetector),
    /// The [`IdealDetector`] oracle.
    Ideal(IdealDetector),
    /// A [`VcLimitedDetector`] (InfCache / L2Cache / L1Cache).
    VcLimited(VcLimitedDetector),
    /// The fault-injection probe.
    PanicProbe(PanicProbeDetector),
}

impl MemoryObserver for DetectorEnum {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        match self {
            DetectorEnum::Cord(d) => d.on_access(ev),
            DetectorEnum::Ideal(d) => d.on_access(ev),
            DetectorEnum::VcLimited(d) => d.on_access(ev),
            DetectorEnum::PanicProbe(d) => d.on_access(ev),
        }
    }

    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        match self {
            DetectorEnum::Cord(d) => d.on_line_filled(core, level, line),
            DetectorEnum::Ideal(d) => d.on_line_filled(core, level, line),
            DetectorEnum::VcLimited(d) => d.on_line_filled(core, level, line),
            DetectorEnum::PanicProbe(d) => d.on_line_filled(core, level, line),
        }
    }

    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        match self {
            DetectorEnum::Cord(d) => d.on_line_removed(removal),
            DetectorEnum::Ideal(d) => d.on_line_removed(removal),
            DetectorEnum::VcLimited(d) => d.on_line_removed(removal),
            DetectorEnum::PanicProbe(d) => d.on_line_removed(removal),
        }
    }

    fn on_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        match self {
            DetectorEnum::Cord(d) => d.on_thread_migrated(thread, from, to),
            DetectorEnum::Ideal(d) => d.on_thread_migrated(thread, from, to),
            DetectorEnum::VcLimited(d) => d.on_thread_migrated(thread, from, to),
            DetectorEnum::PanicProbe(d) => d.on_thread_migrated(thread, from, to),
        }
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        match self {
            DetectorEnum::Cord(d) => d.on_run_end(final_instr_counts),
            DetectorEnum::Ideal(d) => d.on_run_end(final_instr_counts),
            DetectorEnum::VcLimited(d) => d.on_run_end(final_instr_counts),
            DetectorEnum::PanicProbe(d) => d.on_run_end(final_instr_counts),
        }
    }
}

impl Detector for DetectorEnum {
    fn race_count(&self) -> u64 {
        match self {
            DetectorEnum::Cord(d) => d.race_count(),
            DetectorEnum::Ideal(d) => d.race_count(),
            DetectorEnum::VcLimited(d) => d.race_count(),
            DetectorEnum::PanicProbe(d) => d.race_count(),
        }
    }
}

impl DetectorSink for DetectorEnum {
    fn ingest(&mut self, ev: &StreamEvent) -> ObserverOutcome {
        cord_core::apply_stream_event(self, ev)
    }

    // Inline fast paths: the sweep hot path is
    // `Machine<SinkObserver<DetectorEnum>>`, and these overrides keep
    // each observer callback to a single enum match — no `StreamEvent`
    // reification, no second dispatch through `apply_stream_event`.
    // They are observationally identical to `ingest` because
    // `apply_stream_event` routes each event kind straight back to the
    // corresponding `MemoryObserver` callback on this enum.
    #[inline]
    fn ingest_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.on_access(ev)
    }

    #[inline]
    fn ingest_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        self.on_line_filled(core, level, line);
    }

    #[inline]
    fn ingest_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        self.on_line_removed(removal)
    }

    #[inline]
    fn ingest_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        self.on_thread_migrated(thread, from, to);
    }

    #[inline]
    fn ingest_run_end(&mut self, instr_counts: &[u64]) {
        self.on_run_end(instr_counts);
    }

    fn drain(&mut self) -> SinkReport {
        match self {
            DetectorEnum::Cord(d) => d.drain(),
            DetectorEnum::Ideal(d) => d.drain(),
            DetectorEnum::VcLimited(d) => d.drain(),
            DetectorEnum::PanicProbe(d) => d.drain(),
        }
    }
}

/// The deliberately faulty detector behind
/// [`DetectorConfig::PanicProbe`]: odd-seeded runs panic at the first
/// observed access — or at run end, for workloads with no observed
/// accesses, so odd seeds *always* fault (exercising the sweep's
/// per-job panic boundary); even-seeded runs observe everything and
/// report zero races.
#[derive(Debug, Clone, Copy)]
pub struct PanicProbeDetector {
    seed: u64,
}

impl MemoryObserver for PanicProbeDetector {
    fn on_access(&mut self, _ev: &AccessEvent) -> ObserverOutcome {
        if self.seed % 2 == 1 {
            panic!("panic probe fired (injected detector fault)");
        }
        ObserverOutcome::NONE
    }

    // `on_run_end` always fires, so an odd seed faults even for a
    // workload that performs zero observed memory accesses.
    fn on_run_end(&mut self, _final_instr_counts: &[u64]) {
        if self.seed % 2 == 1 {
            panic!("panic probe fired (injected detector fault)");
        }
    }
}

impl Detector for PanicProbeDetector {
    fn race_count(&self) -> u64 {
        0
    }
}

impl DetectorSink for PanicProbeDetector {
    fn ingest(&mut self, ev: &StreamEvent) -> ObserverOutcome {
        cord_core::apply_stream_event(self, ev)
    }

    #[inline]
    fn ingest_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.on_access(ev)
    }

    #[inline]
    fn ingest_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        self.on_line_filled(core, level, line);
    }

    #[inline]
    fn ingest_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        self.on_line_removed(removal)
    }

    #[inline]
    fn ingest_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        self.on_thread_migrated(thread, from, to);
    }

    #[inline]
    fn ingest_run_end(&mut self, instr_counts: &[u64]) {
        self.on_run_end(instr_counts);
    }

    fn drain(&mut self) -> SinkReport {
        SinkReport::new("PanicProbe")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_figure_style() {
        assert_eq!(DetectorConfig::Cord { d: 16 }.label(), "CORD-D16");
        assert_eq!(DetectorConfig::VcL2Cache.label(), "L2Cache(VC)");
    }

    #[test]
    fn from_label_inverts_label() {
        for cfg in DetectorConfig::all_for_sweep()
            .into_iter()
            .chain([DetectorConfig::Ideal, DetectorConfig::PanicProbe])
        {
            assert_eq!(DetectorConfig::from_label(&cfg.label()), Some(cfg));
        }
        assert_eq!(DetectorConfig::from_label("CORD-Dx"), None);
        assert_eq!(DetectorConfig::from_label("nonsense"), None);
    }

    #[test]
    fn machines_match_paper_setup() {
        assert!(
            DetectorConfig::Ideal.machine().l2.capacity_bytes
                > DetectorConfig::VcL2Cache.machine().l2.capacity_bytes
        );
        assert_eq!(
            DetectorConfig::Cord { d: 16 }.machine(),
            MachineConfig::paper_4core()
        );
    }

    #[test]
    fn config_conversions() {
        assert_eq!(
            DetectorConfig::Cord { d: 4 }
                .cord_config()
                .unwrap()
                .policy
                .d(),
            4
        );
        assert!(DetectorConfig::Cord { d: 4 }.vc_config().is_none());
        assert_eq!(
            DetectorConfig::VcL1Cache.vc_config().unwrap().capacity,
            crate::CapacityMode::Level(cord_sim::observer::Level::L1)
        );
        assert_eq!(DetectorConfig::all_for_sweep().len(), 7);
    }

    #[test]
    fn build_sink_constructs_every_sweep_detector() {
        for cfg in DetectorConfig::all_for_sweep() {
            let mut det = cfg.build_sink(4, 4, 2, ObsCtx::disabled());
            assert_eq!(det.race_count(), 0, "{cfg:?} starts clean");
            let report = det.drain();
            assert_eq!(report.detector, cfg.label(), "{cfg:?} drains its label");
            assert_eq!(report.race_count, 0);
        }
        let mut probe = DetectorConfig::PanicProbe.build_sink(4, 4, 2, ObsCtx::disabled());
        assert_eq!(probe.race_count(), 0);
        assert_eq!(probe.drain().detector, "PanicProbe");
    }

    #[test]
    fn panic_probe_fires_on_odd_seeds_only() {
        use cord_sim::observer::{AccessKind, AccessPath, CoreId};
        use cord_trace::types::{Addr, ThreadId};
        let ev = AccessEvent {
            core: CoreId(0),
            thread: ThreadId(0),
            addr: Addr::new(0x40),
            kind: AccessKind::DataRead,
            path: AccessPath::L1Hit,
            instr_index: 0,
            cycle: 0,
        };
        let mut even = PanicProbeDetector { seed: 4 };
        assert_eq!(even.on_access(&ev), ObserverOutcome::NONE);
        let mut odd = PanicProbeDetector { seed: 5 };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            odd.on_access(&ev);
        }));
        assert!(caught.is_err(), "odd-seeded probe must panic");
    }

    #[test]
    fn panic_probe_faults_at_run_end_even_without_accesses() {
        let mut even = PanicProbeDetector { seed: 4 };
        even.on_run_end(&[0, 0]);
        let mut odd = PanicProbeDetector { seed: 5 };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            odd.on_run_end(&[0, 0]);
        }));
        assert!(
            caught.is_err(),
            "odd-seeded probe must fault even for access-free runs"
        );
    }
}
