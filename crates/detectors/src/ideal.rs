//! The *Ideal* data-race oracle (§4.2–§4.3).
//!
//! "The Ideal configuration uses vector clocks, unlimited caches, and an
//! unlimited number of access history entries per cache block" — it
//! detects every dynamically occurring happens-before data race and is
//! the ground truth for the problem-detection and raw-detection-rate
//! figures. (§3.2 notes this configuration is so memory-hungry that the
//! authors had to shrink input sets; our per-word, per-thread last
//! read/write vector timestamps are the compact equivalent
//! representation.)
//!
//! Algorithm (classic vector-clock race detection):
//!
//! * each thread has a vector clock, ticked after each of its
//!   synchronization writes;
//! * a synchronization write stores the writer's clock on the sync word;
//!   a synchronization read joins the stored clock into the reader
//!   (this captures exactly the race outcomes synchronization produces);
//! * each word keeps, per thread, the vector time of its last read and
//!   last write; a data access races with every conflicting last access
//!   that is not happens-before the accessor's current clock.
//!
//! No clock updates happen on data races: unlike CORD (Figure 3), the
//! oracle must keep detecting the later races a problem causes.

use cord_clocks::vector::VectorClock;
use cord_core::ShadowSpace;
use cord_sim::observer::{AccessEvent, AccessKind, MemoryObserver, ObserverOutcome};
use cord_trace::layout::dense_word_index;
use cord_trace::types::{Addr, ThreadId};
use std::collections::HashSet;

/// A data race found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdealRace {
    /// The thread whose access detected the race.
    pub thread: ThreadId,
    /// The racing word.
    pub addr: Addr,
    /// The detecting access's kind.
    pub kind: AccessKind,
    /// The other (earlier) thread of the racing pair.
    pub other_thread: ThreadId,
    /// Whether the earlier access was a write.
    pub other_was_write: bool,
    /// Instruction index of the detecting access.
    pub instr_index: u64,
}

#[derive(Debug, Clone, Default)]
struct WordHistory {
    /// Per-thread (vector time of last read, version counter), indexed
    /// by thread.
    last_read: ShadowSpace<(VectorClock, u64)>,
    /// Per-thread (vector time of last write, version counter), indexed
    /// by thread.
    last_write: ShadowSpace<(VectorClock, u64)>,
}

/// The Ideal oracle detector.
#[derive(Debug)]
pub struct IdealDetector {
    vcs: Vec<VectorClock>,
    /// Per-word shadow histories, indexed by the dense word index.
    words: ShadowSpace<WordHistory>,
    /// Last synchronization-write clock per sync word, indexed by the
    /// dense word index.
    release: ShadowSpace<VectorClock>,
    races: Vec<IdealRace>,
    reported: HashSet<(u16, u64, u16, u64, bool)>,
    next_version: u64,
}

impl IdealDetector {
    /// An oracle for `threads` threads.
    pub fn new(threads: usize) -> Self {
        IdealDetector {
            // Each thread starts in its own epoch 1: a thread's accesses
            // must not compare as ordered-before another thread's clock
            // until a synchronization join actually propagates them.
            vcs: (0..threads)
                .map(|t| {
                    let mut vc = VectorClock::new(threads);
                    vc.tick(t);
                    vc
                })
                .collect(),
            words: ShadowSpace::new(),
            release: ShadowSpace::new(),
            races: Vec::new(),
            reported: HashSet::new(),
            next_version: 0,
        }
    }

    /// All data races detected.
    pub fn races(&self) -> &[IdealRace] {
        &self.races
    }

    /// Number of (deduplicated) data races detected.
    pub fn data_race_count(&self) -> u64 {
        self.races.len() as u64
    }

    /// `true` iff at least one data race was detected — the paper's
    /// criterion for an injection having *manifested* a problem.
    pub fn found_any(&self) -> bool {
        !self.races.is_empty()
    }

    /// The distinct words involved in detected races.
    pub fn raced_words(&self) -> HashSet<Addr> {
        self.races.iter().map(|r| r.addr).collect()
    }

    /// The current vector clock of a thread.
    pub fn clock_of(&self, thread: ThreadId) -> &VectorClock {
        &self.vcs[thread.index()]
    }

    fn report(&mut self, ev: &AccessEvent, other_tid: u16, version: u64, other_was_write: bool) {
        let key = (
            ev.thread.0,
            ev.addr.byte(),
            other_tid,
            version,
            other_was_write,
        );
        if self.reported.insert(key) {
            self.races.push(IdealRace {
                thread: ev.thread,
                addr: ev.addr,
                kind: ev.kind,
                other_thread: ThreadId(other_tid),
                other_was_write,
                instr_index: ev.instr_index,
            });
        }
    }
}

impl cord_core::Detector for IdealDetector {
    fn race_count(&self) -> u64 {
        self.data_race_count()
    }
}

impl cord_json::ToJson for IdealRace {
    fn to_json(&self) -> cord_json::Json {
        cord_json::obj(vec![
            ("thread", cord_json::Json::UInt(u64::from(self.thread.0))),
            ("addr", cord_json::Json::UInt(self.addr.byte())),
            (
                "kind",
                cord_json::Json::Str(cord_obs::kind_name(self.kind).to_string()),
            ),
            (
                "other_thread",
                cord_json::Json::UInt(u64::from(self.other_thread.0)),
            ),
            (
                "other_was_write",
                cord_json::Json::Bool(self.other_was_write),
            ),
            ("instr_index", cord_json::Json::UInt(self.instr_index)),
        ])
    }
}

impl cord_core::DetectorSink for IdealDetector {
    fn ingest(&mut self, ev: &cord_obs::StreamEvent) -> ObserverOutcome {
        cord_core::apply_stream_event(self, ev)
    }

    fn drain(&mut self) -> cord_core::SinkReport {
        use cord_json::ToJson;
        let mut report = cord_core::SinkReport::new("Ideal");
        report.race_count = self.data_race_count();
        report.races = self.races.iter().map(|r| r.to_json()).collect();
        report
    }
}

impl MemoryObserver for IdealDetector {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        let t = ev.thread.index();
        match ev.kind {
            AccessKind::SyncWrite => {
                let w = dense_word_index(ev.addr);
                match self.release.get_mut(w) {
                    Some(rel) => rel.assign(&self.vcs[t]),
                    None => {
                        self.release.insert(w, self.vcs[t].clone());
                    }
                }
                self.vcs[t].tick(t);
            }
            AccessKind::SyncRead => {
                if let Some(rel) = self.release.get(dense_word_index(ev.addr)) {
                    self.vcs[t].join(rel);
                }
            }
            AccessKind::DataRead | AccessKind::DataWrite => {
                let is_write = ev.kind == AccessKind::DataWrite;
                self.next_version += 1;
                let version = self.next_version;
                // A write races with concurrent reads and writes; a read
                // races with concurrent writes only.
                let mut found: Vec<(u16, u64, bool)> = Vec::new();
                let my_vc = &self.vcs[t];
                let hist = self.words.entry_or_default(dense_word_index(ev.addr));
                for (tid, (vc, ver)) in hist.last_write.iter() {
                    if tid != t && !vc.le(my_vc) {
                        found.push((tid as u16, *ver, true));
                    }
                }
                if is_write {
                    for (tid, (vc, ver)) in hist.last_read.iter() {
                        if tid != t && !vc.le(my_vc) {
                            found.push((tid as u16, *ver, false));
                        }
                    }
                }
                // Record this access as the thread's latest, reusing the
                // slot's clock allocation when the thread touched the
                // word before.
                let slot = if is_write {
                    &mut hist.last_write
                } else {
                    &mut hist.last_read
                };
                match slot.get_mut(t) {
                    Some(entry) => {
                        entry.0.assign(my_vc);
                        entry.1 = version;
                    }
                    None => {
                        slot.insert(t, (my_vc.clone(), version));
                    }
                }
                for (tid, ver, other_was_write) in found {
                    self.report(ev, tid, ver, other_was_write);
                }
            }
        }
        ObserverOutcome::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_sim::config::MachineConfig;
    use cord_sim::engine::{InjectionPlan, Machine};
    use cord_trace::builder::WorkloadBuilder;
    use cord_trace::program::Workload;

    fn run(w: &Workload, plan: InjectionPlan, seed: u64) -> IdealDetector {
        // The paper runs Ideal with infinite caches ("Ideal's L2 cache
        // is infinite and always hits").
        let mc = MachineConfig::infinite_cache();
        let det = IdealDetector::new(w.num_threads());
        let m = Machine::new(mc, w, det, seed, plan);
        let (_, det) = m.run().expect("no deadlock");
        det
    }

    fn flag_workload() -> Workload {
        let mut b = WorkloadBuilder::new("flag", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(10_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        b.build()
    }

    #[test]
    fn synchronized_flag_has_no_races() {
        let det = run(&flag_workload(), InjectionPlan::none(), 1);
        assert!(det.races().is_empty(), "{:?}", det.races());
    }

    #[test]
    fn removed_flag_wait_manifests() {
        let det = run(&flag_workload(), InjectionPlan::remove_nth(0), 1);
        assert!(det.found_any());
        // With the wait removed, the consumer's read runs *before* the
        // producer's write, so the race is detected at the write against
        // the consumer's earlier read.
        let r = &det.races()[0];
        assert_eq!(r.addr, Addr::new(0));
        assert!(
            (r.thread == ThreadId(0) && r.other_thread == ThreadId(1))
                || (r.thread == ThreadId(1) && r.other_thread == ThreadId(0))
        );
        assert!(det.raced_words().contains(&Addr::new(0)));
    }

    #[test]
    fn lock_chain_transitivity_is_captured() {
        // T0 writes X under lock; T1 later (via the same lock) reads X:
        // ordered transitively through the lock handoff.
        let mut b = WorkloadBuilder::new("chain", 3);
        let l = b.alloc_lock();
        let d = b.alloc_words(2);
        b.thread_mut(0).lock(l).write(d.word(0)).unlock(l);
        b.thread_mut(1)
            .compute(8_000)
            .lock(l)
            .update(d.word(1))
            .unlock(l);
        b.thread_mut(2)
            .compute(16_000)
            .lock(l)
            .read(d.word(0))
            .unlock(l);
        let w = b.build();
        let det = run(&w, InjectionPlan::none(), 3);
        assert!(det.races().is_empty(), "{:?}", det.races());
    }

    #[test]
    fn concurrent_unsynchronized_writes_race() {
        let mut b = WorkloadBuilder::new("racy", 2);
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0));
        b.thread_mut(1).write(d.word(0));
        let w = b.build();
        let det = run(&w, InjectionPlan::none(), 5);
        assert_eq!(det.data_race_count(), 1);
        assert!(det.races()[0].other_was_write);
    }

    #[test]
    fn hb_detection_is_timing_independent() {
        // Even when the accesses are far apart in physical time, missing
        // synchronization is still a race (the point of happens-before
        // detection).
        let mut b = WorkloadBuilder::new("far", 2);
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0));
        b.thread_mut(1).compute(200_000).read(d.word(0));
        let w = b.build();
        let det = run(&w, InjectionPlan::none(), 7);
        assert_eq!(det.data_race_count(), 1);
    }

    #[test]
    fn redundant_lock_removal_creates_no_races() {
        // §4: "in most of these injections, we removed a dynamic
        // instance of a critical section protected by a lock that was
        // previously held by the same thread" — re-acquisitions by the
        // same thread introduce no cross-thread ordering, so removing
        // them manifests nothing.
        let mut b = WorkloadBuilder::new("redundant", 2);
        let l = b.alloc_lock();
        let d = b.alloc_line_aligned(2);
        // Each thread only ever touches its own word; the lock is
        // ordering-irrelevant.
        for t in 0..2 {
            for _ in 0..3 {
                b.thread_mut(t).lock(l).update(d.word(t as u64)).unlock(l);
            }
        }
        let w = b.build();
        for n in 0..6 {
            let det = run(&w, InjectionPlan::remove_nth(n), 11 + n);
            assert!(
                det.races().is_empty(),
                "injection {n} should not manifest: {:?}",
                det.races()
            );
        }
    }

    #[test]
    fn races_deduplicate_per_conflicting_access() {
        // Two reads of the same racy word by the same thread against the
        // same write count once.
        let mut b = WorkloadBuilder::new("dedupe", 2);
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0));
        b.thread_mut(1)
            .compute(50_000)
            .read(d.word(0))
            .read(d.word(0));
        let w = b.build();
        let det = run(&w, InjectionPlan::none(), 13);
        assert_eq!(det.data_race_count(), 1);
    }
}
