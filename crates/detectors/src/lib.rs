//! Comparison detectors for the CORD evaluation (§4.3–§4.4).
//!
//! The paper measures CORD against:
//!
//! * the **Ideal** oracle — vector clocks, unlimited caches, and an
//!   unlimited number of access-history entries, which "detects all
//!   dynamically occurring data races" and defines the denominator of
//!   every detection-rate figure ([`ideal::IdealDetector`]);
//! * **vector-clock configurations with realistic buffering limits** —
//!   the same two-timestamps-per-line + per-word-access-bits structure
//!   as CORD but with vector timestamps, at three capacities:
//!   *InfCache* (unlimited cache), *L2Cache* (the default 32 KB L2), and
//!   *L1Cache* (timestamps only for L1-resident lines)
//!   ([`vc_limited::VcLimitedDetector`]).
//!
//! Both implement [`MemoryObserver`](cord_sim::observer::MemoryObserver)
//! and attach to the same simulator runs as CORD.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod ideal;
pub mod vc_limited;

pub use config::{DetectorConfig, DetectorEnum, PanicProbeDetector};
pub use ideal::{IdealDetector, IdealRace};
pub use vc_limited::{CapacityMode, VcConfig, VcLimitedDetector, VcRace};
