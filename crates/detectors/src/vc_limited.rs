//! Vector-clock detectors with realistic buffering limits (§4.3).
//!
//! These are "CORD-like schemes that use vector clocks": the same
//! two-timestamps-per-line structure with per-word access bits, the same
//! cache-residency coupling, and the same clock updates on all races —
//! but with exact happens-before comparisons instead of scalar
//! less-than. The paper sweeps three capacities:
//!
//! * **InfCache** — unlimited cache (history never evicted), still only
//!   two timestamps per line (Figure 14/15 show this alone misses 18% of
//!   raw races);
//! * **L2Cache** — history only for L2-resident lines (the baseline the
//!   Figure 16/17 clock sweeps are normalized to);
//! * **L1Cache** — history only for L1-resident lines (the severe
//!   constraint that visibly hurts problem detection).
//!
//! Displaced entries fold into whole-memory read/write *vector*
//! timestamps (the vector analogue of §2.5), comparisons against which
//! are never reported.

use cord_clocks::vector::VectorClock;
use cord_core::history::LineHistory;
use cord_core::LineTable;
use cord_sim::observer::{
    AccessEvent, AccessKind, CoreId, Level, LineRemoval, MemoryObserver, ObserverOutcome,
};
use cord_trace::types::{Addr, LineAddr, ThreadId};
use std::collections::HashSet;

/// How much cache backs the timestamp storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapacityMode {
    /// History never evicted (the paper's InfCache; pair with
    /// [`MachineConfig::infinite_cache`](cord_sim::config::MachineConfig::infinite_cache)).
    Unlimited,
    /// History exists only for lines resident at this cache level.
    Level(Level),
}

/// Configuration of a vector-clock limited detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcConfig {
    /// Timestamp entries per line (2 in all paper configurations).
    pub ts_per_line: usize,
    /// Cache capacity backing the history.
    pub capacity: CapacityMode,
    /// Join the accessor's clock with the conflicting timestamp on every
    /// race (CORD's update-on-all-races choice, Figure 3). The Ideal
    /// oracle instead never updates on data races.
    pub join_on_races: bool,
}

impl VcConfig {
    /// The InfCache configuration of §4.3.
    pub fn inf_cache() -> Self {
        VcConfig {
            ts_per_line: 2,
            capacity: CapacityMode::Unlimited,
            join_on_races: true,
        }
    }

    /// The L2Cache configuration of §4.3 (also the "vector clock"
    /// reference of Figures 12–13 and 16–17).
    pub fn l2_cache() -> Self {
        VcConfig {
            capacity: CapacityMode::Level(Level::L2),
            ..Self::inf_cache()
        }
    }

    /// The L1Cache configuration of §4.3.
    pub fn l1_cache() -> Self {
        VcConfig {
            capacity: CapacityMode::Level(Level::L1),
            ..Self::inf_cache()
        }
    }
}

/// A data race found by a vector-clock limited detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcRace {
    /// The thread whose access detected the race.
    pub thread: ThreadId,
    /// The racing word.
    pub addr: Addr,
    /// The detecting access's kind.
    pub kind: AccessKind,
    /// The core whose cached timestamp conflicted.
    pub other_core: CoreId,
    /// Instruction index of the detecting access.
    pub instr_index: u64,
}

/// Vector-clock detector with CORD's buffering structure.
#[derive(Debug)]
pub struct VcLimitedDetector {
    cfg: VcConfig,
    vcs: Vec<VectorClock>,
    hist: Vec<LineTable<LineHistory<VectorClock>>>,
    mem_read_vc: VectorClock,
    mem_write_vc: VectorClock,
    races: Vec<VcRace>,
    reported: HashSet<(u16, u64, u8, u64)>,
    /// Per core: version counter of the line's latest stamp, indexed by
    /// the dense line index.
    stamp_versions: Vec<LineTable<u64>>,
    /// Per-core running join of every stamp the core's cache recorded;
    /// a thread scheduled onto the core joins it (§2.7.4's "synchronize
    /// on migration", which "also applies to vector-clock schemes").
    core_join: Vec<VectorClock>,
    /// Per core, per line: join of all *write-carrying* stamps displaced
    /// from that line's two-entry history while it stayed resident — the
    /// vector analogue of CORD's shed-write bound. A sync read must join
    /// this too, or a release displaced by spin-read stamps would be
    /// lost and lock-protected data would look concurrent.
    shed_writes: Vec<LineTable<VectorClock>>,
    next_version: u64,
    /// Reusable buffer for entries drained on line removal, so evictions
    /// do not allocate in steady state.
    fold_scratch: Vec<cord_core::history::HistEntry<VectorClock>>,
}

impl VcLimitedDetector {
    /// A detector for `threads` threads on `cores` cores.
    pub fn new(cfg: VcConfig, threads: usize, cores: usize) -> Self {
        assert!(cfg.ts_per_line >= 1);
        VcLimitedDetector {
            cfg,
            // Own component starts at 1 (first epoch) so unsynchronized
            // cross-thread accesses compare as concurrent, not ordered.
            vcs: (0..threads)
                .map(|t| {
                    let mut vc = VectorClock::new(threads);
                    vc.tick(t);
                    vc
                })
                .collect(),
            hist: (0..cores).map(|_| LineTable::new()).collect(),
            mem_read_vc: VectorClock::new(threads),
            mem_write_vc: VectorClock::new(threads),
            core_join: (0..cores).map(|_| VectorClock::new(threads)).collect(),
            races: Vec::new(),
            reported: HashSet::new(),
            stamp_versions: (0..cores).map(|_| LineTable::new()).collect(),
            shed_writes: (0..cores).map(|_| LineTable::new()).collect(),
            next_version: 0,
            fold_scratch: Vec::new(),
        }
    }

    /// All data races detected.
    pub fn races(&self) -> &[VcRace] {
        &self.races
    }

    /// Number of (deduplicated) data races detected.
    pub fn data_race_count(&self) -> u64 {
        self.races.len() as u64
    }

    /// `true` iff at least one data race was detected.
    pub fn found_any(&self) -> bool {
        !self.races.is_empty()
    }

    /// The current vector clock of a thread.
    pub fn clock_of(&self, thread: ThreadId) -> &VectorClock {
        &self.vcs[thread.index()]
    }

    /// The figure label of this configuration (`InfCache`,
    /// `L2Cache(VC)`, or `L1Cache(VC)`).
    pub fn label(&self) -> &'static str {
        match self.cfg.capacity {
            CapacityMode::Unlimited => "InfCache",
            CapacityMode::Level(Level::L2) => "L2Cache(VC)",
            CapacityMode::Level(Level::L1) => "L1Cache(VC)",
        }
    }

    fn tracks_level(&self, level: Level) -> bool {
        match self.cfg.capacity {
            CapacityMode::Unlimited => level == Level::L2,
            CapacityMode::Level(l) => level == l,
        }
    }
}

impl cord_core::Detector for VcLimitedDetector {
    fn race_count(&self) -> u64 {
        self.data_race_count()
    }
}

impl cord_json::ToJson for VcRace {
    fn to_json(&self) -> cord_json::Json {
        cord_json::obj(vec![
            ("thread", cord_json::Json::UInt(u64::from(self.thread.0))),
            ("addr", cord_json::Json::UInt(self.addr.byte())),
            (
                "kind",
                cord_json::Json::Str(cord_obs::kind_name(self.kind).to_string()),
            ),
            (
                "other_core",
                cord_json::Json::UInt(u64::from(self.other_core.0)),
            ),
            ("instr_index", cord_json::Json::UInt(self.instr_index)),
        ])
    }
}

impl cord_core::DetectorSink for VcLimitedDetector {
    fn ingest(&mut self, ev: &cord_obs::StreamEvent) -> ObserverOutcome {
        cord_core::apply_stream_event(self, ev)
    }

    fn drain(&mut self) -> cord_core::SinkReport {
        use cord_json::ToJson;
        let mut report = cord_core::SinkReport::new(self.label());
        report.race_count = self.data_race_count();
        report.races = self.races.iter().map(|r| r.to_json()).collect();
        report
    }
}

impl MemoryObserver for VcLimitedDetector {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        let t = ev.thread.index();
        let my_core = ev.core.index();
        let line = ev.addr.line();
        let word = ev.addr.word_in_line();
        let is_write = ev.kind.is_write();
        let is_sync = ev.kind.is_sync();

        // -- Remote comparisons. The hardware cost model (race-check
        // broadcasts, filters) is evaluated on the CORD detector; here
        // we check remote histories on every access so the comparison
        // isolates the effect of the *clocking scheme and buffering*,
        // which is what §4.3/§4.4 vary.
        // Unlike CORD, the vector-clock configurations join only on
        // actual conflicts and synchronization: exact happens-before
        // needs no conservative response-tag ordering, which is exactly
        // why the paper's VC baseline detects *more* than CORD.
        let mut joins: Vec<VectorClock> = Vec::new();
        let mut found: Vec<(u8, u64)> = Vec::new();
        {
            let my_vc = &self.vcs[t];
            for core in 0..self.hist.len() {
                if core == my_core {
                    continue;
                }
                let Some(h) = self.hist[core].get(line) else {
                    continue;
                };
                for e in h.entries() {
                    let conflict = e.conflicts_with(word, is_write);
                    // A sync read joins every entry of the variable's
                    // line.
                    let sync_order = ev.kind == AccessKind::SyncRead;
                    if (conflict || sync_order) && !e.stamp.le(my_vc) {
                        if conflict && !is_sync {
                            let version = self.stamp_versions[core].get(line).copied().unwrap_or(0);
                            found.push((core as u8, version));
                        }
                        joins.push(e.stamp.clone());
                    }
                }
                if ev.kind == AccessKind::SyncRead {
                    // ...plus any displaced release stamps.
                    if let Some(shed) = self.shed_writes[core].get(line) {
                        if !shed.le(my_vc) {
                            joins.push(shed.clone());
                        }
                    }
                }
            }
        }
        for (core, version) in found {
            let key = (ev.thread.0, ev.addr.byte(), core, version);
            if self.reported.insert(key) {
                self.races.push(VcRace {
                    thread: ev.thread,
                    addr: ev.addr,
                    kind: ev.kind,
                    other_core: CoreId(core),
                    instr_index: ev.instr_index,
                });
            }
        }

        // -- Memory path: the vector analogue of the main-memory
        // timestamps (§2.5). Never reported; joined on memory responses.
        if ev.path.from_memory() {
            let mem = if is_write {
                let mut m = self.mem_write_vc.clone();
                m.join(&self.mem_read_vc);
                m
            } else {
                self.mem_write_vc.clone()
            };
            if !mem.le(&self.vcs[t]) {
                joins.push(mem);
            }
        }

        // -- Clock updates.
        if is_sync || self.cfg.join_on_races {
            for j in &joins {
                self.vcs[t].join(j);
            }
        } else {
            // Only synchronization-induced joins apply.
            for j in &joins {
                if ev.kind == AccessKind::SyncRead {
                    self.vcs[t].join(j);
                }
            }
        }

        // -- Update local history with the (possibly joined) clock. The
        // clock is only cloned when a new stamp entry is actually
        // pushed; repeat accesses under an unchanged clock stay
        // allocation-free.
        let ts_per_line = if self.cfg.ts_per_line == usize::MAX {
            usize::MAX
        } else {
            self.cfg.ts_per_line
        };
        let h = self.hist[my_core].entry_or_default(line);
        let displaced = if h.newest().map(|e| &e.stamp) == Some(&self.vcs[t]) {
            None
        } else {
            h.push_stamp(self.vcs[t].clone(), ts_per_line)
        };
        h.newest_mut().expect("just ensured").set(word, is_write);
        self.core_join[my_core].join(&self.vcs[t]);
        self.next_version += 1;
        self.stamp_versions[my_core].insert(line, self.next_version);
        if let Some(old) = displaced {
            if old.any_read() {
                self.mem_read_vc.join(&old.stamp);
            }
            if old.any_written() {
                self.mem_write_vc.join(&old.stamp);
                match self.shed_writes[my_core].get_mut(line) {
                    Some(vc) => vc.join(&old.stamp),
                    None => {
                        self.shed_writes[my_core].insert(line, old.stamp);
                    }
                }
            }
        }

        // -- Tick after synchronization writes.
        if ev.kind == AccessKind::SyncWrite {
            self.vcs[t].tick(t);
        }

        ObserverOutcome::NONE
    }

    fn on_thread_migrated(
        &mut self,
        thread: cord_trace::types::ThreadId,
        _from: CoreId,
        to: CoreId,
    ) {
        let join = self.core_join[to.index()].clone();
        self.vcs[thread.index()].join(&join);
    }

    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        if self.tracks_level(level) && self.cfg.capacity != CapacityMode::Unlimited {
            // Revive-and-reset a parked arena slot rather than allocating
            // a fresh history per fill.
            self.hist[core.index()].entry_or_default(line).reset();
        }
    }

    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        if self.cfg.capacity == CapacityMode::Unlimited || !self.tracks_level(removal.level) {
            return ObserverOutcome::NONE;
        }
        self.shed_writes[removal.core.index()].remove(removal.line);
        let mut drained = std::mem::take(&mut self.fold_scratch);
        drained.clear();
        if let Some(h) = self.hist[removal.core.index()].vacate(removal.line) {
            h.drain_into(&mut drained);
            // Capacity evictions fold into the memory vector timestamps;
            // invalidations are already covered by the requester's
            // response-tag join.
            if removal.cause == cord_sim::observer::RemovalCause::Capacity {
                for e in &drained {
                    if e.any_read() {
                        self.mem_read_vc.join(&e.stamp);
                    }
                    if e.any_written() {
                        self.mem_write_vc.join(&e.stamp);
                    }
                }
            }
        }
        drained.clear();
        self.fold_scratch = drained;
        ObserverOutcome::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_sim::config::MachineConfig;
    use cord_sim::engine::{InjectionPlan, Machine};
    use cord_trace::builder::WorkloadBuilder;
    use cord_trace::program::Workload;

    fn run_cfg(
        w: &Workload,
        cfg: VcConfig,
        mc: MachineConfig,
        plan: InjectionPlan,
        seed: u64,
    ) -> VcLimitedDetector {
        let det = VcLimitedDetector::new(cfg, w.num_threads(), mc.cores);
        let m = Machine::new(mc, w, det, seed, plan);
        let (_, det) = m.run().expect("no deadlock");
        det
    }

    fn flag_workload() -> Workload {
        let mut b = WorkloadBuilder::new("flag", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(10_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        b.build()
    }

    #[test]
    fn synchronized_flag_clean_under_all_capacities() {
        for cfg in [
            VcConfig::inf_cache(),
            VcConfig::l2_cache(),
            VcConfig::l1_cache(),
        ] {
            let mc = if cfg.capacity == CapacityMode::Unlimited {
                MachineConfig::infinite_cache()
            } else {
                MachineConfig::paper_4core()
            };
            let det = run_cfg(&flag_workload(), cfg, mc, InjectionPlan::none(), 1);
            assert!(det.races().is_empty(), "{cfg:?}: {:?}", det.races());
        }
    }

    #[test]
    fn removed_wait_detected_by_inf_cache() {
        let det = run_cfg(
            &flag_workload(),
            VcConfig::inf_cache(),
            MachineConfig::infinite_cache(),
            InjectionPlan::remove_nth(0),
            3,
        );
        assert!(det.found_any());
    }

    #[test]
    fn removed_wait_detected_by_l2_cache() {
        let det = run_cfg(
            &flag_workload(),
            VcConfig::l2_cache(),
            MachineConfig::paper_4core(),
            InjectionPlan::remove_nth(0),
            3,
        );
        assert!(det.found_any());
    }

    #[test]
    fn capacity_pressure_hurts_detection() {
        // A racy pair separated by a large streaming working set: with
        // history limited to the L1 the writer's timestamp is displaced
        // (folded into memory, unreported) before the reader arrives,
        // while InfCache still catches it.
        let mut b = WorkloadBuilder::new("pressure", 2);
        let x = b.alloc_line_aligned(1);
        let filler = b.alloc_line_aligned(8 * 1024);
        b.thread_mut(0).write(x.word(0));
        {
            let tb = &mut b.thread_mut(0);
            for i in 0..512u64 {
                tb.write(filler.word(i * 16));
            }
        }
        b.thread_mut(1).compute(2_000_000).read(x.word(0));
        let w = b.build();
        let inf = run_cfg(
            &w,
            VcConfig::inf_cache(),
            MachineConfig::infinite_cache(),
            InjectionPlan::none(),
            5,
        );
        assert!(inf.found_any(), "InfCache must catch the race");
        let l1 = run_cfg(
            &w,
            VcConfig::l1_cache(),
            MachineConfig::paper_4core(),
            InjectionPlan::none(),
            5,
        );
        assert!(
            !l1.found_any(),
            "L1-limited history loses the displaced timestamp: {:?}",
            l1.races()
        );
    }

    #[test]
    fn join_on_races_suppresses_dependent_races() {
        // Figure 3: after the first race joins the clocks, the second
        // racy pair looks ordered. With join_on_races = false (oracle
        // behaviour) both are found.
        let mut b = WorkloadBuilder::new("fig3", 2);
        let x = b.alloc_line_aligned(1);
        let y = b.alloc_line_aligned(1);
        b.thread_mut(0).write(x.word(0)).write(y.word(0));
        b.thread_mut(1)
            .compute(100_000)
            .read(x.word(0))
            .read(y.word(0));
        let w = b.build();
        let joined = run_cfg(
            &w,
            VcConfig::inf_cache(),
            MachineConfig::infinite_cache(),
            InjectionPlan::none(),
            7,
        );
        let mut no_join_cfg = VcConfig::inf_cache();
        no_join_cfg.join_on_races = false;
        let independent = run_cfg(
            &w,
            no_join_cfg,
            MachineConfig::infinite_cache(),
            InjectionPlan::none(),
            7,
        );
        assert_eq!(joined.data_race_count(), 1);
        assert_eq!(independent.data_race_count(), 2);
    }
}
