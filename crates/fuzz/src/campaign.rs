//! Pool-parallel fuzz campaigns.
//!
//! A campaign fans `count` seed-derived cases over a `cord-pool`
//! worker pool. Determinism is load-bearing: case seeds are a pure
//! function of the master seed and the case index, results come back
//! in submission order (`run_ordered`), and shrinking plus reproducer
//! writing happen serially afterwards in index order — so a campaign's
//! rendered report is byte-identical across reruns and across any
//! `--jobs` count. The optional wall-clock budget is only checked
//! between chunks and exists as a CI safety valve; when it fires, the
//! report says so and the truncation point (alone) becomes
//! timing-dependent.

use crate::corpus::{write_reproducer, Reproducer};
use crate::gen::{generate, GenConfig};
use crate::oracle::{check_workload, OracleOptions, OracleReport};
use crate::shrink::shrink_workload;
use cord_pool::Pool;
use cord_trace::program::Workload;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Which generator population a campaign draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMode {
    /// Mostly-safe phases with racy ones mixed in (the default).
    Mixed,
    /// Race-free-by-construction workloads; the oracle additionally
    /// requires an empty ground truth on every run.
    RaceFree,
}

impl GenMode {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<GenMode> {
        match s {
            "mixed" => Some(GenMode::Mixed),
            "race-free" => Some(GenMode::RaceFree),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            GenMode::Mixed => "mixed",
            GenMode::RaceFree => "race-free",
        }
    }
}

/// Everything a campaign needs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; case `i` derives its own seed from it.
    pub master_seed: u64,
    /// Number of cases.
    pub count: usize,
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Generator population.
    pub mode: GenMode,
    /// Generator sizing knobs (`race_free` is overridden by `mode`).
    pub gen: GenConfig,
    /// Oracle battery knobs (`expect_race_free` is overridden by
    /// `mode`).
    pub oracle: OracleOptions,
    /// Oracle evaluations the shrinker may spend per failing case.
    pub shrink_candidates: usize,
    /// Where to write reproducers for failing cases (`None` = don't).
    pub corpus_dir: Option<PathBuf>,
    /// Wall-clock safety valve, checked between chunks.
    pub budget_secs: Option<u64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            master_seed: 1,
            count: 100,
            jobs: 1,
            mode: GenMode::Mixed,
            gen: GenConfig::default(),
            oracle: OracleOptions::default(),
            shrink_candidates: 300,
            corpus_dir: None,
            budget_secs: None,
        }
    }
}

/// The deterministic seed of case `i` (same idiom as the sweep
/// runner's `run_seed`).
pub fn case_seed(master_seed: u64, i: usize) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
}

/// One case's outcome.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case index within the campaign.
    pub index: usize,
    /// The case's derived generator seed.
    pub seed: u64,
    /// The oracle's findings (empty when the worker panicked instead).
    pub oracle: OracleReport,
    /// Panic message, if the worker died.
    pub panic: Option<String>,
    /// `(threads, total_ops)` of the shrunk reproducer, when shrinking
    /// ran and made progress or reproduced at all.
    pub shrunk: Option<(usize, usize)>,
    /// Where the reproducer was written, if a corpus dir was set.
    pub reproducer: Option<PathBuf>,
}

impl CaseReport {
    /// `true` when the case neither violated an invariant nor panicked.
    pub fn passed(&self) -> bool {
        self.panic.is_none() && self.oracle.passed()
    }
}

/// The whole campaign's outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Per-case outcomes, in index order, for the cases that ran.
    pub cases: Vec<CaseReport>,
    /// Cases requested.
    pub requested: usize,
    /// `true` when the wall-clock budget truncated the campaign.
    pub budget_exhausted: bool,
}

impl CampaignReport {
    /// Failing cases (violations or panics).
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| !c.passed()).count()
    }

    /// `true` when every case that ran passed and nothing was cut
    /// short.
    pub fn clean(&self) -> bool {
        self.failures() == 0 && !self.budget_exhausted
    }

    /// Renders the deterministic text report (stable across reruns and
    /// job counts; no timings, no timestamps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut racy_cases = 0usize;
        let mut truth_races = 0usize;
        let mut events = 0usize;
        let mut inj_checked = 0usize;
        let mut inj_aborted = 0usize;
        let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
        for c in &self.cases {
            if c.oracle.truth_races > 0 {
                racy_cases += 1;
            }
            truth_races += c.oracle.truth_races;
            events += c.oracle.events;
            inj_checked += c.oracle.injections_checked;
            inj_aborted += c.oracle.injections_aborted;
            for v in &c.oracle.violations {
                *kinds.entry(v.kind().to_owned()).or_insert(0) += 1;
            }
            if c.panic.is_some() {
                *kinds.entry("panic".to_owned()).or_insert(0) += 1;
            }
        }
        let _ = writeln!(
            out,
            "fuzz campaign: {} of {} cases, {} failures",
            self.cases.len(),
            self.requested,
            self.failures(),
        );
        let _ = writeln!(
            out,
            "  accesses observed: {events}; racy cases: {racy_cases}; \
             ground-truth racy words: {truth_races}"
        );
        let _ = writeln!(
            out,
            "  injection re-runs: {inj_checked} checked, {inj_aborted} aborted (expected)"
        );
        if self.budget_exhausted {
            let _ = writeln!(out, "  WALL-CLOCK BUDGET EXHAUSTED (campaign truncated)");
        }
        for (kind, n) in &kinds {
            let _ = writeln!(out, "  violation {kind}: {n}");
        }
        for c in &self.cases {
            if c.passed() {
                continue;
            }
            let _ = writeln!(out, "case {} seed {:#018x}:", c.index, c.seed);
            if let Some(msg) = &c.panic {
                let _ = writeln!(out, "  panicked: {msg}");
            }
            for v in &c.oracle.violations {
                let _ = writeln!(out, "  {v}");
            }
            if let Some((threads, ops)) = c.shrunk {
                let _ = writeln!(out, "  shrunk to {threads} threads, {ops} ops");
            }
            if let Some(path) = &c.reproducer {
                let _ = writeln!(out, "  reproducer: {}", path.display());
            }
        }
        out
    }
}

fn effective_configs(cfg: &CampaignConfig) -> (GenConfig, OracleOptions) {
    let mut g = cfg.gen.clone();
    let mut o = cfg.oracle.clone();
    match cfg.mode {
        GenMode::Mixed => {
            g.race_free = false;
            o.expect_race_free = false;
        }
        GenMode::RaceFree => {
            g.race_free = true;
            o.expect_race_free = true;
        }
    }
    (g, o)
}

/// Runs a campaign. `progress` is called after each chunk with
/// `(cases_done, cases_total)` — report rendering stays deterministic
/// because progress goes to the caller (stderr), never into the
/// report.
pub fn run_campaign(cfg: &CampaignConfig, progress: impl FnMut(usize, usize)) -> CampaignReport {
    let indices: Vec<usize> = (0..cfg.count).collect();
    run_campaign_cases(cfg, &indices, progress)
}

/// Runs an explicit set of campaign-global case indices — the
/// multi-process sharding hook. Each case keeps its *global* index and
/// the seed derived from it, so a case computes exactly the same
/// result whether it runs in a serial campaign or on shard 7 of 8;
/// merging per-shard `CaseReport`s back into global index order
/// reproduces the serial campaign byte for byte.
///
/// `cfg.count` is ignored here; `indices` is the work list, and the
/// returned report's `requested` is `indices.len()`.
pub fn run_campaign_cases(
    cfg: &CampaignConfig,
    indices: &[usize],
    mut progress: impl FnMut(usize, usize),
) -> CampaignReport {
    let (gen_cfg, oracle_opts) = effective_configs(cfg);
    let pool = Pool::new(cfg.jobs.max(1));
    let chunk = (cfg.jobs.max(1) * 8).max(16);
    let start = Instant::now();

    let mut report = CampaignReport {
        requested: indices.len(),
        ..CampaignReport::default()
    };

    let mut next = 0usize;
    while next < indices.len() {
        if let Some(budget) = cfg.budget_secs {
            if start.elapsed().as_secs() >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        let end = (next + chunk).min(indices.len());
        let jobs: Vec<_> = indices[next..end]
            .iter()
            .map(|&i| {
                let gen_cfg = gen_cfg.clone();
                let oracle_opts = oracle_opts.clone();
                let seed = case_seed(cfg.master_seed, i);
                move || -> (Workload, OracleReport) {
                    let w = generate(&gen_cfg, seed);
                    let oracle = check_workload(&w, &oracle_opts);
                    (w, oracle)
                }
            })
            .collect();
        let results = pool.run_ordered(jobs);
        for (offset, result) in results.into_iter().enumerate() {
            let index = indices[next + offset];
            let seed = case_seed(cfg.master_seed, index);
            let mut case = CaseReport {
                index,
                seed,
                oracle: OracleReport::default(),
                panic: None,
                shrunk: None,
                reproducer: None,
            };
            match result {
                Ok((workload, oracle)) => {
                    case.oracle = oracle;
                    if !case.oracle.passed() {
                        shrink_and_record(cfg, &oracle_opts, &workload, &mut case);
                    }
                }
                Err(p) => case.panic = Some(p.message),
            }
            report.cases.push(case);
        }
        next = end;
        progress(next, indices.len());
    }
    report
}

/// Serial post-processing of one failing case: shrink against the
/// first violation's kind and (optionally) write the reproducer.
fn shrink_and_record(
    cfg: &CampaignConfig,
    oracle_opts: &OracleOptions,
    workload: &Workload,
    case: &mut CaseReport,
) {
    let Some(first) = case.oracle.violations.first() else {
        return;
    };
    let kind = first.kind();
    let (small, violation) =
        match shrink_workload(workload, kind, oracle_opts, cfg.shrink_candidates) {
            Some(out) => (out.workload, out.violation),
            // Couldn't reproduce under the trimmed battery (should not
            // happen for a deterministic oracle); fall back to the
            // original workload so the reproducer still lands on disk.
            None => (workload.clone(), first.clone()),
        };
    case.shrunk = Some((small.num_threads(), small.total_ops()));
    if let Some(dir) = &cfg.corpus_dir {
        let rep = Reproducer {
            workload: small,
            seed: Some(case.seed),
            violation_kind: Some(violation.kind().to_owned()),
            detail: Some(violation.to_string()),
        };
        match write_reproducer(dir, &rep) {
            Ok(path) => case.reproducer = Some(path),
            // Corpus write failure must not kill the campaign; the
            // case already records the violation itself.
            Err(_) => case.reproducer = None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(jobs: usize) -> CampaignConfig {
        CampaignConfig {
            master_seed: 42,
            count: 12,
            jobs,
            mode: GenMode::Mixed,
            gen: GenConfig::default().short(),
            oracle: OracleOptions {
                check_rerun: false,
                max_suppressions: 1,
                max_injections: 1,
                ..OracleOptions::default()
            },
            shrink_candidates: 50,
            corpus_dir: None,
            budget_secs: None,
        }
    }

    #[test]
    fn campaign_is_clean_and_jobs_invariant() {
        let serial = run_campaign(&quick_config(1), |_, _| {});
        let parallel = run_campaign(&quick_config(4), |_, _| {});
        assert!(serial.clean(), "{}", serial.render());
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn race_free_mode_forces_both_sides() {
        let mut cfg = quick_config(2);
        cfg.mode = GenMode::RaceFree;
        cfg.count = 6;
        let report = run_campaign(&cfg, |_, _| {});
        assert!(report.clean(), "{}", report.render());
        // Race-free cases must not observe any ground-truth races.
        assert!(report.cases.iter().all(|c| c.oracle.truth_races == 0));
    }

    #[test]
    fn sharded_cases_merge_to_the_serial_campaign() {
        let cfg = quick_config(2);
        let serial = run_campaign(&cfg, |_, _| {});
        // Round-robin over 3 "shards", then merge by global index —
        // the same shape the cord-shard coordinator uses.
        let mut cases = Vec::new();
        for shard in 0..3usize {
            let idx: Vec<usize> = (shard..cfg.count).step_by(3).collect();
            cases.extend(run_campaign_cases(&cfg, &idx, |_, _| {}).cases);
        }
        cases.sort_by_key(|c| c.index);
        let merged = CampaignReport {
            cases,
            requested: cfg.count,
            budget_exhausted: false,
        };
        assert_eq!(merged.render(), serial.render());
    }

    #[test]
    fn case_seeds_are_stable() {
        // Pinned: reproducers name these seeds; changing the derivation
        // would orphan every corpus file.
        assert_eq!(case_seed(1, 0), 0x9E37_79B9_7F4A_7C15);
        assert_eq!(case_seed(1, 1), 0x9E37_79B9_7F4A_7C16);
    }

    #[test]
    fn mode_parse_roundtrips() {
        for m in [GenMode::Mixed, GenMode::RaceFree] {
            assert_eq!(GenMode::parse(m.name()), Some(m));
        }
        assert_eq!(GenMode::parse("bogus"), None);
    }
}
