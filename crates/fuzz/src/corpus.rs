//! Self-contained reproducers on disk.
//!
//! A reproducer is a workload in the `textfmt` format with its fuzz
//! provenance (generator seed, violation kind, rendered detail) carried
//! as `#` comment lines — the file round-trips through the stock
//! [`cord_trace::textfmt`] parser, which skips comments, so any tool
//! that reads workloads reads reproducers too. Comment lines sit right
//! after the `workload` header because the parser requires the magic
//! line first and the `workload` line second.
//!
//! The committed corpus under `crates/fuzz/corpus/` pins workload
//! shapes that exposed real bugs in earlier PRs; the regression test
//! replays each through the full oracle battery and requires a clean
//! pass.

use crate::oracle::{check_workload, OracleOptions, OracleReport};
use cord_trace::program::Workload;
use cord_trace::textfmt::{from_text, to_text, HEADER};
use std::fmt;
use std::path::{Path, PathBuf};

/// A workload plus the provenance of the failure it reproduces.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The (usually shrunk) workload.
    pub workload: Workload,
    /// Generator seed that produced the original workload, if fuzzed.
    pub seed: Option<u64>,
    /// [`Violation::kind`] string of the original failure, if any.
    ///
    /// [`Violation::kind`]: crate::oracle::Violation::kind
    pub violation_kind: Option<String>,
    /// Human-readable description of the original failure.
    pub detail: Option<String>,
}

/// Errors reading a corpus from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The rendered I/O error.
        detail: String,
    },
    /// A corpus file did not parse as a workload.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The rendered parse error.
        detail: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, detail } => {
                write!(f, "corpus I/O error at {}: {detail}", path.display())
            }
            CorpusError::Parse { path, detail } => {
                write!(f, "corpus parse error in {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// Renders a reproducer to the commented `textfmt` form.
pub fn render(rep: &Reproducer) -> String {
    let body = to_text(&rep.workload);
    let mut lines = body.lines();
    let header = lines.next().unwrap_or(HEADER);
    let workload_line = lines.next().unwrap_or_default();
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    out.push_str(workload_line);
    out.push('\n');
    if let Some(seed) = rep.seed {
        out.push_str(&format!("# fuzz-seed: {seed:#018x}\n"));
    }
    if let Some(kind) = &rep.violation_kind {
        out.push_str(&format!("# violation: {kind}\n"));
    }
    if let Some(detail) = &rep.detail {
        for line in detail.lines() {
            out.push_str(&format!("# detail: {line}\n"));
        }
    }
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Parses a reproducer (provenance comments are optional, so any plain
/// `textfmt` workload loads too).
///
/// # Errors
///
/// Returns [`CorpusError::Parse`] when the text is not a valid
/// workload; `path` is used only for error attribution.
pub fn parse(text: &str, path: &Path) -> Result<Reproducer, CorpusError> {
    let workload = from_text(text).map_err(|e| CorpusError::Parse {
        path: path.to_path_buf(),
        detail: format!("{e:?}"),
    })?;
    let mut seed = None;
    let mut violation_kind = None;
    let mut detail: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# fuzz-seed:") {
            let rest = rest.trim();
            seed = rest
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .or_else(|| rest.parse().ok());
        } else if let Some(rest) = line.strip_prefix("# violation:") {
            violation_kind = Some(rest.trim().to_owned());
        } else if let Some(rest) = line.strip_prefix("# detail:") {
            match &mut detail {
                Some(d) => {
                    d.push('\n');
                    d.push_str(rest.trim());
                }
                None => detail = Some(rest.trim().to_owned()),
            }
        }
    }
    Ok(Reproducer {
        workload,
        seed,
        violation_kind,
        detail,
    })
}

/// A filesystem-safe file stem derived from the workload name.
fn file_stem(rep: &Reproducer) -> String {
    let mut stem: String = rep
        .workload
        .name()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if stem.is_empty() {
        stem.push_str("workload");
    }
    stem
}

/// Writes a reproducer into `dir` (created if needed) as
/// `<name>.txt`, returning the path.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] on filesystem failure.
pub fn write_reproducer(dir: &Path, rep: &Reproducer) -> Result<PathBuf, CorpusError> {
    std::fs::create_dir_all(dir).map_err(|e| CorpusError::Io {
        path: dir.to_path_buf(),
        detail: e.to_string(),
    })?;
    let path = dir.join(format!("{}.txt", file_stem(rep)));
    std::fs::write(&path, render(rep)).map_err(|e| CorpusError::Io {
        path: path.clone(),
        detail: e.to_string(),
    })?;
    Ok(path)
}

/// Loads every `*.txt` reproducer in `dir`, sorted by filename for
/// deterministic iteration. A missing directory is an empty corpus.
///
/// # Errors
///
/// Returns the first [`CorpusError`] encountered.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, CorpusError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| CorpusError::Io {
        path: dir.to_path_buf(),
        detail: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).map_err(|e| CorpusError::Io {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        let rep = parse(&text, &path)?;
        out.push((path, rep));
    }
    Ok(out)
}

/// Replays one reproducer through the full oracle battery. A corpus
/// entry pins a *fixed* bug shape, so a clean report is the expected
/// (regression-free) outcome.
pub fn replay(rep: &Reproducer, opts: &OracleOptions) -> OracleReport {
    check_workload(&rep.workload, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn render_parse_roundtrip_preserves_everything() {
        let w = generate(&GenConfig::default().short(), 7);
        let rep = Reproducer {
            workload: w.clone(),
            seed: Some(7),
            violation_kind: Some("cord-false-positive".to_owned()),
            detail: Some("CORD reported non-race word 0x140\nsecond line".to_owned()),
        };
        let text = render(&rep);
        let back = parse(&text, Path::new("mem.txt")).expect("parses");
        assert_eq!(back.workload, w);
        assert_eq!(back.seed, Some(7));
        assert_eq!(back.violation_kind.as_deref(), Some("cord-false-positive"));
        assert_eq!(
            back.detail.as_deref(),
            Some("CORD reported non-race word 0x140\nsecond line")
        );
        // Rendering is stable (no timestamps, no map iteration).
        assert_eq!(text, render(&back));
    }

    #[test]
    fn plain_textfmt_loads_without_provenance() {
        let w = generate(&GenConfig::race_free().short(), 3);
        let text = cord_trace::textfmt::to_text(&w);
        let rep = parse(&text, Path::new("plain.txt")).expect("parses");
        assert_eq!(rep.workload, w);
        assert!(rep.seed.is_none());
        assert!(rep.violation_kind.is_none());
    }

    #[test]
    fn write_and_load_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cord-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut written = Vec::new();
        for seed in [11u64, 12, 13] {
            let rep = Reproducer {
                workload: generate(&GenConfig::default().short(), seed),
                seed: Some(seed),
                violation_kind: None,
                detail: None,
            };
            written.push(write_reproducer(&dir, &rep).expect("write"));
        }
        let loaded = load_dir(&dir).expect("load");
        assert_eq!(loaded.len(), 3);
        // Sorted by filename, and contents round-trip.
        for window in loaded.windows(2) {
            assert!(window[0].0 < window[1].0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let loaded = load_dir(Path::new("/nonexistent/cord-fuzz-nowhere")).expect("empty");
        assert!(loaded.is_empty());
    }
}
