//! Seed-deterministic random workload generation.
//!
//! A generated workload is a sequence of *phases*. Each phase allocates
//! fresh data regions, so cross-phase conflicts cannot exist and the
//! race-freedom of a workload is the conjunction of the race-freedom of
//! its phases — the compositional argument that makes the
//! race-free-by-construction mode sound. Safe phases order every
//! cross-thread conflict through a lock, a flag arc, or a barrier;
//! racy phases (only emitted when [`GenConfig::race_free`] is off)
//! deliberately leave conflicts unordered and let the oracle's ground
//! truth decide what actually raced.
//!
//! Everything is a pure function of `(config, seed)`: same inputs, same
//! workload, byte for byte.

use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use cord_trace::types::BarrierId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator knobs. `Default` is the mixed fuzzing configuration; use
/// [`GenConfig::race_free`] for the no-false-positive oracle mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Minimum thread count (>= 1).
    pub min_threads: usize,
    /// Maximum thread count. May exceed the 4 machine cores: surplus
    /// threads exercise scheduling, migration, and the §2.7.4 resync.
    pub max_threads: usize,
    /// Maximum number of phases per workload.
    pub max_phases: usize,
    /// Maximum words in one phase's shared region.
    pub max_region_words: u64,
    /// Maximum cycles of one `compute` filler op.
    pub max_compute: u32,
    /// Only emit phases whose cross-thread conflicts are ordered by
    /// construction; the oracle then treats *any* reported race as a
    /// false positive.
    pub race_free: bool,
    /// Restrict sampling to the lock-free phase vocabulary (atomic RMW
    /// shapes: fetch-add counters, CAS publication, CAS hammering, and
    /// their racy torn variants). Composes with `race_free`.
    pub lockfree: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_threads: 2,
            max_threads: 6,
            max_phases: 6,
            max_region_words: 12,
            max_compute: 150,
            race_free: false,
            lockfree: false,
        }
    }
}

impl GenConfig {
    /// The race-free-by-construction configuration.
    pub fn race_free() -> Self {
        GenConfig {
            race_free: true,
            ..Self::default()
        }
    }

    /// The lock-free (atomic RMW) phase vocabulary, mixed mode.
    pub fn lockfree() -> Self {
        GenConfig {
            lockfree: true,
            ..Self::default()
        }
    }

    /// Shrinks the knobs for short-workload test drivers (MESI
    /// coverage, proptest cases): fewer threads and phases, smaller
    /// regions, less filler compute.
    #[must_use]
    pub fn short(mut self) -> Self {
        self.max_threads = self.max_threads.min(4);
        self.max_phases = self.max_phases.min(3);
        self.max_region_words = self.max_region_words.min(8);
        self.max_compute = self.max_compute.min(60);
        self
    }

    /// Widens the knobs to a `cores`-sized machine (the 8/16/32-core
    /// sweep axis): thread counts track the core count with slight
    /// oversubscription so scheduling and migration stay exercised,
    /// and the shared region grows with the machine so traffic spreads
    /// across directory home banks instead of one hot line.
    #[must_use]
    pub fn wide(mut self, cores: usize) -> Self {
        self.min_threads = cores.max(2);
        self.max_threads = cores + 2;
        self.max_region_words = self.max_region_words.max(4 * cores as u64);
        self
    }
}

/// The phase vocabulary. Safe phases come first; the racy tail is only
/// sampled when `race_free` is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    /// Each thread updates only its own private region.
    Private,
    /// All threads update distinct words of one shared *line* (false
    /// sharing: coherence ping-pong, no data race).
    FalseSharing,
    /// All threads update a shared region inside (possibly nested)
    /// critical sections; locks are acquired in ID order.
    Locked,
    /// A producer/consumer chain: thread `k` waits for flag `k-1`,
    /// reads its predecessor's slice, writes its own, sets flag `k`.
    Pipeline,
    /// Write own slot, barrier, read the left neighbour's slot.
    Exchange,
    /// A flag reused across two rounds, reset between two barriers.
    ResetReuse,
    /// Unprotected conflicting accesses to a small shared region.
    Unprotected,
    /// A locked region with one thread bypassing the lock.
    MixedProtection,
    /// Threads hammer one fetch-add counter between private updates
    /// (pure RMW traffic, no shared data: safe at any timing).
    FetchAddCounter,
    /// Write own slice, CAS-publish, barrier, CAS-acquire, read the
    /// left neighbour's slice (the barrier makes it sound for every
    /// seed; the CASes add the RMW clock traffic under test).
    CasPublish,
    /// All threads CAS-loop one word repeatedly around private updates
    /// (retry storms; no shared data).
    CasHammer,
    /// Producer writes then CAS-publishes; consumers CAS then read with
    /// no barrier — ordered only if timing cooperates (ground truth
    /// decides).
    CasPublishNoBarrier,
    /// A seqlock with the readers' acquire bracket missing: snapshot
    /// reads race the writer's bracketed writes (the classic torn
    /// read).
    SeqlockTorn,
}

const SAFE_KINDS: &[PhaseKind] = &[
    PhaseKind::Private,
    PhaseKind::FalseSharing,
    PhaseKind::Locked,
    PhaseKind::Pipeline,
    PhaseKind::Exchange,
    PhaseKind::ResetReuse,
];

const RACY_KINDS: &[PhaseKind] = &[PhaseKind::Unprotected, PhaseKind::MixedProtection];

const LOCKFREE_SAFE_KINDS: &[PhaseKind] = &[
    PhaseKind::FetchAddCounter,
    PhaseKind::CasPublish,
    PhaseKind::CasHammer,
];

const LOCKFREE_RACY_KINDS: &[PhaseKind] = &[PhaseKind::CasPublishNoBarrier, PhaseKind::SeqlockTorn];

/// Generates one workload from `(cfg, seed)`.
///
/// The result always passes [`Workload::validate`]
/// (checked with a debug assertion); the machine's structural
/// preconditions are the generator's contract.
///
/// [`Workload::validate`]: cord_trace::program::Workload::validate
pub fn generate(cfg: &GenConfig, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let threads = rng.gen_range(cfg.min_threads..=cfg.max_threads.max(cfg.min_threads));
    let phases = rng.gen_range(1..=cfg.max_phases.max(1));
    let mut b = WorkloadBuilder::new(format!("fuzz-{seed:016x}"), threads);
    // One sense-reversing barrier, allocated lazily and reused by every
    // barrier-shaped phase (reuse exercises the sense flip).
    let mut barrier: Option<BarrierId> = None;

    let (safe, racy) = if cfg.lockfree {
        (LOCKFREE_SAFE_KINDS, LOCKFREE_RACY_KINDS)
    } else {
        (SAFE_KINDS, RACY_KINDS)
    };
    for _ in 0..phases {
        let kind = if cfg.race_free || rng.gen_bool(0.7) {
            safe[rng.gen_range(0..safe.len())]
        } else {
            racy[rng.gen_range(0..racy.len())]
        };
        emit_phase(&mut b, &mut rng, cfg, threads, kind, &mut barrier);
    }

    let w = b.build();
    debug_assert_eq!(w.validate(), Ok(()), "generator emitted invalid workload");
    w
}

fn jitter(b: &mut WorkloadBuilder, rng: &mut SmallRng, cfg: &GenConfig, t: usize) {
    if cfg.max_compute > 0 && rng.gen_bool(0.5) {
        let c = rng.gen_range(1..=cfg.max_compute);
        b.thread_mut(t).compute(c);
    }
}

fn the_barrier(b: &mut WorkloadBuilder, barrier: &mut Option<BarrierId>) -> BarrierId {
    *barrier.get_or_insert_with(|| b.alloc_barrier())
}

fn emit_phase(
    b: &mut WorkloadBuilder,
    rng: &mut SmallRng,
    cfg: &GenConfig,
    threads: usize,
    kind: PhaseKind,
    barrier: &mut Option<BarrierId>,
) {
    let tn = threads as u64;
    match kind {
        PhaseKind::Private => {
            let per = rng.gen_range(1..=cfg.max_region_words.min(4));
            let region = b.alloc_line_aligned(per * tn);
            for t in 0..threads {
                for i in 0..per {
                    b.thread_mut(t).update(region.word(t as u64 * per + i));
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::FalseSharing => {
            // One word per thread, all on one line (a 64 B line holds 16
            // words; at most 6 threads fit comfortably).
            let region = b.alloc_line_aligned(tn);
            let rounds = rng.gen_range(1..=3u32);
            for t in 0..threads {
                for _ in 0..rounds {
                    b.thread_mut(t).update(region.word(t as u64));
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::Locked => {
            let nest = rng.gen_range(1..=2usize);
            let locks = b.alloc_locks(nest as u32);
            let span = rng.gen_range(1..=cfg.max_region_words);
            let region = b.alloc_line_aligned(span);
            let rounds = rng.gen_range(1..=3u64);
            for t in 0..threads {
                for r in 0..rounds {
                    let tb = &mut b.thread_mut(t);
                    // Nested acquisition in ID order: deadlock-free.
                    for l in &locks {
                        tb.lock(*l);
                    }
                    tb.update(region.word((t as u64 + r) % span));
                    for l in locks.iter().rev() {
                        tb.unlock(*l);
                    }
                    jitter(b, rng, cfg, t);
                }
            }
        }
        PhaseKind::Pipeline => {
            // Slices are line-aligned per thread so the arcs are real
            // cross-core traffic, not same-line noise.
            let per = rng.gen_range(1..=3u64);
            let region = b.alloc_line_aligned(16 * tn);
            let flags = b.alloc_flags(threads as u32 - 1);
            for t in 0..threads {
                let tb = &mut b.thread_mut(t);
                if t > 0 {
                    tb.flag_wait(flags[t - 1]);
                    for i in 0..per {
                        tb.read(region.word((t as u64 - 1) * 16 + i));
                    }
                }
                for i in 0..per {
                    tb.write(region.word(t as u64 * 16 + i));
                }
                if t + 1 < threads {
                    tb.flag_set(flags[t]);
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::Exchange => {
            let bar = the_barrier(b, barrier);
            let region = b.alloc_line_aligned(16 * tn);
            for t in 0..threads {
                let tb = &mut b.thread_mut(t);
                tb.write(region.word(t as u64 * 16));
                tb.barrier(bar);
                let left = (t + threads - 1) % threads;
                tb.read(region.word(left as u64 * 16));
                tb.barrier(bar);
            }
        }
        PhaseKind::ResetReuse => {
            // Producer → consumers, twice over the same flag. The reset
            // sits between two barriers: the first keeps the reset after
            // every round-one wait, the second keeps round-two waits
            // after the reset (resetting with consumers still polling
            // round one would let a stale `set` leak into round two and
            // race).
            let bar = the_barrier(b, barrier);
            let flag = b.alloc_flag();
            let region = b.alloc_line_aligned(2);
            let producer = rng.gen_range(0..threads);
            for round in 0..2u64 {
                for t in 0..threads {
                    let tb = &mut b.thread_mut(t);
                    if t == producer {
                        tb.write(region.word(round));
                        tb.flag_set(flag);
                    } else {
                        tb.flag_wait(flag);
                        tb.read(region.word(round));
                    }
                }
                for t in 0..threads {
                    let tb = &mut b.thread_mut(t);
                    tb.barrier(bar);
                    if round == 0 {
                        if t == producer {
                            tb.flag_reset(flag);
                        }
                        tb.barrier(bar);
                    }
                }
            }
        }
        PhaseKind::Unprotected => {
            let span = rng.gen_range(1..=4u64);
            let region = b.alloc_line_aligned(span);
            // At least one write is guaranteed so a conflict exists to
            // be found (or proven ordered by the ground truth).
            b.thread_mut(0).write(region.word(0));
            for t in 0..threads {
                let ops = rng.gen_range(1..=3u32);
                for _ in 0..ops {
                    let word = region.word(rng.gen_range(0..span));
                    if rng.gen_bool(0.5) {
                        b.thread_mut(t).write(word);
                    } else {
                        b.thread_mut(t).read(word);
                    }
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::MixedProtection => {
            let lock = b.alloc_lock();
            let region = b.alloc_line_aligned(1);
            let rogue = rng.gen_range(0..threads);
            for t in 0..threads {
                if t == rogue {
                    b.thread_mut(t).update(region.word(0));
                } else {
                    b.thread_mut(t)
                        .lock(lock)
                        .update(region.word(0))
                        .unlock(lock);
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::FetchAddCounter => {
            let counter = b.alloc_atomic();
            let per = rng.gen_range(1..=cfg.max_region_words.min(4));
            let region = b.alloc_line_aligned(per * tn);
            let rounds = rng.gen_range(2..=5u64);
            for t in 0..threads {
                for r in 0..rounds {
                    let tb = &mut b.thread_mut(t);
                    tb.fetch_add(counter);
                    tb.update(region.word(t as u64 * per + r % per));
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::CasPublish => {
            let bar = the_barrier(b, barrier);
            let a = b.alloc_atomic();
            let per = rng.gen_range(1..=3u64);
            let region = b.alloc_line_aligned(16 * tn);
            for t in 0..threads {
                let tb = &mut b.thread_mut(t);
                for i in 0..per {
                    tb.write(region.word(t as u64 * 16 + i));
                }
                tb.cas_loop(a);
                tb.barrier(bar);
                tb.cas_loop(a);
                let left = (t + threads - 1) % threads;
                for i in 0..per {
                    tb.read(region.word(left as u64 * 16 + i));
                }
                tb.barrier(bar);
            }
        }
        PhaseKind::CasHammer => {
            let a = b.alloc_atomic();
            let per = rng.gen_range(1..=2u64);
            let region = b.alloc_line_aligned(per * tn);
            let rounds = rng.gen_range(2..=4u64);
            for t in 0..threads {
                for r in 0..rounds {
                    let tb = &mut b.thread_mut(t);
                    tb.cas_loop(a);
                    tb.update(region.word(t as u64 * per + r % per));
                }
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::CasPublishNoBarrier => {
            let a = b.alloc_atomic();
            let span = rng.gen_range(1..=4u64);
            let region = b.alloc_line_aligned(span);
            for i in 0..span {
                b.thread_mut(0).write(region.word(i));
            }
            b.thread_mut(0).cas_loop(a);
            for t in 1..threads {
                let tb = &mut b.thread_mut(t);
                tb.cas_loop(a);
                tb.read(region.word(rng.gen_range(0..span)));
                jitter(b, rng, cfg, t);
            }
        }
        PhaseKind::SeqlockTorn => {
            let a = b.alloc_atomic();
            let region = b.alloc_line_aligned(2);
            let writer = rng.gen_range(0..threads);
            for t in 0..threads {
                let tb = &mut b.thread_mut(t);
                if t == writer {
                    tb.cas_loop(a);
                    tb.write(region.word(0));
                    tb.write(region.word(1));
                    tb.cas_loop(a);
                } else {
                    // No acquire bracket: the snapshot can tear.
                    tb.read(region.word(0));
                    tb.read(region.word(1));
                }
                jitter(b, rng, cfg, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::textfmt;

    #[test]
    fn every_seed_validates() {
        for seed in 0..200 {
            let w = generate(&GenConfig::default(), seed);
            w.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(w.num_threads() >= 2);
            assert!(w.total_ops() > 0);
        }
        for seed in 0..200 {
            generate(&GenConfig::race_free(), seed).validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 42, 0xDEAD_BEEF] {
            let a = generate(&GenConfig::default(), seed);
            let b = generate(&GenConfig::default(), seed);
            assert_eq!(textfmt::to_text(&a), textfmt::to_text(&b));
        }
    }

    #[test]
    fn seeds_differ() {
        let a = textfmt::to_text(&generate(&GenConfig::default(), 1));
        let b = textfmt::to_text(&generate(&GenConfig::default(), 2));
        assert_ne!(a, b);
    }

    #[test]
    fn race_free_mode_emits_no_racy_phases() {
        // Structural proxy: racy phases never use locks *and* never
        // order their region accesses; the real soundness check is the
        // oracle's ground-truth pass over many seeds (see oracle tests).
        for seed in 0..100 {
            let w = generate(&GenConfig::race_free(), seed);
            assert!(w.validate().is_ok());
        }
    }

    #[test]
    fn wide_topologies_scale_with_cores() {
        for cores in [8usize, 16, 32] {
            let cfg = GenConfig::default().wide(cores);
            for seed in 0..10 {
                let w = generate(&cfg, seed);
                assert!(w.validate().is_ok());
                assert!(
                    (cores..=cores + 2).contains(&w.num_threads()),
                    "cores={cores}: got {} threads",
                    w.num_threads()
                );
            }
        }
    }

    #[test]
    fn lockfree_mode_emits_atomics_and_validates() {
        let mut with_atomics = 0;
        for seed in 0..100 {
            let w = generate(&GenConfig::lockfree(), seed);
            w.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if w.op_counts().atomics > 0 {
                with_atomics += 1;
            }
        }
        // Every lock-free phase allocates an atomic, so every workload
        // (>= 1 phase) carries RMW ops.
        assert_eq!(with_atomics, 100);
        let cfg = GenConfig {
            race_free: true,
            ..GenConfig::lockfree()
        };
        for seed in 0..100 {
            generate(&cfg, seed).validate().unwrap();
        }
    }

    #[test]
    fn lockfree_knob_leaves_the_default_stream_alone() {
        // The knob must only restrict the sampling pool when set:
        // default-config generation is byte-identical to a config that
        // merely spells out the new field.
        let spelled = GenConfig {
            lockfree: false,
            ..GenConfig::default()
        };
        for seed in [0, 7, 99] {
            assert_eq!(
                textfmt::to_text(&generate(&GenConfig::default(), seed)),
                textfmt::to_text(&generate(&spelled, seed))
            );
        }
    }

    #[test]
    fn textfmt_roundtrips() {
        for seed in 0..20 {
            let w = generate(&GenConfig::default(), seed);
            let text = textfmt::to_text(&w);
            let back = textfmt::from_text(&text).expect("roundtrip parse");
            assert_eq!(textfmt::to_text(&back), text);
        }
    }
}
