//! JSON codecs for campaign reports — the durable shard-checkpoint
//! format.
//!
//! The multi-process shard runner persists each completed case's
//! [`CaseReport`] into a per-shard checkpoint, so a worker killed at
//! any point can be respawned and resume past what it already proved.
//! That means every field the campaign report renders from must
//! round-trip losslessly — including [`Violation`]'s `&'static str`
//! config tags, which are *interned* on load: only the four strings
//! the oracle actually emits are accepted, keeping the type's
//! `&'static str` shape without leaking.
//!
//! The codecs live in cord-fuzz (not the shard driver) because they
//! must evolve in lock-step with [`Violation`]: a new variant fails to
//! compile here, not silently corrupt checkpoints at a distance.

use crate::campaign::CaseReport;
use crate::oracle::{OracleReport, Violation};
use cord_json::{obj, FromJson, Json, JsonError, ToJson};
use std::path::PathBuf;

/// The oracle's `&'static str` config tags; load-time interning table.
const KNOWN_CONFIGS: [&str; 4] = ["cord-d16", "ideal", "vc-limited", "inject-dry-run"];

fn intern_config(s: &str) -> Result<&'static str, JsonError> {
    KNOWN_CONFIGS
        .iter()
        .find(|&&k| k == s)
        .copied()
        .ok_or_else(|| JsonError::new(format!("unknown oracle config tag {s:?}")))
}

fn usize_field(v: &Json, name: &str) -> Result<usize, JsonError> {
    Ok(u64::from_json(v.field(name)?)? as usize)
}

impl ToJson for Violation {
    fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::Str(self.kind().to_owned()))];
        match self {
            Violation::SimAborted { config, detail } => {
                fields.push(("config", Json::Str((*config).to_owned())));
                fields.push(("detail", Json::Str(detail.clone())));
            }
            Violation::CordFalsePositive { addr }
            | Violation::VcFalsePositive { addr }
            | Violation::IdealMissedRace { addr }
            | Violation::IdealFalsePositive { addr } => {
                fields.push(("addr", addr.to_json()));
            }
            Violation::Window16Mismatch { count } | Violation::WindowViolation { count } => {
                fields.push(("count", count.to_json()));
            }
            Violation::ReplayFailed { detail }
            | Violation::NondeterministicRerun { detail }
            | Violation::CaptureReplayDiverged { detail } => {
                fields.push(("detail", Json::Str(detail.clone())));
            }
            Violation::RaceFreeHadRaces {
                config,
                count,
                first_addr,
            } => {
                fields.push(("config", Json::Str((*config).to_owned())));
                fields.push(("count", (*count as u64).to_json()));
                fields.push(("first_addr", first_addr.to_json()));
            }
            Violation::MetamorphicShrunk {
                event_index,
                lost_addr,
            } => {
                fields.push(("event_index", (*event_index as u64).to_json()));
                fields.push(("lost_addr", lost_addr.to_json()));
            }
        }
        obj(fields)
    }
}

impl FromJson for Violation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind = String::from_json(v.field("kind")?)?;
        let addr = || u64::from_json(v.field("addr")?);
        let count = || u64::from_json(v.field("count")?);
        let detail = || String::from_json(v.field("detail")?);
        let config = || intern_config(&String::from_json(v.field("config")?)?);
        Ok(match kind.as_str() {
            "sim-aborted" => Violation::SimAborted {
                config: config()?,
                detail: detail()?,
            },
            "cord-false-positive" => Violation::CordFalsePositive { addr: addr()? },
            "vc-false-positive" => Violation::VcFalsePositive { addr: addr()? },
            "ideal-missed-race" => Violation::IdealMissedRace { addr: addr()? },
            "ideal-false-positive" => Violation::IdealFalsePositive { addr: addr()? },
            "window16-mismatch" => Violation::Window16Mismatch { count: count()? },
            "window-violation" => Violation::WindowViolation { count: count()? },
            "replay-failed" => Violation::ReplayFailed { detail: detail()? },
            "nondeterministic-rerun" => Violation::NondeterministicRerun { detail: detail()? },
            "capture-replay-diverged" => Violation::CaptureReplayDiverged { detail: detail()? },
            "race-free-had-races" => Violation::RaceFreeHadRaces {
                config: config()?,
                count: usize_field(v, "count")?,
                first_addr: u64::from_json(v.field("first_addr")?)?,
            },
            "metamorphic-shrunk" => Violation::MetamorphicShrunk {
                event_index: usize_field(v, "event_index")?,
                lost_addr: u64::from_json(v.field("lost_addr")?)?,
            },
            other => return Err(JsonError::new(format!("unknown violation kind {other:?}"))),
        })
    }
}

impl ToJson for OracleReport {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "violations",
                Json::Array(self.violations.iter().map(ToJson::to_json).collect()),
            ),
            ("truth_races", (self.truth_races as u64).to_json()),
            ("cord_races", (self.cord_races as u64).to_json()),
            ("ideal_races", (self.ideal_races as u64).to_json()),
            ("vc_races", (self.vc_races as u64).to_json()),
            ("events", (self.events as u64).to_json()),
            (
                "injections_checked",
                (self.injections_checked as u64).to_json(),
            ),
            (
                "injections_aborted",
                (self.injections_aborted as u64).to_json(),
            ),
        ])
    }
}

impl FromJson for OracleReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let Json::Array(items) = v.field("violations")? else {
            return Err(JsonError::new("violations is not an array"));
        };
        Ok(OracleReport {
            violations: items
                .iter()
                .map(Violation::from_json)
                .collect::<Result<_, _>>()?,
            truth_races: usize_field(v, "truth_races")?,
            cord_races: usize_field(v, "cord_races")?,
            ideal_races: usize_field(v, "ideal_races")?,
            vc_races: usize_field(v, "vc_races")?,
            events: usize_field(v, "events")?,
            injections_checked: usize_field(v, "injections_checked")?,
            injections_aborted: usize_field(v, "injections_aborted")?,
        })
    }
}

impl ToJson for CaseReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("index", (self.index as u64).to_json()),
            ("seed", self.seed.to_json()),
            ("oracle", self.oracle.to_json()),
        ];
        if let Some(p) = &self.panic {
            fields.push(("panic", Json::Str(p.clone())));
        }
        if let Some((threads, ops)) = self.shrunk {
            fields.push((
                "shrunk",
                Json::Array(vec![(threads as u64).to_json(), (ops as u64).to_json()]),
            ));
        }
        if let Some(path) = &self.reproducer {
            fields.push(("reproducer", Json::Str(path.display().to_string())));
        }
        obj(fields)
    }
}

impl FromJson for CaseReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let shrunk = match v.get("shrunk") {
            Some(Json::Array(pair)) if pair.len() == 2 => Some((
                u64::from_json(&pair[0])? as usize,
                u64::from_json(&pair[1])? as usize,
            )),
            Some(_) => return Err(JsonError::new("shrunk is not a [threads, ops] pair")),
            None => None,
        };
        Ok(CaseReport {
            index: usize_field(v, "index")?,
            seed: u64::from_json(v.field("seed")?)?,
            oracle: OracleReport::from_json(v.field("oracle")?)?,
            panic: match v.get("panic") {
                Some(p) => Some(String::from_json(p)?),
                None => None,
            },
            shrunk,
            reproducer: match v.get("reproducer") {
                Some(p) => Some(PathBuf::from(String::from_json(p)?)),
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_violations() -> Vec<Violation> {
        vec![
            Violation::SimAborted {
                config: "cord-d16",
                detail: "watchdog".into(),
            },
            Violation::CordFalsePositive { addr: 0x40 },
            Violation::VcFalsePositive { addr: 0x44 },
            Violation::IdealMissedRace { addr: 0x48 },
            Violation::IdealFalsePositive { addr: 0x4c },
            Violation::Window16Mismatch { count: 3 },
            Violation::WindowViolation { count: 1 },
            Violation::ReplayFailed {
                detail: "diverged at op 7".into(),
            },
            Violation::NondeterministicRerun {
                detail: "racy set differed".into(),
            },
            Violation::CaptureReplayDiverged {
                detail: "report bytes differ".into(),
            },
            Violation::RaceFreeHadRaces {
                config: "ideal",
                count: 2,
                first_addr: 0x100,
            },
            Violation::MetamorphicShrunk {
                event_index: 5,
                lost_addr: 0x80,
            },
        ]
    }

    #[test]
    fn every_violation_variant_roundtrips() {
        for v in all_violations() {
            let j = v.to_json();
            let back = Violation::from_json(&j).expect("roundtrip");
            // Violation has no PartialEq; compare the rendered forms,
            // which cover every field.
            assert_eq!(format!("{back:?}"), format!("{v:?}"));
        }
    }

    #[test]
    fn unknown_config_tags_are_rejected_not_leaked() {
        let mut j = Violation::SimAborted {
            config: "cord-d16",
            detail: "x".into(),
        }
        .to_json();
        let Json::Object(fields) = &mut j else {
            panic!("violation did not serialize to an object");
        };
        for (k, val) in fields.iter_mut() {
            if k == "config" {
                *val = Json::Str("evil".into());
            }
        }
        assert!(Violation::from_json(&j).is_err());
    }

    #[test]
    fn case_report_roundtrips_with_and_without_optionals() {
        let full = CaseReport {
            index: 17,
            seed: 0x9E37_79B9_7F4A_7C15,
            oracle: OracleReport {
                violations: all_violations(),
                truth_races: 4,
                cord_races: 4,
                ideal_races: 4,
                vc_races: 5,
                events: 1200,
                injections_checked: 3,
                injections_aborted: 1,
            },
            panic: Some("worker died".into()),
            shrunk: Some((2, 48)),
            reproducer: Some(PathBuf::from("corpus/case-17.json")),
        };
        let minimal = CaseReport {
            index: 0,
            seed: 1,
            oracle: OracleReport::default(),
            panic: None,
            shrunk: None,
            reproducer: None,
        };
        for case in [full, minimal] {
            let text = case.to_json().to_string_pretty();
            let parsed = Json::parse(&text).expect("parses");
            let back = CaseReport::from_json(&parsed).expect("roundtrip");
            assert_eq!(format!("{back:?}"), format!("{case:?}"));
        }
    }
}
