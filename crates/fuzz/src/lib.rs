//! Differential workload fuzzing for the CORD reproduction.
//!
//! The paper validates CORD against an *Ideal* vector-clock detector on
//! twelve fixed kernels (§3); every engine/detector bug fixed so far
//! lived in a schedule shape no committed kernel reached. This crate
//! turns that oracle-differential methodology into a first-class
//! subsystem:
//!
//! * [`gen`] — a seed-deterministic random workload generator over
//!   [`cord_trace::builder::WorkloadBuilder`]: random thread counts
//!   (including core oversubscription, §2.7.4), lock/flag/barrier
//!   topologies, lock nesting, line-sharing and false-sharing patterns,
//!   with a structural [`Workload::validate`] gate and an optional
//!   race-freedom-by-construction mode.
//! * [`truthhb`] — an independent happens-before ground truth: a
//!   deliberately simple vector-clock analysis over the run's recorded
//!   access stream, kept separate from the detectors under test.
//! * [`oracle`] — the differential battery: each workload runs under
//!   CORD-D16, Ideal, and VC-limited configurations; per-run invariants
//!   (no CORD/VC false positives, Ideal ⊇ ground truth,
//!   `window16_mismatches == 0`, order-log replayability) plus
//!   metamorphic checks (sync removal never shrinks the race set on a
//!   fixed event stream; same seed is byte-identical) and `cord-inject`
//!   removals re-checked under the full battery.
//! * [`shrink`] — a greedy minimizer that drops threads, sync objects,
//!   barrier crossings, lock regions, and single ops while the workload
//!   still validates and still fails.
//! * [`corpus`] — self-contained reproducers (seed + shrunk workload in
//!   `textfmt`) written to and replayed from a corpus directory.
//! * [`campaign`] — pool-parallel fuzz campaigns over `cord-pool`,
//!   byte-identical across `--jobs` counts and reruns.
//!
//! [`Workload::validate`]: cord_trace::program::Workload::validate

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod jsonfmt;
pub mod oracle;
pub mod shrink;
pub mod truthhb;

pub use campaign::{run_campaign, run_campaign_cases, CampaignConfig, CampaignReport, GenMode};
pub use gen::{generate, GenConfig};
pub use oracle::{check_workload, OracleOptions, OracleReport, Violation};
pub use shrink::{shrink_workload, ShrinkOutcome};
