//! The differential oracle battery.
//!
//! One workload, one scheduling seed, several referees. Every invariant
//! checked here is a *per-run* theorem — each detector is compared
//! against the happens-before ground truth computed from **its own**
//! run's recorded access stream, never against a different run's
//! (different cache configurations interleave differently, so
//! cross-run race-set comparisons are not sound):
//!
//! * CORD-D16 (shipping `CordConfig::paper()`): reported racy words ⊆
//!   ground truth (a scalar-clock detector may miss races, never invent
//!   them), `window16_mismatches == 0` (§2.7.5 audit),
//!   `window_violations == 0` (the D-window rule held), and the order
//!   log replays the run exactly (§3.3).
//! * Ideal: racy words == ground truth, both directions (it *is* a
//!   vector-clock detector, so disagreement in either direction is a
//!   bug in one of the two implementations).
//! * VC-limited (L2-sized clock memory): racy words ⊆ ground truth.
//! * Race-free mode: a workload built by the race-free generator must
//!   have an empty ground truth under every configuration.
//! * Metamorphic: suppressing a synchronization event's happens-before
//!   edges in the recorded stream never shrinks the racy-word set, and
//!   re-running the same seed is bit-identical.
//! * Injection: removing acquire-side sync instances via `cord-inject`
//!   and re-running the CORD battery (deadlock/livelock aborts are an
//!   expected outcome of removing synchronization, not violations).

use crate::truthhb::{racy_words, sync_event_indices, RecordedAccess, Tandem};
use cord_core::replay::replay_and_verify;
use cord_core::{CaptureObserver, CordConfig, CordDetector, DetectorSink, ObsCtx};
use cord_detectors::ideal::IdealDetector;
use cord_detectors::vc_limited::{VcConfig, VcLimitedDetector};
use cord_detectors::DetectorConfig;
use cord_inject::count_instances;
use cord_obs::wire::{self, StreamHeader};
use cord_obs::StreamEvent;
use cord_sim::config::{CoherenceKind, MachineConfig, Watchdog};
use cord_sim::engine::{InjectionPlan, Machine, SimError};
use cord_trace::program::Workload;
use std::collections::BTreeSet;
use std::fmt;

/// Knobs for one oracle evaluation.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Scheduling seed for every simulated run.
    pub sim_seed: u64,
    /// Re-run the CORD configuration and require bit-identical results.
    pub check_rerun: bool,
    /// How many synchronization events to suppress (one at a time) in
    /// the metamorphic stream check.
    pub max_suppressions: usize,
    /// How many acquire-side `cord-inject` removals to re-run through
    /// the CORD battery.
    pub max_injections: usize,
    /// Round-trip the base CORD run's event stream through the wire
    /// codec and replay it into a fresh sink built from the stream
    /// header: the drained report must be byte-identical to the inline
    /// detector's (the daemon contract).
    pub check_capture_replay: bool,
    /// The workload came from the race-free generator: ground truth
    /// must be empty.
    pub expect_race_free: bool,
    /// Watchdog cycle budget for every run (fuzzed workloads must
    /// terminate; a hang is an engine or generator bug).
    pub max_cycles: u64,
    /// Core count for every timed run (the Ideal referee keeps its
    /// infinite cache but shares the topology).
    pub cores: usize,
    /// Coherence backend for every timed run.
    pub backend: CoherenceKind,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            sim_seed: 1,
            check_rerun: true,
            max_suppressions: 3,
            max_injections: 2,
            check_capture_replay: true,
            expect_race_free: false,
            max_cycles: 50_000_000,
            cores: 4,
            backend: CoherenceKind::SnoopingBus,
        }
    }
}

impl OracleOptions {
    /// A cheaper battery for inner-loop use (shrinking): no rerun, no
    /// metamorphic pass, no injections.
    #[must_use]
    pub fn fast(&self) -> Self {
        OracleOptions {
            check_rerun: false,
            max_suppressions: 0,
            max_injections: 0,
            check_capture_replay: false,
            ..self.clone()
        }
    }
}

/// One oracle invariant that did not hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A run aborted ([`SimError`]) outside fault injection.
    SimAborted {
        /// Which configuration was running.
        config: &'static str,
        /// The simulator's error, rendered.
        detail: String,
    },
    /// CORD reported a racy word the ground truth does not contain.
    CordFalsePositive {
        /// The offending word address.
        addr: u64,
    },
    /// The VC-limited detector reported a word the truth doesn't have.
    VcFalsePositive {
        /// The offending word address.
        addr: u64,
    },
    /// The Ideal detector missed a ground-truth racy word.
    IdealMissedRace {
        /// The missed word address.
        addr: u64,
    },
    /// The Ideal detector reported a word the ground truth rejects.
    IdealFalsePositive {
        /// The offending word address.
        addr: u64,
    },
    /// The window16 audit disagreed with full-width timestamps (§2.7.5).
    Window16Mismatch {
        /// `CordStats::window16_mismatches` after the run.
        count: u64,
    },
    /// A race check fell outside the D-window (§2.6).
    WindowViolation {
        /// `CordStats::window_violations` after the run.
        count: u64,
    },
    /// The order log failed to replay the recorded run (§3.3).
    ReplayFailed {
        /// The replay error, rendered.
        detail: String,
    },
    /// Re-running the same seed produced a different result.
    NondeterministicRerun {
        /// What differed.
        detail: String,
    },
    /// A race-free-by-construction workload had ground-truth races.
    RaceFreeHadRaces {
        /// Which configuration's run exposed them.
        config: &'static str,
        /// Number of racy words.
        count: usize,
        /// The lowest racy word address.
        first_addr: u64,
    },
    /// Replaying the captured event stream through the wire codec and
    /// a header-built sink did not reproduce the inline report
    /// byte-for-byte — the daemon contract is broken.
    CaptureReplayDiverged {
        /// What diverged (codec failure, unknown label, or byte diff).
        detail: String,
    },
    /// Suppressing a sync event's happens-before edges *shrank* the
    /// racy-word set — monotonicity broken in the truth analysis.
    MetamorphicShrunk {
        /// Index of the suppressed event in the recorded stream.
        event_index: usize,
        /// A word racy in the base analysis but not the suppressed one.
        lost_addr: u64,
    },
}

impl Violation {
    /// Stable short name, used by the shrinker to decide whether a
    /// candidate workload still fails "the same way".
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::SimAborted { .. } => "sim-aborted",
            Violation::CordFalsePositive { .. } => "cord-false-positive",
            Violation::VcFalsePositive { .. } => "vc-false-positive",
            Violation::IdealMissedRace { .. } => "ideal-missed-race",
            Violation::IdealFalsePositive { .. } => "ideal-false-positive",
            Violation::Window16Mismatch { .. } => "window16-mismatch",
            Violation::WindowViolation { .. } => "window-violation",
            Violation::ReplayFailed { .. } => "replay-failed",
            Violation::NondeterministicRerun { .. } => "nondeterministic-rerun",
            Violation::CaptureReplayDiverged { .. } => "capture-replay-diverged",
            Violation::RaceFreeHadRaces { .. } => "race-free-had-races",
            Violation::MetamorphicShrunk { .. } => "metamorphic-shrunk",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SimAborted { config, detail } => {
                write!(f, "{config} run aborted: {detail}")
            }
            Violation::CordFalsePositive { addr } => {
                write!(f, "CORD reported non-race word {addr:#x}")
            }
            Violation::VcFalsePositive { addr } => {
                write!(f, "VC-limited reported non-race word {addr:#x}")
            }
            Violation::IdealMissedRace { addr } => {
                write!(f, "Ideal missed ground-truth racy word {addr:#x}")
            }
            Violation::IdealFalsePositive { addr } => {
                write!(f, "Ideal reported non-race word {addr:#x}")
            }
            Violation::Window16Mismatch { count } => {
                write!(f, "window16 audit mismatches: {count}")
            }
            Violation::WindowViolation { count } => {
                write!(f, "D-window violations: {count}")
            }
            Violation::ReplayFailed { detail } => write!(f, "order-log replay failed: {detail}"),
            Violation::NondeterministicRerun { detail } => {
                write!(f, "same-seed rerun differed: {detail}")
            }
            Violation::CaptureReplayDiverged { detail } => {
                write!(f, "capture→replay diverged from inline detection: {detail}")
            }
            Violation::RaceFreeHadRaces {
                config,
                count,
                first_addr,
            } => write!(
                f,
                "race-free workload had {count} ground-truth racy words under {config} \
                 (first {first_addr:#x})"
            ),
            Violation::MetamorphicShrunk {
                event_index,
                lost_addr,
            } => write!(
                f,
                "suppressing sync event #{event_index} removed racy word {lost_addr:#x}"
            ),
        }
    }
}

/// What one full oracle evaluation found.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Every invariant that failed, in check order.
    pub violations: Vec<Violation>,
    /// Ground-truth racy words of the base CORD run.
    pub truth_races: usize,
    /// Racy words CORD reported on the base run.
    pub cord_races: usize,
    /// Racy words the Ideal detector reported on its run.
    pub ideal_races: usize,
    /// Racy words the VC-limited detector reported on its run.
    pub vc_races: usize,
    /// Recorded accesses in the base CORD run.
    pub events: usize,
    /// Injection re-runs that completed and were checked.
    pub injections_checked: usize,
    /// Injection re-runs that aborted (deadlock/livelock after removing
    /// synchronization — expected, not a violation).
    pub injections_aborted: usize,
}

impl OracleReport {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn watchdogged(machine: MachineConfig, opts: &OracleOptions) -> MachineConfig {
    let window = (opts.max_cycles / 8).max(1);
    machine
        .with_cores(opts.cores)
        .with_coherence(opts.backend)
        .with_watchdog(Watchdog::new(opts.max_cycles, window))
}

struct CordRun {
    events: Vec<RecordedAccess>,
    racy: BTreeSet<u64>,
    window16_mismatches: u64,
    window_violations: u64,
    thread_hashes: Vec<u64>,
    replay_error: Option<String>,
    /// The reified stream the detector saw, as a daemon would see it.
    captured: Vec<StreamEvent>,
    /// The inline detector's drained report, canonical bytes.
    inline_report: Vec<u8>,
    /// The inline detector's configuration label.
    label: String,
    cores: usize,
}

fn run_cord(
    workload: &Workload,
    plan: InjectionPlan,
    opts: &OracleOptions,
) -> Result<CordRun, SimError> {
    let machine = watchdogged(MachineConfig::paper_4core(), opts).with_resolved_capture();
    let threads = workload.num_threads();
    let cores = machine.cores;
    let det = CordDetector::new(CordConfig::paper(), threads, cores);
    let obs = CaptureObserver::new(Tandem::new(det));
    let m = Machine::new(machine, workload, obs, opts.sim_seed, plan);
    let (sim, obs) = m.run()?;
    let (tandem, captured) = obs.into_parts();
    let mut det = tandem.det;
    let label = det.label();
    let inline_report = DetectorSink::drain(&mut det).to_bytes();
    let (races, recorder, stats) = det.into_parts();
    let racy = races.iter().map(|r| r.addr.byte()).collect();
    let replay_error = match &sim.truth.resolved {
        Some(resolved) => replay_and_verify(
            recorder.entries(),
            resolved,
            &sim.stats.instr_counts,
            &sim.truth.thread_hashes,
        )
        .err()
        .map(|e| e.to_string()),
        None => Some("resolved streams missing from capture run".to_owned()),
    };
    Ok(CordRun {
        events: tandem.rec.events,
        racy,
        window16_mismatches: stats.window16_mismatches,
        window_violations: stats.window_violations,
        thread_hashes: sim.truth.thread_hashes,
        replay_error,
        captured,
        inline_report,
        label,
        cores,
    })
}

/// The daemon contract, checked in-process: encode the captured stream
/// with the wire codec, decode it back, build a fresh sink from the
/// decoded header (exactly as `cord-serve` does), replay every event,
/// and require the drained report to be byte-identical to the inline
/// detector's.
fn capture_replay_check(
    base: &CordRun,
    workload: &Workload,
    opts: &OracleOptions,
    out: &mut Vec<Violation>,
) {
    let threads = workload.num_threads();
    let geometry = wire::StreamGeometry::new(threads, base.cores, workload.layout());
    let header = StreamHeader::new(workload.name(), &base.label, opts.sim_seed, geometry);
    let bytes = wire::encode_capture(&header, &base.captured);
    let (decoded, events) = match wire::decode_capture(&bytes) {
        Ok(x) => x,
        Err(e) => {
            out.push(Violation::CaptureReplayDiverged {
                detail: format!("capture failed to decode: {e}"),
            });
            return;
        }
    };
    let Some(config) = DetectorConfig::from_label(&decoded.detector) else {
        out.push(Violation::CaptureReplayDiverged {
            detail: format!("header label `{}` names no detector", decoded.detector),
        });
        return;
    };
    let mut sink = config.build_sink(
        decoded.geometry.threads as usize,
        decoded.geometry.cores as usize,
        decoded.seed,
        ObsCtx::disabled(),
    );
    for ev in &events {
        sink.ingest(ev);
    }
    sink.flush();
    let replayed = sink.drain().to_bytes();
    if replayed != base.inline_report {
        out.push(Violation::CaptureReplayDiverged {
            detail: format!(
                "report bytes differ: replay {} bytes vs inline {} bytes",
                replayed.len(),
                base.inline_report.len()
            ),
        });
    }
}

fn check_cord_run(run: &CordRun, threads: usize, out: &mut Vec<Violation>) -> BTreeSet<u64> {
    let truth = racy_words(&run.events, threads, &BTreeSet::new());
    for &addr in run.racy.difference(&truth) {
        out.push(Violation::CordFalsePositive { addr });
    }
    if run.window16_mismatches != 0 {
        out.push(Violation::Window16Mismatch {
            count: run.window16_mismatches,
        });
    }
    if run.window_violations != 0 {
        out.push(Violation::WindowViolation {
            count: run.window_violations,
        });
    }
    if let Some(detail) = &run.replay_error {
        out.push(Violation::ReplayFailed {
            detail: detail.clone(),
        });
    }
    truth
}

fn race_free_check(
    truth: &BTreeSet<u64>,
    config: &'static str,
    opts: &OracleOptions,
    out: &mut Vec<Violation>,
) {
    if opts.expect_race_free && !truth.is_empty() {
        out.push(Violation::RaceFreeHadRaces {
            config,
            count: truth.len(),
            first_addr: truth.iter().next().copied().unwrap_or(0),
        });
    }
}

/// Evenly spread `want` sample indices over `0..total`.
fn spread(total: usize, want: usize) -> Vec<usize> {
    if total == 0 || want == 0 {
        return Vec::new();
    }
    let want = want.min(total);
    let mut picked: Vec<usize> = (0..want).map(|k| k * total / want).collect();
    picked.dedup();
    picked
}

/// Runs the full differential battery on one workload.
///
/// Never panics on workload content: simulator aborts become
/// [`Violation::SimAborted`] (or tolerated skips on injection runs).
/// The caller is expected to pass a workload that already satisfies
/// [`Workload::validate`].
///
/// [`Workload::validate`]: cord_trace::program::Workload::validate
pub fn check_workload(workload: &Workload, opts: &OracleOptions) -> OracleReport {
    let threads = workload.num_threads();
    let mut report = OracleReport::default();

    // --- CORD-D16, base run -------------------------------------------------
    let base = match run_cord(workload, InjectionPlan::none(), opts) {
        Ok(run) => run,
        Err(e) => {
            report.violations.push(Violation::SimAborted {
                config: "cord-d16",
                detail: e.to_string(),
            });
            return report;
        }
    };
    let truth = check_cord_run(&base, threads, &mut report.violations);
    report.truth_races = truth.len();
    report.cord_races = base.racy.len();
    report.events = base.events.len();
    race_free_check(&truth, "cord-d16", opts, &mut report.violations);

    // --- Capture→replay byte-identity (the daemon contract) -----------------
    if opts.check_capture_replay {
        capture_replay_check(&base, workload, opts, &mut report.violations);
    }

    // --- Same-seed rerun must be bit-identical ------------------------------
    if opts.check_rerun {
        match run_cord(workload, InjectionPlan::none(), opts) {
            Ok(rerun) => {
                let detail = if rerun.events != base.events {
                    Some("recorded access stream".to_owned())
                } else if rerun.racy != base.racy {
                    Some("CORD racy-word set".to_owned())
                } else if rerun.thread_hashes != base.thread_hashes {
                    Some("thread outcome hashes".to_owned())
                } else {
                    None
                };
                if let Some(detail) = detail {
                    report
                        .violations
                        .push(Violation::NondeterministicRerun { detail });
                }
            }
            Err(e) => report.violations.push(Violation::NondeterministicRerun {
                detail: format!("rerun aborted: {e}"),
            }),
        }
    }

    // --- Metamorphic: sync suppression is monotone --------------------------
    if opts.max_suppressions > 0 {
        let sync_idx = sync_event_indices(&base.events);
        for pick in spread(sync_idx.len(), opts.max_suppressions) {
            let i = sync_idx[pick];
            let suppressed = racy_words(&base.events, threads, &BTreeSet::from([i]));
            if let Some(&lost) = truth.difference(&suppressed).next() {
                report.violations.push(Violation::MetamorphicShrunk {
                    event_index: i,
                    lost_addr: lost,
                });
            }
        }
    }

    // --- Ideal on an infinite cache (different timing, same program) --------
    let ideal_machine = watchdogged(MachineConfig::infinite_cache(), opts);
    let det = IdealDetector::new(threads);
    let m = Machine::new(
        ideal_machine,
        workload,
        Tandem::new(det),
        opts.sim_seed,
        InjectionPlan::none(),
    );
    match m.run() {
        Ok((_, tandem)) => {
            let ideal: BTreeSet<u64> = tandem
                .det
                .raced_words()
                .into_iter()
                .map(|a| a.byte())
                .collect();
            report.ideal_races = ideal.len();
            let truth2 = racy_words(&tandem.rec.events, threads, &BTreeSet::new());
            for &addr in truth2.difference(&ideal) {
                report.violations.push(Violation::IdealMissedRace { addr });
            }
            for &addr in ideal.difference(&truth2) {
                report
                    .violations
                    .push(Violation::IdealFalsePositive { addr });
            }
            race_free_check(&truth2, "ideal", opts, &mut report.violations);
        }
        Err(e) => report.violations.push(Violation::SimAborted {
            config: "ideal",
            detail: e.to_string(),
        }),
    }

    // --- VC-limited (L2-sized clock memory) ---------------------------------
    let vc_machine = watchdogged(MachineConfig::paper_4core(), opts);
    let cores = vc_machine.cores;
    let det = VcLimitedDetector::new(VcConfig::l2_cache(), threads, cores);
    let m = Machine::new(
        vc_machine,
        workload,
        Tandem::new(det),
        opts.sim_seed,
        InjectionPlan::none(),
    );
    match m.run() {
        Ok((_, tandem)) => {
            let vc: BTreeSet<u64> = tandem.det.races().iter().map(|r| r.addr.byte()).collect();
            report.vc_races = vc.len();
            let truth3 = racy_words(&tandem.rec.events, threads, &BTreeSet::new());
            for &addr in vc.difference(&truth3) {
                report.violations.push(Violation::VcFalsePositive { addr });
            }
            race_free_check(&truth3, "vc-limited", opts, &mut report.violations);
        }
        Err(e) => report.violations.push(Violation::SimAborted {
            config: "vc-limited",
            detail: e.to_string(),
        }),
    }

    // --- cord-inject removals re-run through the CORD battery ---------------
    if opts.max_injections > 0 {
        let machine = watchdogged(MachineConfig::paper_4core(), opts);
        match count_instances(&machine, workload, opts.sim_seed) {
            Ok(counts) => {
                for n in spread(counts.acquires as usize, opts.max_injections) {
                    match run_cord(workload, InjectionPlan::remove_nth(n as u64), opts) {
                        Ok(run) => {
                            report.injections_checked += 1;
                            let t = check_cord_run(&run, threads, &mut report.violations);
                            // Removing an acquire can only lose order:
                            // injected truth must be ⊇-monotone is NOT
                            // a cross-run theorem, so only the per-run
                            // CORD invariants above are checked here.
                            let _ = t;
                        }
                        // Removing synchronization may deadlock or
                        // livelock; the watchdog abort is the expected
                        // outcome, not an oracle failure.
                        Err(_) => report.injections_aborted += 1,
                    }
                }
            }
            Err(e) => report.violations.push(Violation::SimAborted {
                config: "inject-dry-run",
                detail: e.to_string(),
            }),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use cord_trace::builder::WorkloadBuilder;

    #[test]
    fn race_free_seeds_pass_the_full_battery() {
        let cfg = GenConfig::race_free().short();
        for seed in 0..8 {
            let w = generate(&cfg, seed);
            let opts = OracleOptions {
                expect_race_free: true,
                ..OracleOptions::default()
            };
            let report = check_workload(&w, &opts);
            assert!(report.passed(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn mixed_seeds_pass_the_full_battery() {
        let cfg = GenConfig::default().short();
        for seed in 100..106 {
            let w = generate(&cfg, seed);
            let report = check_workload(&w, &OracleOptions::default());
            assert!(report.passed(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn racy_workload_is_seen_by_truth_and_ideal() {
        // Two threads hammer the same word with no synchronization.
        let mut b = WorkloadBuilder::new("oracle-racy", 2);
        let region = b.alloc_words(4);
        for t in 0..2 {
            let mut h = b.thread_mut(t);
            for _ in 0..4 {
                h.write(region.word(0));
                h.read(region.word(0));
            }
        }
        let w = b.build();
        let report = check_workload(&w, &OracleOptions::default());
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.truth_races > 0, "truth saw no race");
        assert!(report.ideal_races > 0, "ideal saw no race");
    }

    #[test]
    fn spread_is_even_and_deduped() {
        assert_eq!(spread(10, 2), vec![0, 5]);
        assert_eq!(spread(1, 3), vec![0]);
        assert!(spread(0, 3).is_empty());
        assert!(spread(5, 0).is_empty());
    }
}
