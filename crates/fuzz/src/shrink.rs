//! Greedy workload minimization.
//!
//! The vendored `proptest` stand-in has no shrinking, and generic
//! tree-shrinking over a seed would lose the structural invariants the
//! generator guarantees anyway. This shrinker works on the *workload*
//! instead: drop whole threads, whole synchronization objects, barrier
//! crossings, lock regions, thread tails, then single operations —
//! accepting a candidate only when it still passes
//! [`Workload::validate`] and still fails the oracle with the same
//! violation kind. Passes repeat to a fixpoint (or an attempt budget),
//! largest-granularity first, so reproducers come out small enough to
//! read: the acceptance bar for a detector regression is a ≤4-thread,
//! ≤40-op workload.
//!
//! [`Workload::validate`]: cord_trace::program::Workload::validate

use crate::oracle::{check_workload, OracleOptions, Violation};
use cord_trace::op::Op;
use cord_trace::program::Workload;
use std::collections::{BTreeSet, HashMap};

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest failing workload found.
    pub workload: Workload,
    /// The violation the shrunk workload still produces.
    pub violation: Violation,
    /// Candidates evaluated (including rejected ones).
    pub tried: usize,
    /// Candidates accepted (each one strictly smaller).
    pub accepted: usize,
}

/// Trims the oracle battery to the parts that can reproduce `kind`, so
/// each shrink candidate costs as few simulated runs as possible.
fn reproduction_options(kind: &str, opts: &OracleOptions) -> OracleOptions {
    let mut o = opts.clone();
    o.check_rerun = kind == "nondeterministic-rerun";
    o.check_capture_replay = kind == "capture-replay-diverged";
    if kind != "metamorphic-shrunk" {
        o.max_suppressions = 0;
    }
    o
}

fn reproduce(w: &Workload, kind: &str, opts: &OracleOptions) -> Option<Violation> {
    check_workload(w, opts)
        .violations
        .into_iter()
        .find(|v| v.kind() == kind)
}

fn lock_ids(w: &Workload) -> BTreeSet<u32> {
    let mut ids = BTreeSet::new();
    for t in w.threads() {
        for op in t.ops() {
            if let Op::Lock(l) | Op::Unlock(l) = op {
                ids.insert(l.0);
            }
        }
    }
    ids
}

fn flag_ids(w: &Workload) -> BTreeSet<u32> {
    let mut ids = BTreeSet::new();
    for t in w.threads() {
        for op in t.ops() {
            if let Op::FlagSet(g) | Op::FlagWait(g) | Op::FlagReset(g) = op {
                ids.insert(g.0);
            }
        }
    }
    ids
}

fn atomic_ids(w: &Workload) -> BTreeSet<u32> {
    let mut ids = BTreeSet::new();
    for t in w.threads() {
        for op in t.ops() {
            if let Op::Atomic(a, _) = op {
                ids.insert(a.0);
            }
        }
    }
    ids
}

fn barrier_ids(w: &Workload) -> BTreeSet<u32> {
    let mut ids = BTreeSet::new();
    for t in w.threads() {
        for op in t.ops() {
            if let Op::Barrier(b) = op {
                ids.insert(b.0);
            }
        }
    }
    ids
}

/// Whole threads, highest index first (removal preserves lower IDs).
fn drop_threads(w: &Workload) -> Vec<Workload> {
    if w.num_threads() <= 1 {
        return Vec::new();
    }
    (0..w.num_threads())
        .rev()
        .map(|t| w.without_thread(t))
        .collect()
}

/// Every op naming one synchronization object, per object.
fn drop_sync_objects(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    for id in barrier_ids(w) {
        out.push(w.filter_ops(|_, _, op| !matches!(op, Op::Barrier(b) if b.0 == id)));
    }
    for id in lock_ids(w) {
        out.push(w.filter_ops(|_, _, op| !matches!(op, Op::Lock(l) | Op::Unlock(l) if l.0 == id)));
    }
    for id in flag_ids(w) {
        out.push(w.filter_ops(|_, _, op| {
            !matches!(op, Op::FlagSet(g) | Op::FlagWait(g) | Op::FlagReset(g) if g.0 == id)
        }));
    }
    for id in atomic_ids(w) {
        out.push(w.filter_ops(|_, _, op| !matches!(op, Op::Atomic(a, _) if a.0 == id)));
    }
    out
}

/// The `k`-th crossing of a barrier, removed from *every* thread at
/// once so arrival counts stay aligned.
fn drop_barrier_crossings(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    for id in barrier_ids(w) {
        let crossings = w
            .threads()
            .iter()
            .map(|t| {
                t.ops()
                    .iter()
                    .filter(|op| matches!(op, Op::Barrier(b) if b.0 == id))
                    .count()
            })
            .max()
            .unwrap_or(0);
        for k in 0..crossings {
            let mut seen: HashMap<usize, usize> = HashMap::new();
            out.push(w.filter_ops(|tid, _, op| {
                if matches!(op, Op::Barrier(b) if b.0 == id) {
                    let c = seen.entry(tid.index()).or_insert(0);
                    let mine = *c;
                    *c += 1;
                    mine != k
                } else {
                    true
                }
            }));
        }
    }
    out
}

/// Lock regions: first the whole `lock..=unlock` span (body included),
/// then just the `lock`/`unlock` pair with the body kept.
fn drop_lock_regions(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    for (t, prog) in w.threads().iter().enumerate() {
        let ops = prog.ops();
        for (i, op) in ops.iter().enumerate() {
            let Op::Lock(l) = op else { continue };
            let mut depth = 1usize;
            let mut close = None;
            for (j, other) in ops.iter().enumerate().skip(i + 1) {
                match other {
                    Op::Lock(l2) if l2 == l => depth += 1,
                    Op::Unlock(l2) if l2 == l => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(j) = close else { continue };
            out.push(w.filter_ops(|tid, k, _| tid.index() != t || k < i || k > j));
            out.push(w.filter_ops(|tid, k, _| tid.index() != t || (k != i && k != j)));
        }
    }
    out
}

/// Keep only the first half of each thread's program, one thread at a
/// time, then drop single trailing ops.
fn drop_tails(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    for (t, prog) in w.threads().iter().enumerate() {
        let len = prog.len();
        if len >= 2 {
            out.push(w.filter_ops(|tid, i, _| tid.index() != t || i < len / 2));
        }
        if len >= 1 {
            out.push(w.without_op(t, len - 1));
        }
    }
    out
}

/// Every single op, last thread / last op first.
fn drop_single_ops(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    for (t, prog) in w.threads().iter().enumerate().rev() {
        for i in (0..prog.len()).rev() {
            out.push(w.without_op(t, i));
        }
    }
    out
}

/// Greedily minimizes `workload` while it keeps failing the oracle with
/// a violation of kind `kind` (see [`Violation::kind`]).
///
/// Returns `None` when the starting workload does not reproduce `kind`
/// under the trimmed battery. `max_candidates` bounds total oracle
/// evaluations; passes run largest-granularity first and repeat to a
/// fixpoint.
pub fn shrink_workload(
    workload: &Workload,
    kind: &str,
    opts: &OracleOptions,
    max_candidates: usize,
) -> Option<ShrinkOutcome> {
    let ropts = reproduction_options(kind, opts);
    let mut violation = reproduce(workload, kind, &ropts)?;
    let mut current = workload.clone();
    let mut tried = 0usize;
    let mut accepted = 0usize;

    type Pass = fn(&Workload) -> Vec<Workload>;
    let passes: [Pass; 6] = [
        drop_threads,
        drop_tails,
        drop_sync_objects,
        drop_barrier_crossings,
        drop_lock_regions,
        drop_single_ops,
    ];

    'outer: loop {
        let mut progressed = false;
        for pass in passes {
            // Re-apply a pass until it stops helping; candidates are
            // regenerated after every acceptance because indices shift.
            loop {
                let before = current.total_ops();
                let mut advanced = false;
                for cand in pass(&current) {
                    if tried >= max_candidates {
                        break 'outer;
                    }
                    let smaller =
                        cand.total_ops() < before || cand.num_threads() < current.num_threads();
                    if !smaller || cand.validate().is_err() {
                        continue;
                    }
                    tried += 1;
                    if let Some(v) = reproduce(&cand, kind, &ropts) {
                        current = cand;
                        violation = v;
                        accepted += 1;
                        advanced = true;
                        progressed = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }

    if accepted > 0 {
        current = current.renamed(format!("{}-shrunk", workload.name()));
    }
    Some(ShrinkOutcome {
        workload: current,
        violation,
        tried,
        accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::builder::WorkloadBuilder;

    fn racy_padded() -> Workload {
        // A 4-thread workload where only threads 0 and 1 race on one
        // word; threads 2 and 3 plus all the lock traffic are noise the
        // shrinker should strip.
        let mut b = WorkloadBuilder::new("shrink-me", 4);
        let shared = b.alloc_words(4);
        let private = b.alloc_words(64);
        let lock = b.alloc_lock();
        for t in 0..4 {
            let base = (t as u64) * 16;
            let mut h = b.thread_mut(t);
            h.compute(5);
            h.lock(lock);
            h.write(private.word(base));
            h.unlock(lock);
            if t < 2 {
                h.write(shared.word(0));
                h.read(shared.word(0));
            }
            h.compute(5);
            h.write(private.word(base + 1));
        }
        b.build()
    }

    #[test]
    fn shrinks_an_ideal_missed_race_stub() {
        // Use the truth itself as the failing predicate by shrinking a
        // genuinely racy workload against "race-free-had-races": with
        // expect_race_free set, the racy pair is the minimal core.
        let w = racy_padded();
        let opts = OracleOptions {
            expect_race_free: true,
            max_injections: 0,
            ..OracleOptions::default()
        };
        let out = shrink_workload(&w, "race-free-had-races", &opts, 400)
            .expect("workload must reproduce");
        assert!(out.accepted > 0, "nothing shrunk");
        assert!(out.workload.num_threads() <= 2, "{:?}", out.workload);
        assert!(
            out.workload.total_ops() <= 6,
            "still {} ops",
            out.workload.total_ops()
        );
        assert_eq!(out.violation.kind(), "race-free-had-races");
        assert_eq!(out.workload.validate(), Ok(()));
    }

    #[test]
    fn sabotaged_cas_shrinks_to_a_two_thread_reproducer() {
        // A lock-free publish whose publishing CAS was "forgotten":
        // thread 0 writes a block but never commits on `top`, thread 1
        // joins `top` and reads the block — racy. Threads 2 and 3
        // hammer a separate atomic over private words, clean noise the
        // atomic-aware sync-object pass should strip whole.
        let mut b = WorkloadBuilder::new("cas-sabotage", 4);
        let top = b.alloc_atomic();
        let noise = b.alloc_atomic();
        let shared = b.alloc_line_aligned(4);
        let private = b.alloc_line_aligned(64);
        b.thread_mut(0).write(shared.word(0));
        {
            let mut h = b.thread_mut(1);
            h.cas_loop(top);
            h.read(shared.word(0));
        }
        for t in 2..4 {
            let mut h = b.thread_mut(t);
            for r in 0..3u64 {
                h.cas_loop(noise);
                h.update(private.word(t as u64 * 16 + r));
            }
        }
        let w = b.build();
        let opts = OracleOptions {
            expect_race_free: true,
            max_injections: 0,
            ..OracleOptions::default()
        };
        let out = shrink_workload(&w, "race-free-had-races", &opts, 600)
            .expect("workload must reproduce");
        assert!(out.accepted > 0, "nothing shrunk");
        assert!(out.workload.num_threads() <= 2, "{:?}", out.workload);
        assert!(
            out.workload.total_ops() <= 4,
            "still {} ops",
            out.workload.total_ops()
        );
        // The noise atomic's whole CAS traffic must be gone.
        let atomics_left = out
            .workload
            .threads()
            .iter()
            .flat_map(|t| t.ops())
            .filter(|op| matches!(op, Op::Atomic(_, _)))
            .count();
        assert_eq!(atomics_left, 0, "{:?}", out.workload);
        assert_eq!(out.workload.validate(), Ok(()));
    }

    #[test]
    fn non_failing_workload_returns_none() {
        let mut b = WorkloadBuilder::new("fine", 2);
        let r = b.alloc_words(32);
        b.thread_mut(0).write(r.word(0));
        b.thread_mut(1).write(r.word(16));
        let w = b.build();
        let opts = OracleOptions {
            max_injections: 0,
            ..OracleOptions::default()
        };
        assert!(shrink_workload(&w, "cord-false-positive", &opts, 100).is_none());
    }

    #[test]
    fn pass_generators_only_emit_structurally_plausible_candidates() {
        let w = racy_padded();
        for cand in drop_threads(&w)
            .into_iter()
            .chain(drop_sync_objects(&w))
            .chain(drop_barrier_crossings(&w))
            .chain(drop_lock_regions(&w))
            .chain(drop_tails(&w))
            .chain(drop_single_ops(&w))
        {
            // Candidates may fail validate (the shrinker gates on it);
            // they must at least preserve the thread-count floor.
            assert!(cand.num_threads() >= 1);
            let _ = cand.validate();
        }
    }
}
