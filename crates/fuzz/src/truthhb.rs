//! An independent happens-before ground truth.
//!
//! The differential oracle needs a referee that is *not* one of the
//! detectors under test. [`HbRecorder`] taps the machine's access
//! stream (returning no bus work, so it never perturbs timing), and
//! [`racy_words`] runs a deliberately simple vector-clock analysis over
//! the recorded stream: full per-word access histories, quadratic pair
//! checking, a locally-implemented clock — no shared code with
//! `cord-core` or `cord-detectors` beyond the event types.
//!
//! Because the analysis is a pure function of the recorded stream, it
//! also supports the metamorphic sync-removal check: re-analyzing the
//! *same* stream with a synchronization event's happens-before edge
//! suppressed (joins skipped, release stores dropped, ticks kept) can
//! only shrink the happens-before relation, so the racy-word set must
//! grow or stay equal — a theorem on a fixed interleaving, unlike
//! re-simulating, where timing shifts can genuinely reorder lock
//! acquisitions and mask or expose races.

use cord_sim::observer::{AccessEvent, AccessKind, MemoryObserver, ObserverOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// One access in global commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedAccess {
    /// Issuing thread index.
    pub thread: usize,
    /// Word address (byte granularity, word aligned).
    pub addr: u64,
    /// The four-way access kind.
    pub kind: AccessKind,
}

/// A pass-through observer that records the access stream.
#[derive(Debug, Default)]
pub struct HbRecorder {
    /// The stream, in the order the engine committed it.
    pub events: Vec<RecordedAccess>,
}

impl MemoryObserver for HbRecorder {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.events.push(RecordedAccess {
            thread: ev.thread.index(),
            addr: ev.addr.byte(),
            kind: ev.kind,
        });
        ObserverOutcome::NONE
    }
}

/// Runs a detector and the ground-truth recorder side by side on one
/// machine. Every event goes to both; the outcome (extra bus work) is
/// the detector's alone, so a tandem run is cycle-identical to running
/// the detector by itself.
#[derive(Debug)]
pub struct Tandem<D> {
    /// The detector under test.
    pub det: D,
    /// The ground-truth tap.
    pub rec: HbRecorder,
}

impl<D> Tandem<D> {
    /// Pairs a detector with a fresh recorder.
    pub fn new(det: D) -> Self {
        Tandem {
            det,
            rec: HbRecorder::default(),
        }
    }
}

impl<D: MemoryObserver> MemoryObserver for Tandem<D> {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        self.rec.on_access(ev);
        self.det.on_access(ev)
    }

    fn on_line_filled(
        &mut self,
        core: cord_sim::observer::CoreId,
        level: cord_sim::observer::Level,
        line: cord_trace::types::LineAddr,
    ) {
        self.det.on_line_filled(core, level, line);
    }

    fn on_line_removed(&mut self, removal: &cord_sim::observer::LineRemoval) -> ObserverOutcome {
        self.det.on_line_removed(removal)
    }

    fn on_thread_migrated(
        &mut self,
        thread: cord_trace::types::ThreadId,
        from: cord_sim::observer::CoreId,
        to: cord_sim::observer::CoreId,
    ) {
        self.det.on_thread_migrated(thread, from, to);
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        self.det.on_run_end(final_instr_counts);
    }
}

type Clock = Vec<u64>;

fn le(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn join(into: &mut Clock, from: &Clock) {
    for (x, y) in into.iter_mut().zip(from) {
        *x = (*x).max(*y);
    }
}

/// The words with at least one happens-before data race in the recorded
/// stream, with the synchronization events at the indices in
/// `suppress_sync` contributing no happens-before edges (their clock
/// ticks are kept, so per-thread local time is unchanged — the
/// monotonicity precondition).
///
/// Semantics mirror the simulator's synchronization expansion: a sync
/// write publishes the writer's clock on the sync word and ticks the
/// writer; a sync read joins the published clock. Data accesses race
/// with every earlier conflicting access by another thread whose clock
/// is not ≤ the accessor's.
pub fn racy_words(
    events: &[RecordedAccess],
    threads: usize,
    suppress_sync: &BTreeSet<usize>,
) -> BTreeSet<u64> {
    let mut clocks: Vec<Clock> = (0..threads)
        .map(|t| {
            let mut c = vec![0u64; threads];
            c[t] = 1;
            c
        })
        .collect();
    let mut published: BTreeMap<u64, Clock> = BTreeMap::new();
    // Per word: full access history of (thread, clock snapshot, is_write).
    let mut hist: BTreeMap<u64, Vec<(usize, Clock, bool)>> = BTreeMap::new();
    let mut racy: BTreeSet<u64> = BTreeSet::new();

    for (i, ev) in events.iter().enumerate() {
        let t = ev.thread;
        match ev.kind {
            AccessKind::SyncWrite => {
                if !suppress_sync.contains(&i) {
                    published.insert(ev.addr, clocks[t].clone());
                }
                clocks[t][t] += 1;
            }
            AccessKind::SyncRead => {
                if !suppress_sync.contains(&i) {
                    if let Some(p) = published.get(&ev.addr) {
                        let p = p.clone();
                        join(&mut clocks[t], &p);
                    }
                }
            }
            AccessKind::DataRead | AccessKind::DataWrite => {
                let is_write = ev.kind == AccessKind::DataWrite;
                let h = hist.entry(ev.addr).or_default();
                let mine = &clocks[t];
                for (ot, oc, ow) in h.iter() {
                    if *ot != t && (is_write || *ow) && !le(oc, mine) {
                        racy.insert(ev.addr);
                    }
                }
                h.push((t, mine.clone(), is_write));
            }
        }
    }
    racy
}

/// The indices of synchronization events in a recorded stream, in
/// order — the candidate set for the metamorphic suppression check.
pub fn sync_event_indices(events: &[RecordedAccess]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind.is_sync())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: usize, addr: u64, kind: AccessKind) -> RecordedAccess {
        RecordedAccess { thread, addr, kind }
    }

    #[test]
    fn unordered_conflict_races() {
        let events = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(1, 0x100, AccessKind::DataRead),
        ];
        let racy = racy_words(&events, 2, &BTreeSet::new());
        assert_eq!(racy.into_iter().collect::<Vec<_>>(), vec![0x100]);
    }

    #[test]
    fn flag_arc_orders() {
        let events = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(0, 0x8, AccessKind::SyncWrite), // set
            ev(1, 0x8, AccessKind::SyncRead),  // wait observes it
            ev(1, 0x100, AccessKind::DataRead),
        ];
        assert!(racy_words(&events, 2, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn read_read_never_races() {
        let events = vec![
            ev(0, 0x100, AccessKind::DataRead),
            ev(1, 0x100, AccessKind::DataRead),
        ];
        assert!(racy_words(&events, 2, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn suppressing_the_join_exposes_the_race() {
        let events = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(0, 0x8, AccessKind::SyncWrite),
            ev(1, 0x8, AccessKind::SyncRead),
            ev(1, 0x100, AccessKind::DataRead),
        ];
        let base = racy_words(&events, 2, &BTreeSet::new());
        assert!(base.is_empty());
        let suppressed = racy_words(&events, 2, &BTreeSet::from([2]));
        assert!(suppressed.contains(&0x100));
        // Monotone: suppression only ever adds racy words.
        assert!(suppressed.is_superset(&base));
    }

    #[test]
    fn transitive_lock_chain_orders() {
        // T0 releases L; T1 acquires L, releases L; T2 acquires L and
        // reads T0's write: ordered through the chain.
        let l = 0x8;
        let events = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(0, l, AccessKind::SyncWrite),
            ev(1, l, AccessKind::SyncRead),
            ev(1, l, AccessKind::SyncWrite),
            ev(2, l, AccessKind::SyncRead),
            ev(2, 0x100, AccessKind::DataRead),
        ];
        assert!(racy_words(&events, 3, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn cas_commit_stream_is_indistinguishable_from_a_lock_pair() {
        // An RMW expands to acquire-read + release-write at the atomic's
        // word — byte-for-byte the kinds a lock()/unlock() pair emits.
        // The ground truth therefore orders a publish-then-join CAS
        // chain exactly like a lock handoff on the same address.
        let lock_pair = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(0, 0x8, AccessKind::SyncRead),  // lock acquired
            ev(0, 0x8, AccessKind::SyncWrite), // unlock released
            ev(1, 0x8, AccessKind::SyncRead),  // lock acquired
            ev(1, 0x100, AccessKind::DataRead),
        ];
        let cas_chain = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(0, 0x8, AccessKind::SyncRead),  // CAS attempt
            ev(0, 0x8, AccessKind::SyncWrite), // CAS commit
            ev(1, 0x8, AccessKind::SyncRead),  // CAS attempt joins
            ev(1, 0x100, AccessKind::DataRead),
        ];
        let none = BTreeSet::new();
        assert_eq!(
            racy_words(&lock_pair, 2, &none),
            racy_words(&cas_chain, 2, &none)
        );
        assert!(racy_words(&cas_chain, 2, &none).is_empty());
        // Suppressing the commit exposes the race in both vocabularies.
        assert_eq!(
            racy_words(&lock_pair, 2, &BTreeSet::from([2])),
            racy_words(&cas_chain, 2, &BTreeSet::from([2])),
        );
        assert!(racy_words(&cas_chain, 2, &BTreeSet::from([2])).contains(&0x100));
    }

    #[test]
    fn sync_indices_enumerated_in_order() {
        let events = vec![
            ev(0, 0x100, AccessKind::DataWrite),
            ev(0, 0x8, AccessKind::SyncWrite),
            ev(1, 0x8, AccessKind::SyncRead),
        ];
        assert_eq!(sync_event_indices(&events), vec![1, 2]);
    }
}
