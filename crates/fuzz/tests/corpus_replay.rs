//! Replays the committed regression corpus through the full oracle
//! battery.
//!
//! Each file in `crates/fuzz/corpus/` pins a workload *shape* that
//! exposed a real bug in an earlier PR (walker rebuilds losing window
//! state, §2.7.4 resync under core oversubscription, window16 drift
//! under long local phases, barrier sense reuse, …). The bugs are
//! fixed; the corpus guards the fixes: every reproducer must pass the
//! battery cleanly, forever.
//!
//! To regenerate the corpus after an intentional format or generator
//! change:
//!
//! ```text
//! cargo test -p cord-fuzz --test corpus_replay -- --ignored regenerate_corpus
//! ```

use cord_fuzz::corpus::{self, Reproducer};
use cord_fuzz::gen::{generate, GenConfig};
use cord_fuzz::oracle::OracleOptions;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Six threads on four cores, repeatedly exchanging through a barrier:
/// every crossing migrates someone, exercising the §2.7.4 resync that
/// an early engine version mishandled when threads outnumber cores.
fn resync_timeshare() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-resync-timeshare", 6);
    let bar = b.alloc_barrier();
    let region = b.alloc_line_aligned(6 * 16);
    for round in 0..3u64 {
        for t in 0..6 {
            let mut h = b.thread_mut(t);
            h.write(region.word(t as u64 * 16 + round));
            h.barrier(bar);
            let left = (t + 5) % 6;
            h.read(region.word(left as u64 * 16 + round));
            h.barrier(bar);
        }
    }
    pin(
        b.build(),
        "§2.7.4 resync with threads > cores; every barrier crossing reschedules",
    )
}

/// Two threads streaming a multi-line region under a lock: constant
/// capacity evictions force shadow-line walker rebuilds (the PR 3
/// rebuild bug lost window state on refill).
fn walker_streaming() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-walker-streaming", 2);
    let lock = b.alloc_lock();
    let region = b.alloc_line_aligned(512);
    for t in 0..2 {
        let mut h = b.thread_mut(t);
        for chunk in 0..8u64 {
            h.lock(lock);
            for i in 0..16u64 {
                h.update(region.word(chunk * 64 + t as u64 * 16 + i));
            }
            h.unlock(lock);
            h.compute(40);
        }
    }
    pin(
        b.build(),
        "streaming evictions force window16 walker rebuilds (PR 3 shape)",
    )
}

/// Lock ping-pong with >2^16 cycles of local compute between handoffs:
/// the 16-bit window timestamps wrap and only the audit-guarded drift
/// handling keeps window16 equal to full-width (PR 3 window16 drift).
fn window16_drift() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-window16-drift", 2);
    let lock = b.alloc_lock();
    let region = b.alloc_line_aligned(4);
    for t in 0..2 {
        let mut h = b.thread_mut(t);
        for r in 0..3u64 {
            h.lock(lock);
            h.update(region.word(r));
            h.unlock(lock);
            h.compute(70_000);
        }
    }
    pin(
        b.build(),
        "16-bit timestamp wrap between lock handoffs (window16 drift)",
    )
}

/// A flag set, consumed, reset between two barriers, and reused — the
/// sense-reversal pattern whose naive reset placement races.
fn flag_reset_reuse() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-flag-reset-reuse", 3);
    let bar = b.alloc_barrier();
    let flag = b.alloc_flag();
    let region = b.alloc_line_aligned(2);
    for round in 0..2u64 {
        for t in 0..3 {
            let mut h = b.thread_mut(t);
            if t == 0 {
                h.write(region.word(round));
                h.flag_set(flag);
            } else {
                h.flag_wait(flag);
                h.read(region.word(round));
            }
        }
        for t in 0..3 {
            let mut h = b.thread_mut(t);
            h.barrier(bar);
            if round == 0 {
                if t == 0 {
                    h.flag_reset(flag);
                }
                h.barrier(bar);
            }
        }
    }
    pin(
        b.build(),
        "flag reset/reuse across two barriers (stale-set leak shape)",
    )
}

/// Four threads hammering distinct words of one line: coherence
/// ping-pong with zero races — the false-sharing suppression test.
fn false_sharing() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-false-sharing", 4);
    let region = b.alloc_line_aligned(4);
    for t in 0..4 {
        let mut h = b.thread_mut(t);
        for _ in 0..4 {
            h.update(region.word(t as u64));
        }
    }
    pin(
        b.build(),
        "false sharing: per-word timestamps must not cross-alarm",
    )
}

/// Two locks acquired in ID order by three threads.
fn nested_locks() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-nested-locks", 3);
    let locks = b.alloc_locks(2);
    let region = b.alloc_line_aligned(3);
    for t in 0..3 {
        let mut h = b.thread_mut(t);
        for r in 0..2u64 {
            h.lock(locks[0]);
            h.lock(locks[1]);
            h.update(region.word((t as u64 + r) % 3));
            h.unlock(locks[1]);
            h.unlock(locks[0]);
        }
    }
    pin(b.build(), "nested critical sections, ID-order acquisition")
}

/// The minimal true race: two threads, one word, no synchronization.
/// Ground truth and Ideal must both see it; CORD may or may not,
/// depending on timing, but must never alarm elsewhere.
fn racy_pair() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-racy-pair", 2);
    let region = b.alloc_line_aligned(1);
    b.thread_mut(0).write(region.word(0));
    b.thread_mut(1).read(region.word(0));
    pin(
        b.build(),
        "minimal write/read race; oracle truth must be non-empty",
    )
}

/// A release chain T0 → T1 → T2 through one lock: the transitive
/// ordering case scalar clocks must get right.
fn lock_chain() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-lock-chain", 3);
    let lock = b.alloc_lock();
    let region = b.alloc_line_aligned(1);
    for t in 0..3 {
        let mut h = b.thread_mut(t);
        h.lock(lock);
        h.update(region.word(0));
        h.unlock(lock);
    }
    pin(b.build(), "transitive happens-before through a lock chain")
}

/// Classic all-thread barrier exchange, four threads.
fn barrier_exchange() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-barrier-exchange", 4);
    let bar = b.alloc_barrier();
    let region = b.alloc_line_aligned(4 * 16);
    for t in 0..4 {
        let mut h = b.thread_mut(t);
        h.write(region.word(t as u64 * 16));
        h.barrier(bar);
        let left = (t + 3) % 4;
        h.read(region.word(left as u64 * 16));
        h.barrier(bar);
    }
    pin(b.build(), "sense-reversing barrier exchange")
}

/// Treiber-stack push/pop with the consumer's pop CAS sabotaged: two
/// producers publish line-padded nodes through `top`, but the consumer
/// reads them without ever joining — every payload word is a true
/// race. Pins the atomic-op text format and the oracle's consistency
/// on a racy lock-free stream.
fn treiber_pop_race() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-treiber-pop-race", 3);
    let top = b.alloc_atomic();
    let nodes: Vec<_> = (0..2).map(|_| b.alloc_line_aligned(16)).collect();
    for (t, node) in nodes.iter().enumerate() {
        let mut h = b.thread_mut(t);
        h.compute(7 * t as u32 + 1);
        for i in 0..16u64 {
            h.write(node.word(i));
        }
        h.cas_loop(top);
    }
    let mut h = b.thread_mut(2);
    h.compute(50_000);
    // Sabotage: no pop CAS — the consumer never joins the chain.
    for node in &nodes {
        for i in 0..16u64 {
            h.read(node.word(i));
        }
    }
    pin(
        b.build(),
        "Treiber push/pop with the pop CAS removed: all payload reads race",
    )
}

/// Minimal clean Michael-Scott queue: one enqueuer links two
/// line-padded nodes (link CAS covers the payload, tail CAS swings the
/// end), one dequeuer joins each link before reading.
fn ms_queue_handoff() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-ms-queue-handoff", 2);
    let _head = b.alloc_atomic();
    let tail = b.alloc_atomic();
    let links = b.alloc_atomics(2);
    let nodes: Vec<_> = (0..2).map(|_| b.alloc_line_aligned(4)).collect();
    {
        let mut h = b.thread_mut(0);
        for item in 0..2usize {
            for w in 0..4u64 {
                h.write(nodes[item].word(w));
            }
            h.cas_loop(links[item]);
            h.cas_loop(tail);
        }
    }
    let mut h = b.thread_mut(1);
    h.compute(50_000);
    for item in 0..2usize {
        h.cas_loop(links[item]);
        for w in 0..4u64 {
            h.read(nodes[item].word(w));
        }
    }
    pin(
        b.build(),
        "clean MS-queue handoff: per-node link CAS carries the HB edge",
    )
}

/// Seqlock with the writer's closing CAS sabotaged: the open CAS
/// publishes *before* the data writes (publish-then-tick), so the
/// same-round writes are uncovered and the readers' validated reads
/// are torn — a true race on every data word.
fn seqlock_torn() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-seqlock-torn", 3);
    let seq = b.alloc_atomic();
    let data = b.alloc_line_aligned(4);
    {
        let mut h = b.thread_mut(0);
        h.cas_loop(seq); // open — publishes pre-write state
        for i in 0..4u64 {
            h.write(data.word(i));
        }
        // Sabotage: the closing CAS that would publish the writes is
        // missing.
    }
    for t in 1..3 {
        let mut h = b.thread_mut(t);
        h.compute(40_000 + 17 * t as u32);
        h.cas_loop(seq); // acquire
        for i in 0..4u64 {
            h.read(data.word(i));
        }
        h.cas_loop(seq); // validate
    }
    pin(
        b.build(),
        "seqlock writer round without the closing CAS: torn reads race",
    )
}

/// Clean fetch-add combining counter: unconditional RMWs hammer one
/// atomic (never removable), per-worker line-padded partials hand off
/// through flags.
fn fa_counter_clean() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-fa-counter-clean", 3);
    let counter = b.alloc_atomic();
    let done = b.alloc_flags(2);
    let partials: Vec<_> = (0..2).map(|_| b.alloc_line_aligned(2)).collect();
    for t in 0..2 {
        let mut h = b.thread_mut(t);
        for k in 0..3u32 {
            h.compute(k % 3 + 2 * t as u32 + 1);
            h.fetch_add(counter);
        }
        for w in 0..2u64 {
            h.write(partials[t].word(w));
        }
        h.flag_set(done[t]);
    }
    let mut h = b.thread_mut(2);
    h.fetch_add(counter);
    for t in 0..2usize {
        h.flag_wait(done[t]);
        for w in 0..2u64 {
            h.read(partials[t].word(w));
        }
    }
    pin(
        b.build(),
        "fetch-add counter traffic is noise; flags carry the partials",
    )
}

/// A release chain T0 → T1 → T2 through one atomic: the CAS-loop
/// analogue of `lock_chain` — each committer's attempt joined its
/// predecessor's publish, so the ordering is transitive.
fn cas_chain() -> Reproducer {
    let mut b = WorkloadBuilder::new("pin-cas-chain", 3);
    let a = b.alloc_atomic();
    let region = b.alloc_line_aligned(1);
    for t in 0..3 {
        let mut h = b.thread_mut(t);
        h.compute(30_000 * t as u32 + 1);
        h.cas_loop(a);
        h.update(region.word(0));
        h.cas_loop(a);
    }
    pin(
        b.build(),
        "transitive happens-before through a CAS commit chain",
    )
}

/// One lock-free generator output, pinned by seed: atomic-RMW phases
/// only (fetch-add counters, CAS publication, CAS hammering).
fn lockfree_combo() -> Reproducer {
    let seed = 0x5EED_0002u64;
    let w = generate(&GenConfig::lockfree(), seed);
    Reproducer {
        workload: w.renamed("pin-lockfree-combo"),
        seed: Some(seed),
        violation_kind: None,
        detail: Some("generator snapshot: lock-free phase vocabulary".to_owned()),
    }
}

/// One generator output, pinned by seed: a multi-phase mixed workload
/// combining pipeline flags, locked updates, and unprotected traffic.
fn mixed_combo() -> Reproducer {
    let seed = 0x5EED_0001u64;
    let w = generate(&GenConfig::default(), seed);
    Reproducer {
        workload: w.renamed("pin-mixed-combo"),
        seed: Some(seed),
        violation_kind: None,
        detail: Some("generator snapshot: mixed phases incl. racy traffic".to_owned()),
    }
}

fn pin(workload: Workload, detail: &str) -> Reproducer {
    Reproducer {
        workload,
        seed: None,
        violation_kind: None,
        detail: Some(detail.to_owned()),
    }
}

fn curated() -> Vec<Reproducer> {
    vec![
        resync_timeshare(),
        walker_streaming(),
        window16_drift(),
        flag_reset_reuse(),
        false_sharing(),
        nested_locks(),
        racy_pair(),
        lock_chain(),
        barrier_exchange(),
        mixed_combo(),
        treiber_pop_race(),
        ms_queue_handoff(),
        seqlock_torn(),
        fa_counter_clean(),
        cas_chain(),
        lockfree_combo(),
    ]
}

#[test]
fn committed_corpus_replays_clean() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        entries.len() >= 16,
        "regression corpus shrank to {} entries — run regenerate_corpus",
        entries.len()
    );
    let opts = OracleOptions::default();
    for (path, rep) in &entries {
        assert_eq!(rep.workload.validate(), Ok(()), "{}", path.display());
        let report = corpus::replay(rep, &opts);
        assert!(
            report.passed(),
            "{} regressed: {:?}",
            path.display(),
            report.violations
        );
    }
}

#[test]
fn committed_corpus_matches_curated_sources() {
    // The on-disk files must stay in sync with the constructors above,
    // so an accidental edit of either side is caught.
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus loads");
    for rep in curated() {
        let rendered = corpus::render(&rep);
        let name = rep.workload.name();
        let on_disk = entries
            .iter()
            .find(|(p, _)| p.file_stem().is_some_and(|s| s == name))
            .unwrap_or_else(|| panic!("{name} missing from corpus — run regenerate_corpus"));
        let text = std::fs::read_to_string(&on_disk.0).expect("readable");
        assert_eq!(text, rendered, "{name} drifted — run regenerate_corpus");
    }
}

/// Writes the curated corpus to `crates/fuzz/corpus/`. Ignored by
/// default; run explicitly after intentional changes.
#[test]
#[ignore = "writes into the source tree; run explicitly to regenerate"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    for rep in curated() {
        let path = corpus::write_reproducer(&dir, &rep).expect("write reproducer");
        eprintln!("wrote {}", path.display());
    }
}
