//! Property coverage for the lock-free generator vocabulary at scale:
//! every race-free lock-free topology passes the full differential
//! battery — zero violations, zero ground-truth races, and a clean
//! window16 audit (`window16_mismatches != 0` surfaces as a violation)
//! — at 4, 8, and 16 cores on both coherence backends.

use cord_fuzz::gen::{generate, GenConfig};
use cord_fuzz::oracle::{check_workload, OracleOptions};
use cord_sim::config::CoherenceKind;

#[test]
fn race_free_lockfree_topologies_stay_clean_across_cores_and_backends() {
    let mut checked = 0usize;
    for cores in [4usize, 8, 16] {
        for backend in [CoherenceKind::SnoopingBus, CoherenceKind::Directory] {
            for seed in 0..4u64 {
                let gen_cfg = GenConfig {
                    race_free: true,
                    ..GenConfig::lockfree()
                }
                .wide(cores);
                let w = generate(&gen_cfg, 0xA70_0000 + seed);
                let opts = OracleOptions {
                    expect_race_free: true,
                    max_injections: 0,
                    cores,
                    backend,
                    ..OracleOptions::default()
                };
                let report = check_workload(&w, &opts);
                assert!(
                    report.passed(),
                    "{} (seed {seed}, {cores} cores, {backend:?}): {:?}",
                    w.name(),
                    report.violations
                );
                assert_eq!(
                    report.truth_races,
                    0,
                    "{} (seed {seed}, {cores} cores, {backend:?})",
                    w.name()
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 24);
}
