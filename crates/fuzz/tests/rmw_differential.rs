//! Tandem differential: the atomic RMW vocabulary is ordering-
//! equivalent to the lock vocabulary.
//!
//! An `Op::Atomic` expands to an acquire-read plus a release-write at
//! the atomic's word — the same labeled micro-steps a `lock`/`unlock`
//! pair emits at a lock's word. So a handoff guarded by a CAS chain
//! must be exactly as race-free as the same handoff guarded by a lock,
//! under both the ground truth and CORD itself; and replacing the
//! lock pair with CAS loops must never *shrink* the racy-word set of a
//! workload (the CAS edge is the weaker-or-equal one: it only covers
//! what the last committer published).

use cord_core::{CordConfig, CordDetector};
use cord_fuzz::truthhb::{racy_words, Tandem};
use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use std::collections::BTreeSet;

const BLOCK: u64 = 4;

/// A one-shot publish/consume handoff, guarded either by a lock pair
/// or by a CAS chain on one atomic; optionally with one deliberately
/// unguarded word (the metamorphic marker).
fn handoff(use_cas: bool, with_bare_race: bool) -> Workload {
    let name = if use_cas {
        "handoff-cas"
    } else {
        "handoff-lock"
    };
    let mut b = WorkloadBuilder::new(name, 2);
    let block = b.alloc_line_aligned(BLOCK);
    let bare = b.alloc_line_aligned(1);
    if use_cas {
        let a = b.alloc_atomic();
        {
            let mut h = b.thread_mut(0);
            for i in 0..BLOCK {
                h.write(block.word(i));
            }
            h.cas_loop(a);
            if with_bare_race {
                h.write(bare.word(0));
            }
        }
        let mut h = b.thread_mut(1);
        // The consumer joins well after the publish has committed.
        h.compute(50_000);
        h.cas_loop(a);
        for i in 0..BLOCK {
            h.read(block.word(i));
        }
        if with_bare_race {
            h.read(bare.word(0));
        }
    } else {
        let l = b.alloc_lock();
        {
            let mut h = b.thread_mut(0);
            h.lock(l);
            for i in 0..BLOCK {
                h.write(block.word(i));
            }
            h.unlock(l);
            if with_bare_race {
                h.write(bare.word(0));
            }
        }
        let mut h = b.thread_mut(1);
        h.compute(50_000);
        h.lock(l);
        for i in 0..BLOCK {
            h.read(block.word(i));
        }
        h.unlock(l);
        if with_bare_race {
            h.read(bare.word(0));
        }
    }
    b.build()
}

/// Runs the workload in tandem (CORD + ground-truth recorder) and
/// returns (truth racy words, CORD-reported race count).
fn run(w: &Workload, seed: u64) -> (BTreeSet<u64>, usize) {
    let cfg = MachineConfig::paper_4core();
    let det = CordDetector::new(CordConfig::paper(), w.num_threads(), cfg.cores);
    let m = Machine::new(cfg, w, Tandem::new(det), seed, InjectionPlan::none());
    let (_, tandem) = m.run().expect("run completes");
    let truth = racy_words(&tandem.rec.events, w.num_threads(), &BTreeSet::new());
    (truth, tandem.det.races().len())
}

#[test]
fn cas_handoff_is_exactly_as_clean_as_the_lock_handoff() {
    for seed in [3, 7, 11] {
        let (lock_truth, lock_cord) = run(&handoff(false, false), seed);
        let (cas_truth, cas_cord) = run(&handoff(true, false), seed);
        assert!(lock_truth.is_empty(), "seed {seed}: {lock_truth:?}");
        assert!(cas_truth.is_empty(), "seed {seed}: {cas_truth:?}");
        assert_eq!(lock_cord, 0, "seed {seed}");
        assert_eq!(cas_cord, 0, "seed {seed}");
    }
}

#[test]
fn replacing_the_lock_pair_with_cas_loops_never_shrinks_the_racy_set() {
    // Metamorphic: with one unguarded word alongside the handoff, the
    // CAS twin's truth must contain every racy word the lock twin has
    // (here: exactly the bare word, in both vocabularies).
    for seed in [3, 7, 11] {
        let (lock_truth, _) = run(&handoff(false, true), seed);
        let (cas_truth, _) = run(&handoff(true, true), seed);
        assert!(
            cas_truth.is_superset(&lock_truth),
            "seed {seed}: lock {lock_truth:?} vs cas {cas_truth:?}"
        );
        assert_eq!(lock_truth.len(), 1, "seed {seed}: {lock_truth:?}");
        assert_eq!(cas_truth.len(), 1, "seed {seed}: {cas_truth:?}");
    }
}

#[test]
fn removing_the_consumer_acquire_races_identically_in_both_vocabularies() {
    // §3.4 injection, differentially: dynamic removable instance 1 is
    // the consumer's acquire in both vocabularies (thread 1's `lock` /
    // thread 1's CAS attempt — removing a lock skips the acquire and
    // keeps the release, removing a CAS skips the whole RMW; either
    // way the consumer never joins the publish). The ground truth must
    // flag the handoff block, and CORD — whose consumer clock stayed
    // at its initial value — must report it too.
    for use_cas in [false, true] {
        let w = handoff(use_cas, false);
        let cfg = MachineConfig::paper_4core();
        let det = CordDetector::new(CordConfig::paper(), w.num_threads(), cfg.cores);
        let m = Machine::new(cfg, &w, Tandem::new(det), 7, InjectionPlan::remove_nth(1));
        let (_, tandem) = m.run().expect("run completes");
        let truth = racy_words(&tandem.rec.events, w.num_threads(), &BTreeSet::new());
        assert!(
            !truth.is_empty(),
            "cas={use_cas}: removing the consumer's acquire must race"
        );
        assert!(
            !tandem.det.races().is_empty(),
            "cas={use_cas}: CORD missed the removed-acquire race"
        );
    }
}
