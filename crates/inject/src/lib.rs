//! Synchronization fault injection (paper §3.4).
//!
//! "We model this kind of error by injecting a single dynamic instance
//! of missing synchronization into each run of the application.
//! Injection is random with a uniform distribution, so each dynamic
//! synchronization operation has an equal chance of being removed."
//!
//! The removable instances come in two streams:
//!
//! * **acquire-side** — lock calls (removed together with their
//!   matching unlock) and flag-wait calls; a barrier's internal mutex
//!   and flag-wait instances are individually removable, which models
//!   the paper's deliberately *elusive* errors (removing a whole
//!   barrier would cause thousands of races and be trivially
//!   detectable).
//! * **release-side** — flag sets (including the barrier-internal
//!   release). Removing one leaves the waiters stranded: blocking
//!   waiters deadlock, spinning waiters livelock. These are the fault
//!   modes the sweep watchdog exists for.
//!
//! The simulator enumerates dynamic instances of both streams in
//! dispatch order; this crate counts them with a dry run and draws
//! [`InjectionTarget`]s uniformly, producing one [`InjectionPlan`] per
//! experiment run.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine, SimError};
use cord_sim::observer::NullObserver;
use cord_trace::program::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dynamic synchronization-instance counts from a fault-free dry run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstanceCounts {
    /// Acquire-side removable instances (lock calls + flag waits).
    pub acquires: u64,
    /// Release-side instances (flag sets, incl. barrier-internal).
    pub releases: u64,
}

/// Counts the dynamic synchronization instances of one run (a
/// fault-free dry run with no detector attached).
///
/// # Errors
///
/// Returns the [`SimError`] if the dry run aborts — possible only with
/// a watchdog-configured machine or a malformed workload.
pub fn count_instances(
    machine: &MachineConfig,
    workload: &Workload,
    seed: u64,
) -> Result<InstanceCounts, SimError> {
    let m = Machine::new(
        machine.clone(),
        workload,
        NullObserver,
        seed,
        InjectionPlan::none(),
    );
    let (out, _) = m.run()?;
    Ok(InstanceCounts {
        acquires: out.stats.removable_sync_instances,
        releases: out.stats.release_sync_instances,
    })
}

/// One planned removal: which stream, and which dynamic instance in it.
///
/// Replaces the old `InjectionPlan`-with-`Option` handling in sweep
/// code: a campaign target always identifies exactly one instance, so
/// consumers never have to `.expect()` an optional field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectionTarget {
    /// Remove the `n`th acquire-side instance (lock call or flag wait).
    Acquire(u64),
    /// Remove the `n`th release-side instance (flag set).
    Release(u64),
}

impl InjectionTarget {
    /// The [`InjectionPlan`] that applies this removal.
    pub fn plan(&self) -> InjectionPlan {
        match *self {
            InjectionTarget::Acquire(n) => InjectionPlan::remove_nth(n),
            InjectionTarget::Release(n) => InjectionPlan::remove_release_nth(n),
        }
    }

    /// The dynamic instance index within its stream.
    pub fn instance(&self) -> u64 {
        match *self {
            InjectionTarget::Acquire(n) | InjectionTarget::Release(n) => n,
        }
    }

    /// Short stream name ("acquire" / "release") for records and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            InjectionTarget::Acquire(_) => "acquire",
            InjectionTarget::Release(_) => "release",
        }
    }
}

impl std::fmt::Display for InjectionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.kind(), self.instance())
    }
}

/// A set of injection runs for one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// Dynamic instance counts observed in the dry run.
    pub counts: InstanceCounts,
    /// The target of each planned run.
    pub targets: Vec<InjectionTarget>,
}

impl Campaign {
    /// Draws `runs` uniform acquire-side targets over
    /// `total_instances` without replacement (falling back to all
    /// instances when there are fewer than `runs`). The paper performs
    /// "between 20 and 100 injections per application".
    pub fn uniform(total_instances: u64, runs: usize, seed: u64) -> Self {
        let counts = InstanceCounts {
            acquires: total_instances,
            releases: 0,
        };
        Self::uniform_mixed(counts, runs, seed)
    }

    /// Draws `runs` uniform targets over the *combined* acquire +
    /// release population without replacement. Release removals are how
    /// deadlocks and livelocks enter a sweep, so campaigns that must
    /// exercise the watchdog use this constructor.
    pub fn uniform_mixed(counts: InstanceCounts, runs: usize, seed: u64) -> Self {
        let population = counts.acquires + counts.releases;
        let mut rng = StdRng::seed_from_u64(seed);
        let picks: Vec<u64> = if population <= runs as u64 {
            (0..population).collect()
        } else {
            // Floyd's algorithm for a uniform sample without replacement.
            let mut chosen = std::collections::BTreeSet::new();
            let k = runs as u64;
            for j in population - k..population {
                let t = rng.gen_range(0..=j);
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            chosen.into_iter().collect()
        };
        let targets = picks
            .into_iter()
            .map(|i| {
                if i < counts.acquires {
                    InjectionTarget::Acquire(i)
                } else {
                    InjectionTarget::Release(i - counts.acquires)
                }
            })
            .collect();
        Campaign { counts, targets }
    }

    /// Plans an acquire-only campaign for a workload on a machine:
    /// dry-run count, then uniform target selection. Acquire removals
    /// never strand a waiter, so every planned run terminates.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] if the dry run aborts.
    pub fn plan(
        machine: &MachineConfig,
        workload: &Workload,
        runs: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        let counts = count_instances(machine, workload, seed)?;
        Ok(Self::uniform(counts.acquires, runs, seed))
    }

    /// Plans a campaign over both streams. Runs that remove a release
    /// will deadlock or livelock; pair this with a sweep watchdog.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] if the dry run aborts.
    pub fn plan_mixed(
        machine: &MachineConfig,
        workload: &Workload,
        runs: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        let counts = count_instances(machine, workload, seed)?;
        Ok(Self::uniform_mixed(counts, runs, seed))
    }

    /// The injection plans, one per run.
    pub fn plans(&self) -> impl Iterator<Item = InjectionPlan> + '_ {
        self.targets.iter().map(InjectionTarget::plan)
    }

    /// Number of planned runs.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` if no runs are planned (no removable sync in the
    /// workload).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::builder::WorkloadBuilder;

    fn demo_workload() -> Workload {
        let mut b = WorkloadBuilder::new("demo", 2);
        let l = b.alloc_lock();
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0)
            .lock(l)
            .update(d.word(0))
            .unlock(l)
            .flag_set(g);
        b.thread_mut(1)
            .lock(l)
            .update(d.word(0))
            .unlock(l)
            .flag_wait(g);
        b.build()
    }

    #[test]
    fn dry_run_counts_both_streams() {
        let w = demo_workload();
        let c = count_instances(&MachineConfig::paper_4core(), &w, 1).expect("dry run completes");
        // 2 lock calls + 1 flag wait; 1 flag set.
        assert_eq!(
            c,
            InstanceCounts {
                acquires: 3,
                releases: 1
            }
        );
    }

    #[test]
    fn uniform_targets_are_distinct_and_in_range() {
        let c = Campaign::uniform(100, 30, 7);
        assert_eq!(c.len(), 30);
        let set: std::collections::HashSet<_> = c.targets.iter().collect();
        assert_eq!(set.len(), 30, "sampling is without replacement");
        assert!(c
            .targets
            .iter()
            .all(|t| matches!(t, InjectionTarget::Acquire(n) if *n < 100)));
    }

    #[test]
    fn mixed_campaigns_cover_both_streams() {
        let counts = InstanceCounts {
            acquires: 10,
            releases: 10,
        };
        let c = Campaign::uniform_mixed(counts, 20, 3);
        assert_eq!(c.len(), 20);
        assert!(c.targets.iter().any(|t| t.kind() == "acquire"));
        assert!(c.targets.iter().any(|t| t.kind() == "release"));
        assert!(c.targets.iter().all(|t| t.instance() < 10));
    }

    #[test]
    fn small_populations_enumerate_exhaustively() {
        let c = Campaign::uniform(5, 30, 7);
        let instances: Vec<u64> = c.targets.iter().map(InjectionTarget::instance).collect();
        assert_eq!(instances, vec![0, 1, 2, 3, 4]);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_instances_plan_nothing() {
        let c = Campaign::uniform(0, 10, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn plan_end_to_end() {
        let w = demo_workload();
        let c = Campaign::plan(&MachineConfig::paper_4core(), &w, 10, 3).expect("dry run ok");
        assert_eq!(c.counts.acquires, 3);
        assert_eq!(c.len(), 3);
        let plans: Vec<_> = c.plans().collect();
        assert_eq!(plans[0], InjectionPlan::remove_nth(0));
    }

    #[test]
    fn release_targets_map_to_release_plans() {
        let t = InjectionTarget::Release(4);
        assert_eq!(t.plan(), InjectionPlan::remove_release_nth(4));
        assert_eq!(t.to_string(), "release#4");
        assert_eq!(InjectionTarget::Acquire(0).to_string(), "acquire#0");
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let a = Campaign::uniform(1000, 50, 9);
        let b = Campaign::uniform(1000, 50, 9);
        assert_eq!(a, b);
        let c = Campaign::uniform(1000, 50, 10);
        assert_ne!(a, c);
    }
}
