//! Synchronization fault injection (paper §3.4).
//!
//! "We model this kind of error by injecting a single dynamic instance
//! of missing synchronization into each run of the application.
//! Injection is random with a uniform distribution, so each dynamic
//! synchronization operation has an equal chance of being removed."
//!
//! The removable instances are lock calls (removed together with their
//! matching unlock) and flag-wait calls; a barrier's internal mutex and
//! flag-wait instances are individually removable, which models the
//! paper's deliberately *elusive* errors (removing a whole barrier would
//! cause thousands of races and be trivially detectable).
//!
//! The simulator enumerates dynamic removable instances in dispatch
//! order; this crate counts them with a dry run and draws target indices
//! uniformly, producing one [`InjectionPlan`] per experiment run.

#![warn(missing_docs)]

use cord_sim::config::MachineConfig;
use cord_sim::engine::{InjectionPlan, Machine};
use cord_sim::observer::NullObserver;
use cord_trace::program::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counts the dynamic removable synchronization instances of one run
/// (a fault-free dry run with no detector attached).
///
/// # Panics
///
/// Panics if the workload deadlocks (impossible after validation).
pub fn count_instances(machine: &MachineConfig, workload: &Workload, seed: u64) -> u64 {
    let m = Machine::new(
        machine.clone(),
        workload,
        NullObserver,
        seed,
        InjectionPlan::none(),
    );
    let (out, _) = m.run().expect("dry run deadlocked");
    out.stats.removable_sync_instances
}

/// A set of injection runs for one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// Total dynamic removable instances observed in the dry run.
    pub total_instances: u64,
    /// The target instance of each planned run.
    pub targets: Vec<u64>,
}

impl Campaign {
    /// Draws `runs` uniform targets over `total_instances` without
    /// replacement (falling back to all instances when there are fewer
    /// than `runs`). The paper performs "between 20 and 100 injections
    /// per application".
    pub fn uniform(total_instances: u64, runs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let targets = if total_instances <= runs as u64 {
            (0..total_instances).collect()
        } else {
            // Floyd's algorithm for a uniform sample without replacement.
            let mut chosen = std::collections::BTreeSet::new();
            let k = runs as u64;
            for j in total_instances - k..total_instances {
                let t = rng.gen_range(0..=j);
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            chosen.into_iter().collect()
        };
        Campaign {
            total_instances,
            targets,
        }
    }

    /// Plans a campaign for a workload on a machine: dry-run count, then
    /// uniform target selection.
    pub fn plan(
        machine: &MachineConfig,
        workload: &Workload,
        runs: usize,
        seed: u64,
    ) -> Self {
        let total = count_instances(machine, workload, seed);
        Self::uniform(total, runs, seed)
    }

    /// The injection plans, one per run.
    pub fn plans(&self) -> impl Iterator<Item = InjectionPlan> + '_ {
        self.targets.iter().map(|&n| InjectionPlan::remove_nth(n))
    }

    /// Number of planned runs.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` if no runs are planned (no removable sync in the
    /// workload).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::builder::WorkloadBuilder;

    fn demo_workload() -> Workload {
        let mut b = WorkloadBuilder::new("demo", 2);
        let l = b.alloc_lock();
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0)
            .lock(l)
            .update(d.word(0))
            .unlock(l)
            .flag_set(g);
        b.thread_mut(1)
            .lock(l)
            .update(d.word(0))
            .unlock(l)
            .flag_wait(g);
        b.build()
    }

    #[test]
    fn dry_run_counts_lock_and_wait_instances() {
        let w = demo_workload();
        let n = count_instances(&MachineConfig::paper_4core(), &w, 1);
        // 2 lock calls + 1 flag wait.
        assert_eq!(n, 3);
    }

    #[test]
    fn uniform_targets_are_distinct_and_in_range() {
        let c = Campaign::uniform(100, 30, 7);
        assert_eq!(c.len(), 30);
        let set: std::collections::HashSet<_> = c.targets.iter().collect();
        assert_eq!(set.len(), 30, "sampling is without replacement");
        assert!(c.targets.iter().all(|&t| t < 100));
    }

    #[test]
    fn small_populations_enumerate_exhaustively() {
        let c = Campaign::uniform(5, 30, 7);
        assert_eq!(c.targets, vec![0, 1, 2, 3, 4]);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_instances_plan_nothing() {
        let c = Campaign::uniform(0, 10, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn plan_end_to_end() {
        let w = demo_workload();
        let c = Campaign::plan(&MachineConfig::paper_4core(), &w, 10, 3);
        assert_eq!(c.total_instances, 3);
        assert_eq!(c.len(), 3);
        let plans: Vec<_> = c.plans().collect();
        assert_eq!(plans[0], InjectionPlan::remove_nth(0));
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let a = Campaign::uniform(1000, 50, 9);
        let b = Campaign::uniform(1000, 50, 9);
        assert_eq!(a, b);
        let c = Campaign::uniform(1000, 50, 10);
        assert_ne!(a, c);
    }
}
