//! Durable JSON documents: checksum footers, crash-atomic writes, and
//! previous-good fallback for checkpoints.
//!
//! A checkpoint that a `kill -9` can truncate is worse than no
//! checkpoint: a resume that silently parses half a document replays
//! the wrong prefix of a campaign. This module makes checkpoint
//! documents *self-verifying* and their writes *crash-atomic*:
//!
//! * [`seal`] appends a one-line footer (`#cord-durable v1 len=N
//!   fnv1a=H`) carrying the body's byte length and FNV-1a checksum;
//!   [`unseal`] refuses truncated or garbled documents instead of
//!   handing back whatever happens to parse.
//! * [`write_sealed_atomic`] writes to a temp file *in the same
//!   directory*, fsyncs it, then renames it over the target, so the
//!   target path always holds either the old or the new complete
//!   document — never a partial flush.
//! * [`write_checkpoint`] / [`load_checkpoint`] add rotation: before a
//!   new checkpoint lands, the current (verified-good) one is renamed
//!   to `<path>.prev`, and a loader that finds the primary corrupt
//!   falls back to the previous good generation with a warning rather
//!   than starting from scratch (or panicking).
//!
//! The footer is outside the JSON document proper; [`unseal_lenient`]
//! still accepts legacy footer-less files so pre-existing checkpoints
//! keep resuming.

use crate::{obj, FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Footer magic; a versioned prefix so the format can evolve.
pub const FOOTER_MAGIC: &str = "#cord-durable v1";

/// FNV-1a over `bytes` — the same dependency-free hash the bench
/// checkpoint's options hash uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a sealed document failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// No `#cord-durable` footer line was found.
    MissingFooter,
    /// The footer line did not parse.
    BadFooter {
        /// The offending footer line.
        line: String,
    },
    /// The body is shorter or longer than the footer's recorded length
    /// — the classic symptom of a write cut off by a crash.
    LengthMismatch {
        /// Length recorded in the footer.
        expected: usize,
        /// Actual body length on disk.
        actual: usize,
    },
    /// The body hashed to a different checksum than the footer records.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum of the body on disk.
        actual: u64,
    },
    /// The (verified) body failed to parse as JSON.
    Json(JsonError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::MissingFooter => write!(f, "no durable footer"),
            DurableError::BadFooter { line } => write!(f, "unparseable durable footer {line:?}"),
            DurableError::LengthMismatch { expected, actual } => write!(
                f,
                "body length {actual} != footer length {expected} (truncated write?)"
            ),
            DurableError::ChecksumMismatch { expected, actual } => write!(
                f,
                "body checksum {actual:#018x} != footer checksum {expected:#018x} (corruption)"
            ),
            DurableError::Json(e) => write!(f, "verified body failed to parse: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

/// Renders `doc` (pretty) with the length+checksum footer appended.
pub fn seal(doc: &Json) -> String {
    let body = doc.to_string_pretty();
    let mut out = body;
    let len = out.len();
    let sum = fnv1a(out.as_bytes());
    out.push_str(&format!("\n{FOOTER_MAGIC} len={len} fnv1a={sum:016x}\n"));
    out
}

/// Splits `text` into `(body, footer_line)` if a footer is present.
fn split_footer(text: &str) -> Option<(&str, &str)> {
    // The footer is the last non-empty line; search from the end so a
    // `#`-free JSON body can never be confused for one.
    let trimmed = text.trim_end_matches('\n');
    let nl = trimmed.rfind('\n')?;
    let (body, footer) = (&trimmed[..nl], &trimmed[nl + 1..]);
    footer.starts_with(FOOTER_MAGIC).then_some((body, footer))
}

fn parse_footer(line: &str) -> Result<(usize, u64), DurableError> {
    let bad = || DurableError::BadFooter {
        line: line.to_owned(),
    };
    let rest = line.strip_prefix(FOOTER_MAGIC).ok_or_else(bad)?;
    let mut len = None;
    let mut sum = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = field.strip_prefix("fnv1a=") {
            sum = u64::from_str_radix(v, 16).ok();
        }
    }
    match (len, sum) {
        (Some(l), Some(s)) => Ok((l, s)),
        _ => Err(bad()),
    }
}

/// Verifies and parses a sealed document. Errors on missing/garbled
/// footers, truncation, checksum mismatches, and (only after the body
/// verified) JSON syntax errors.
pub fn unseal(text: &str) -> Result<Json, DurableError> {
    let (body, footer) = split_footer(text).ok_or(DurableError::MissingFooter)?;
    let (len, sum) = parse_footer(footer)?;
    if body.len() != len {
        return Err(DurableError::LengthMismatch {
            expected: len,
            actual: body.len(),
        });
    }
    let actual = fnv1a(body.as_bytes());
    if actual != sum {
        return Err(DurableError::ChecksumMismatch {
            expected: sum,
            actual,
        });
    }
    Json::parse(body).map_err(DurableError::Json)
}

/// Like [`unseal`], but accepts legacy footer-less documents (returned
/// with `sealed = false`); any *present* footer is still enforced.
pub fn unseal_lenient(text: &str) -> Result<(Json, bool), DurableError> {
    match split_footer(text) {
        Some(_) => unseal(text).map(|doc| (doc, true)),
        None => Json::parse(text)
            .map(|doc| (doc, false))
            .map_err(DurableError::Json),
    }
}

/// Writes `doc`, sealed, crash-atomically: temp file in the same
/// directory, fsync, rename over `path`, then a best-effort fsync of
/// the directory so the rename itself survives power loss.
///
/// # Errors
///
/// Propagates the underlying I/O error; on failure the previous
/// content of `path` (if any) is untouched.
pub fn write_sealed_atomic(path: &Path, doc: &Json) -> io::Result<()> {
    let text = seal(doc);
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    sibling(path, ".tmp")
}

/// `<path>.prev` — the previous good generation of a checkpoint.
pub fn prev_path(path: &Path) -> PathBuf {
    sibling(path, ".prev")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Writes a checkpoint generation: the current file, if it verifies,
/// is rotated to `<path>.prev` first, then the new document lands
/// atomically at `path`. Every crash window leaves at least one
/// verifiable generation on disk:
///
/// * killed before the rotation — old checkpoint intact at `path`;
/// * killed between rotation and rename — old checkpoint at `.prev`,
///   which [`load_checkpoint`] falls back to;
/// * killed mid-temp-write — the temp file is garbage, but `path` (or
///   `.prev`) still holds a sealed document.
///
/// A *corrupt* current file is never rotated (that would overwrite a
/// good `.prev` with garbage); it is simply replaced.
///
/// # Errors
///
/// Propagates the I/O error of the final atomic write; rotation
/// failures are swallowed (the write itself is what matters).
pub fn write_checkpoint(path: &Path, doc: &Json) -> io::Result<()> {
    if let Ok(current) = fs::read_to_string(path) {
        if unseal_lenient(&current).is_ok() {
            let _ = fs::rename(path, prev_path(path));
        }
    }
    write_sealed_atomic(path, doc)
}

/// One abnormal thing a checkpoint load (or its caller) had to do:
/// a generation skipped as corrupt, a fallback taken, a verified
/// document rejected as malformed. Structured — not a bare string — so
/// services can surface recovery history in status responses and
/// durable snapshots instead of burying it in stderr; the [`Display`]
/// rendering keeps the old log lines working.
///
/// [`Display`]: fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Machine-readable kind (one of the `KIND_*` constants here, or a
    /// caller-defined kind for caller-level recovery steps).
    pub kind: String,
    /// The file involved.
    pub path: String,
    /// Human-readable detail — typically the underlying error text.
    pub detail: String,
}

impl RecoveryEvent {
    /// A generation could not be read (I/O error other than not-found).
    pub const KIND_UNREADABLE: &'static str = "unreadable";
    /// The primary generation failed verification; the loader moved on
    /// to the previous generation.
    pub const KIND_CORRUPT_PRIMARY: &'static str = "corrupt-primary";
    /// The previous generation failed verification too.
    pub const KIND_CORRUPT_PREVIOUS: &'static str = "corrupt-previous";

    /// A recovery event of `kind` for `path`.
    pub fn new(kind: impl Into<String>, path: &Path, detail: impl Into<String>) -> Self {
        RecoveryEvent {
            kind: kind.into(),
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint {} [{}]: {}",
            self.path, self.kind, self.detail
        )
    }
}

impl ToJson for RecoveryEvent {
    fn to_json(&self) -> Json {
        obj(vec![
            ("kind", Json::Str(self.kind.clone())),
            ("path", Json::Str(self.path.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

impl FromJson for RecoveryEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RecoveryEvent {
            kind: FromJson::from_json(v.field("kind")?)?,
            path: FromJson::from_json(v.field("path")?)?,
            detail: FromJson::from_json(v.field("detail")?)?,
        })
    }
}

/// What [`load_checkpoint`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointLoad {
    /// The recovered document, if any generation verified.
    pub doc: Option<Json>,
    /// `true` when the primary was unusable and `.prev` was used.
    pub from_previous: bool,
    /// `true` when the recovered document carried a verified footer
    /// (`false` for legacy footer-less files).
    pub sealed: bool,
    /// Structured recovery reports (corrupt generations skipped,
    /// fallbacks taken).
    pub warnings: Vec<RecoveryEvent>,
}

/// Loads a checkpoint written by [`write_checkpoint`]: tries `path`,
/// falls back to `<path>.prev`, and reports (rather than panics over)
/// any corrupt generation it had to skip. A missing file is not a
/// warning — it is simply an empty load.
pub fn load_checkpoint(path: &Path) -> CheckpointLoad {
    let mut load = CheckpointLoad {
        doc: None,
        from_previous: false,
        sealed: false,
        warnings: Vec::new(),
    };
    for (candidate, is_prev) in [(path.to_path_buf(), false), (prev_path(path), true)] {
        let text = match fs::read_to_string(&candidate) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => {
                load.warnings.push(RecoveryEvent::new(
                    RecoveryEvent::KIND_UNREADABLE,
                    &candidate,
                    e.to_string(),
                ));
                continue;
            }
        };
        match unseal_lenient(&text) {
            Ok((doc, sealed)) => {
                load.doc = Some(doc);
                load.from_previous = is_prev;
                load.sealed = sealed;
                return load;
            }
            Err(e) => {
                load.warnings.push(if is_prev {
                    RecoveryEvent::new(
                        RecoveryEvent::KIND_CORRUPT_PREVIOUS,
                        &candidate,
                        e.to_string(),
                    )
                } else {
                    RecoveryEvent::new(
                        RecoveryEvent::KIND_CORRUPT_PRIMARY,
                        &candidate,
                        format!("{e}; falling back to previous generation"),
                    )
                });
            }
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    fn doc(n: u64) -> Json {
        obj(vec![
            ("gen", Json::UInt(n)),
            ("name", Json::Str("x".into())),
        ])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cord-durable-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).expect("temp dir");
        d
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let d = doc(1);
        let text = seal(&d);
        assert_eq!(unseal(&text).expect("verifies"), d);
        let (lenient, sealed) = unseal_lenient(&text).expect("verifies");
        assert_eq!(lenient, d);
        assert!(sealed);
    }

    #[test]
    fn truncation_is_detected() {
        let text = seal(&doc(2));
        // Chop bytes out of the middle so the footer survives but the
        // body doesn't: rebuilt as body-prefix + footer line.
        let (body, footer) = split_footer(&text).expect("has footer");
        let cut = format!("{}\n{}\n", &body[..body.len() - 4], footer);
        match unseal(&cut) {
            Err(DurableError::LengthMismatch { .. }) => {}
            other => panic!("expected length mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let text = seal(&doc(3));
        // Same-length garble: flip a digit inside the body.
        let garbled = text.replacen("\"gen\": 3", "\"gen\": 7", 1);
        assert_eq!(garbled.len(), text.len());
        match unseal(&garbled) {
            Err(DurableError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_footerless_documents_load_leniently() {
        let plain = doc(4).to_string_pretty();
        assert_eq!(unseal(&plain), Err(DurableError::MissingFooter));
        let (v, sealed) = unseal_lenient(&plain).expect("legacy parse");
        assert_eq!(v, doc(4));
        assert!(!sealed);
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = tmpdir("atomic");
        let path = dir.join("ck.json");
        write_sealed_atomic(&path, &doc(1)).expect("write");
        let load = load_checkpoint(&path);
        assert_eq!(load.doc, Some(doc(1)));
        assert!(load.sealed && !load.from_previous && load.warnings.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_previous_good_generation() {
        let dir = tmpdir("rotate");
        let path = dir.join("ck.json");
        write_checkpoint(&path, &doc(1)).expect("gen 1");
        write_checkpoint(&path, &doc(2)).expect("gen 2");
        assert_eq!(load_checkpoint(&path).doc, Some(doc(2)));
        assert_eq!(load_checkpoint(&prev_path(&path)).doc, Some(doc(1)));

        // Corrupt the primary: the loader falls back to .prev with a
        // warning instead of failing.
        fs::write(&path, "garbage{{{").expect("corrupt");
        let load = load_checkpoint(&path);
        assert_eq!(load.doc, Some(doc(1)));
        assert!(load.from_previous);
        assert_eq!(load.warnings.len(), 1, "{:?}", load.warnings);
        assert_eq!(load.warnings[0].kind, RecoveryEvent::KIND_CORRUPT_PRIMARY);
        assert!(load.warnings[0]
            .to_string()
            .contains("falling back to previous generation"));
        let back = RecoveryEvent::from_json(&load.warnings[0].to_json()).expect("round-trips");
        assert_eq!(back, load.warnings[0]);

        // A corrupt primary must never be rotated over the good .prev.
        write_checkpoint(&path, &doc(3)).expect("gen 3");
        assert_eq!(load_checkpoint(&path).doc, Some(doc(3)));
        assert_eq!(load_checkpoint(&prev_path(&path)).doc, Some(doc(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_load_empty_without_warnings() {
        let dir = tmpdir("missing");
        let load = load_checkpoint(&dir.join("absent.json"));
        assert_eq!(load.doc, None);
        assert!(load.warnings.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
