//! Dependency-free JSON support for the CORD reproduction.
//!
//! The build environment has no access to crates.io, so `serde` /
//! `serde_json` are unavailable. This crate provides the small slice of
//! functionality the workspace actually needs: a [`Json`] value tree,
//! a recursive-descent parser, compact and pretty writers, and the
//! [`ToJson`] / [`FromJson`] conversion traits that bench result types
//! implement by hand.
//!
//! Design notes:
//! - Objects preserve insertion order (`Vec<(String, Json)>`) so that
//!   serialized sweep checkpoints are byte-stable across a run — the
//!   resume-equality guarantee in EXPERIMENTS.md depends on this.
//! - Integers are kept exact: `u64` / `i64` literals do not round-trip
//!   through `f64`, which matters for 64-bit seeds and instance ids.

#![warn(missing_docs)]

pub mod durable;

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer literal (fits `u64`).
    UInt(u64),
    /// A negative integer literal (fits `i64`).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved as inserted/parsed.
    Object(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, including position for parse errors.
    pub msg: String,
}

impl JsonError {
    /// Builds an error from anything displayable.
    pub fn new(msg: impl fmt::Display) -> Self {
        JsonError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up `key` in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up `key`, erroring (with the key name) when missing.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The elements of an array, or an error naming the actual kind.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The fields of an object, or an error naming the actual kind.
    pub fn as_object(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Object(fields) => Ok(fields),
            other => Err(JsonError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// The string payload, or an error naming the actual kind.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (2 spaces), stable for diffing checkpoints.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep a float marker so the value parses back as Float.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, erroring on shape or type mismatches.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError::new("integer out of range")),
                    other => Err(JsonError::new(format!(
                        "expected unsigned integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        // JSON has no NaN/Inf. Mapping them to `Json::Null` here (not
        // just in the writer) keeps trees comparable (`Json` derives
        // `PartialEq`, and `Float(NAN) != Float(NAN)`) and makes the
        // write/parse round trip total: `FromJson` maps `Null` back to
        // `NAN`.
        if self.is_finite() {
            Json::Float(*self)
        } else {
            Json::Null
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Float(x) => Ok(*x),
            Json::UInt(n) => Ok(*n as f64),
            Json::Int(n) => Ok(*n as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(JsonError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_owned)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(inner) => inner.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), T::from_json(v)?)))
            .collect()
    }
}

/// Builds a `Json::Object` from `("key", value.to_json())` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn u64_integers_are_exact() {
        let big = u64::MAX - 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::UInt(big));
        assert_eq!(u64::from_json(&v).unwrap(), big);
    }

    #[test]
    fn object_preserves_order_and_roundtrips() {
        let v = obj(vec![
            ("zebra", Json::UInt(1)),
            ("apple", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("name", Json::Str("x\"y\\z\n".into())),
        ]);
        let compact = v.to_string_compact();
        assert!(compact.starts_with("{\"zebra\":"));
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("Aé😀".into()));
    }

    #[test]
    fn maps_and_options() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let v = m.to_json();
        let back: BTreeMap<String, u64> = FromJson::from_json(&v).unwrap();
        assert_eq!(back, m);

        let none: Option<u64> = None;
        assert_eq!(none.to_json(), Json::Null);
        let some: Option<u64> = FromJson::from_json(&Json::UInt(9)).unwrap();
        assert_eq!(some, Some(9));
    }

    #[test]
    fn float_written_with_marker() {
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(x.to_json(), Json::Null);
            assert_eq!(x.to_json().to_string_compact(), "null");
            // FromJson maps null back to NaN, closing the round trip.
            assert!(f64::from_json(&x.to_json()).unwrap().is_nan());
        }
        // The writer guards non-finite payloads too, in case a
        // Json::Float was constructed directly.
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
    }
}

#[cfg(test)]
mod float_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every f64 bit pattern — finite, subnormal, infinite, or NaN —
        /// survives to_json → write → parse → from_json: finite values
        /// come back exactly (Rust's shortest-round-trip formatting),
        /// non-finite ones come back as NaN via null.
        #[test]
        fn f64_roundtrip_all_bit_patterns(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            let text = x.to_json().to_string_compact();
            let parsed = Json::parse(&text).unwrap();
            let back = f64::from_json(&parsed).unwrap();
            if x.is_finite() {
                prop_assert_eq!(back, x);
                // The tree itself also round-trips as a value.
                prop_assert_eq!(parsed, x.to_json());
            } else {
                prop_assert!(back.is_nan());
                prop_assert_eq!(parsed, Json::Null);
            }
        }

        /// Subnormals specifically: the smallest magnitudes must not
        /// collapse to zero or lose bits through the writer.
        #[test]
        fn f64_roundtrip_subnormals(bits in 1u64..(1u64 << 52)) {
            let x = f64::from_bits(bits); // exponent 0, nonzero mantissa
            prop_assert!(x != 0.0 && !x.is_normal());
            let text = x.to_json().to_string_compact();
            let back = f64::from_json(&Json::parse(&text).unwrap()).unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
    }
}
