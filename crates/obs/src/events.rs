//! The detector event vocabulary: what a detector observes.
//!
//! The simulator drives a [`MemoryObserver`] with every memory access,
//! cache fill/removal, thread migration, and end-of-run event. Detectors
//! (CORD in `cord-core`, the vector-clock configurations in
//! `cord-detectors`) mirror the cache residency they care about from the
//! fill/removal stream and perform clock/timestamp work on the access
//! stream. An observer can report extra address-bus transactions (race
//! check requests, memory-timestamp update broadcasts, §2.7.2) which the
//! engine charges against the shared address/timestamp bus — this is how
//! CORD's (small) performance overhead arises.
//!
//! These types live in `cord-obs` (not `cord-sim`) because they are the
//! *wire vocabulary* of streaming detection: [`crate::wire`] serializes
//! them, so any producer — the simulator, a capture file, a socket —
//! can feed a detector without the detector knowing which. `cord-sim`
//! re-exports everything here as `cord_sim::observer` for source
//! compatibility.

use cord_trace::types::{Addr, LineAddr, ThreadId};
use std::fmt;

/// A core index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Cache level, for fill/removal events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Private first-level cache.
    L1,
    /// Private second-level cache (where CORD keeps its state).
    L2,
}

/// Read or write, data or synchronization — the four access kinds CORD
/// distinguishes (§2.7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Ordinary data load.
    DataRead,
    /// Ordinary data store.
    DataWrite,
    /// Labeled synchronization load (lock spin, flag test).
    SyncRead,
    /// Labeled synchronization store (lock grab/release, flag set).
    SyncWrite,
}

impl AccessKind {
    /// `true` for stores.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::DataWrite | AccessKind::SyncWrite)
    }

    /// `true` for labeled synchronization accesses.
    #[inline]
    pub fn is_sync(self) -> bool {
        matches!(self, AccessKind::SyncRead | AccessKind::SyncWrite)
    }
}

/// How an access was satisfied, which determines both its latency and —
/// for CORD — which timestamps tag the response (§2.7.2: "Data responses
/// are tagged with the data's timestamp… Memory responses use the main
/// memory timestamps instead").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Hit in the local L1, no bus activity.
    L1Hit,
    /// Hit in the local L2, no bus activity.
    L2Hit,
    /// Hit in a local cache but in Shared state needing a write
    /// permission upgrade — an address-bus transaction all caches snoop.
    UpgradeHit,
    /// Miss served by another core's cache (cache-to-cache transfer).
    FillFromSibling(CoreId),
    /// Miss served by main memory.
    FillFromMemory,
}

impl AccessPath {
    /// `true` when the access already involves a broadcast bus
    /// transaction that snooping caches observe (so CORD race checks
    /// piggyback for free).
    #[inline]
    pub fn has_bus_transaction(self) -> bool {
        !matches!(self, AccessPath::L1Hit | AccessPath::L2Hit)
    }

    /// `true` when the data (and therefore its timestamp context) came
    /// from main memory.
    #[inline]
    pub fn from_memory(self) -> bool {
        matches!(self, AccessPath::FillFromMemory)
    }
}

/// One memory access, as seen by an observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Core that issued the access.
    pub core: CoreId,
    /// Thread running on that core.
    pub thread: ThreadId,
    /// Word address accessed.
    pub addr: Addr,
    /// Access kind.
    pub kind: AccessKind,
    /// How the access was satisfied.
    pub path: AccessPath,
    /// The thread's instruction count *before* this access retires (the
    /// order log records instructions-per-clock-value from these).
    pub instr_index: u64,
    /// Global cycle at which the access started.
    pub cycle: u64,
}

/// Why a line left a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemovalCause {
    /// Capacity/conflict eviction chose this line as victim.
    Capacity,
    /// A remote write (read-for-ownership) invalidated it.
    Invalidation,
}

/// A line leaving a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRemoval {
    /// Whose cache.
    pub core: CoreId,
    /// Which level.
    pub level: Level,
    /// Which line.
    pub line: LineAddr,
    /// Why it left.
    pub cause: RemovalCause,
    /// Whether the line was dirty (a write-back accompanies it).
    pub dirty: bool,
}

/// Extra bus work an observer performed for an event; the engine charges
/// it on the timestamp bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverOutcome {
    /// Race-check requests: broadcast on the timestamp bus, and the
    /// issuing instruction cannot retire until its check completes
    /// (§3.1's "rare retirement delay"), so a backed-up timestamp bus
    /// stalls the core.
    pub race_check_requests: u32,
    /// Posted (fire-and-forget) transactions: memory-timestamp update
    /// broadcasts. They occupy the timestamp bus but never stall the
    /// issuing core.
    pub posted_transactions: u32,
}

impl ObserverOutcome {
    /// No extra bus work.
    pub const NONE: ObserverOutcome = ObserverOutcome {
        race_check_requests: 0,
        posted_transactions: 0,
    };

    /// `n` race-check requests.
    pub fn race_checks(n: u32) -> Self {
        ObserverOutcome {
            race_check_requests: n,
            posted_transactions: 0,
        }
    }

    /// `n` posted broadcasts.
    pub fn posted(n: u32) -> Self {
        ObserverOutcome {
            race_check_requests: 0,
            posted_transactions: n,
        }
    }

    /// Total transactions of both kinds.
    pub fn total(&self) -> u32 {
        self.race_check_requests + self.posted_transactions
    }
}

/// Detector hook interface; all methods default to no-ops so observers
/// implement only what they need.
pub trait MemoryObserver {
    /// A memory access retired. Return any extra bus transactions the
    /// detector issued for it.
    fn on_access(&mut self, _ev: &AccessEvent) -> ObserverOutcome {
        ObserverOutcome::NONE
    }

    /// A line was filled into a cache level.
    fn on_line_filled(&mut self, _core: CoreId, _level: Level, _line: LineAddr) {}

    /// A line left a cache level (eviction or invalidation).
    fn on_line_removed(&mut self, _removal: &LineRemoval) -> ObserverOutcome {
        ObserverOutcome::NONE
    }

    /// A thread moved to a different core (§2.7.4).
    fn on_thread_migrated(&mut self, _thread: ThreadId, _from: CoreId, _to: CoreId) {}

    /// The run finished; `final_instr_counts[t]` is thread `t`'s total
    /// retired instruction count (observers flush logs here).
    fn on_run_end(&mut self, _final_instr_counts: &[u64]) {}
}

/// Boxed observers observe too, so a `Machine` can run a detector
/// chosen at runtime (`Box<dyn Detector>` from a sweep configuration)
/// through the same generic engine.
impl<O: MemoryObserver + ?Sized> MemoryObserver for Box<O> {
    fn on_access(&mut self, ev: &AccessEvent) -> ObserverOutcome {
        (**self).on_access(ev)
    }

    fn on_line_filled(&mut self, core: CoreId, level: Level, line: LineAddr) {
        (**self).on_line_filled(core, level, line)
    }

    fn on_line_removed(&mut self, removal: &LineRemoval) -> ObserverOutcome {
        (**self).on_line_removed(removal)
    }

    fn on_thread_migrated(&mut self, thread: ThreadId, from: CoreId, to: CoreId) {
        (**self).on_thread_migrated(thread, from, to)
    }

    fn on_run_end(&mut self, final_instr_counts: &[u64]) {
        (**self).on_run_end(final_instr_counts)
    }
}

/// The baseline observer: a machine without any order-recording or DRD
/// support (the denominator of Figure 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl MemoryObserver for NullObserver {}

#[allow(unused)]
fn _assert_observer_object_safe(_: &dyn MemoryObserver) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::DataWrite.is_write());
        assert!(AccessKind::SyncWrite.is_write());
        assert!(!AccessKind::DataRead.is_write());
        assert!(AccessKind::SyncRead.is_sync());
        assert!(!AccessKind::DataRead.is_sync());
    }

    #[test]
    fn path_bus_transaction_classification() {
        assert!(!AccessPath::L1Hit.has_bus_transaction());
        assert!(!AccessPath::L2Hit.has_bus_transaction());
        assert!(AccessPath::UpgradeHit.has_bus_transaction());
        assert!(AccessPath::FillFromSibling(CoreId(1)).has_bus_transaction());
        assert!(AccessPath::FillFromMemory.has_bus_transaction());
        assert!(AccessPath::FillFromMemory.from_memory());
        assert!(!AccessPath::FillFromSibling(CoreId(0)).from_memory());
    }

    #[test]
    fn null_observer_is_free() {
        let mut o = NullObserver;
        let ev = AccessEvent {
            core: CoreId(0),
            thread: ThreadId(0),
            addr: Addr::new(0x40),
            kind: AccessKind::DataRead,
            path: AccessPath::L1Hit,
            instr_index: 0,
            cycle: 0,
        };
        assert_eq!(o.on_access(&ev), ObserverOutcome::NONE);
    }

    #[test]
    fn outcome_constructors() {
        assert_eq!(ObserverOutcome::race_checks(2).race_check_requests, 2);
        assert_eq!(ObserverOutcome::posted(3).posted_transactions, 3);
        assert_eq!(ObserverOutcome::race_checks(2).total(), 2);
        assert_eq!(ObserverOutcome::default(), ObserverOutcome::NONE);
    }

    #[test]
    fn core_display() {
        assert_eq!(format!("{}", CoreId(2)), "P2");
    }
}
