//! Observability for the CORD reproduction: a bounded run-event trace
//! and a unified metrics registry.
//!
//! The paper's argument is quantitative — overhead is counted in bus
//! transactions, walker evictions, and race-check traffic — so the
//! simulator and detector expose *when* those events happen, not just
//! end-of-run totals. This crate provides the shared vocabulary:
//!
//! * [`TraceHandle`] / [`EventRing`]: a clonable, thread-safe handle to
//!   a bounded drop-oldest ring buffer of [`TraceEvent`]s. A disabled
//!   handle (the default everywhere) is a `None` and costs one branch
//!   per emission site — payload construction is behind a closure and
//!   never runs.
//! * [`MetricsRegistry`]: additive named counters and float gauges that
//!   merge `SimStats`, `CordStats`, pool progress, and sweep profiling
//!   into one JSON-serializable snapshot.
//! * [`DurStat`] / [`SweepProfile`]: wall-clock profiling aggregates
//!   for the parallel sweep runner (per-job run time, queue wait,
//!   checkpoint-flush time per worker).
//!
//! `cord-obs` depends only on `cord-json`; the simulator, detector, and
//! bench crates depend on it (never the reverse), so the hook methods
//! that feed the registry live next to the stats they read.

#![warn(missing_docs)]

pub mod events;
pub mod wire;

pub use events::{
    AccessEvent, AccessKind, AccessPath, CoreId, Level, LineRemoval, MemoryObserver, NullObserver,
    ObserverOutcome, RemovalCause,
};
pub use wire::{
    kind_from_name, kind_name, StreamEvent, StreamGeometry, StreamHeader, WireError, WIRE_VERSION,
};

use cord_json::{obj, FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Which bus a traced transaction occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusKind {
    /// The data bus (line transfers between caches and memory).
    Data,
    /// The address/snoop bus.
    Addr,
    /// The timestamp bus CORD adds (§3.1).
    Ts,
    /// The memory bus.
    Mem,
}

impl BusKind {
    fn name(self) -> &'static str {
        match self {
            BusKind::Data => "data",
            BusKind::Addr => "addr",
            BusKind::Ts => "ts",
            BusKind::Mem => "mem",
        }
    }

    fn from_name(name: &str) -> Option<BusKind> {
        Some(match name {
            "data" => BusKind::Data,
            "addr" => BusKind::Addr,
            "ts" => BusKind::Ts,
            "mem" => BusKind::Mem,
            _ => return None,
        })
    }
}

/// What a single trace event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A memory access that occupied a bus (miss, upgrade, or fill).
    Bus {
        /// The bus occupied.
        bus: BusKind,
        /// The cache line involved.
        line: u64,
    },
    /// A cache line filled into a core's cache.
    Fill {
        /// Destination core.
        core: u8,
        /// Cache level (1 or 2).
        level: u8,
        /// The line filled.
        line: u64,
    },
    /// A cache line removed from a core's cache.
    Remove {
        /// Source core.
        core: u8,
        /// Cache level (1 or 2).
        level: u8,
        /// The line removed.
        line: u64,
        /// Whether the line was dirty.
        dirty: bool,
        /// `true` for an invalidation, `false` for a capacity eviction.
        invalidation: bool,
    },
    /// An explicit race-check broadcast on the timestamp bus (§2.7.2).
    RaceCheck {
        /// The line checked.
        line: u64,
        /// Number of check requests issued.
        requests: u32,
    },
    /// A memory-timestamp update broadcast (§2.5).
    MemtsBroadcast {
        /// Posted timestamp-bus transactions.
        count: u32,
    },
    /// A periodic cache-walker pass (§2.7.5).
    WalkerPass {
        /// History entries evicted by this pass.
        evicted: u64,
        /// The eviction bound (stamps below it were folded to memory).
        bound: u64,
    },
    /// A fault-injection target fired (a sync instance was removed).
    Injection {
        /// The dynamic instance index removed.
        instance: u64,
        /// `true` when a release (flag set) was removed, `false` for an
        /// acquire (lock acquisition / flag wait).
        release: bool,
    },
    /// A thread migrated between cores.
    Migration {
        /// Source core.
        from: u8,
        /// Destination core.
        to: u8,
    },
    /// A data race was reported by the detector.
    Race {
        /// The racing byte address.
        addr: u64,
        /// The core whose cached timestamp conflicted.
        other_core: u8,
    },
}

impl EventKind {
    fn name(&self) -> &'static str {
        match self {
            EventKind::Bus { .. } => "bus",
            EventKind::Fill { .. } => "fill",
            EventKind::Remove { .. } => "remove",
            EventKind::RaceCheck { .. } => "race_check",
            EventKind::MemtsBroadcast { .. } => "memts_broadcast",
            EventKind::WalkerPass { .. } => "walker_pass",
            EventKind::Injection { .. } => "injection",
            EventKind::Migration { .. } => "migration",
            EventKind::Race { .. } => "race",
        }
    }
}

/// Sentinel for events with no originating thread (e.g. walker passes).
pub const NO_THREAD: u16 = u16::MAX;

/// One timestamped entry in the run-event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// Originating thread, or [`NO_THREAD`].
    pub thread: u16,
    /// The payload.
    pub kind: EventKind,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cycle", self.cycle.to_json()),
            ("thread", self.thread.to_json()),
            ("kind", self.kind.name().to_json()),
        ];
        match &self.kind {
            EventKind::Bus { bus, line } => {
                fields.push(("bus", bus.name().to_json()));
                fields.push(("line", line.to_json()));
            }
            EventKind::Fill { core, level, line } => {
                fields.push(("core", core.to_json()));
                fields.push(("level", level.to_json()));
                fields.push(("line", line.to_json()));
            }
            EventKind::Remove {
                core,
                level,
                line,
                dirty,
                invalidation,
            } => {
                fields.push(("core", core.to_json()));
                fields.push(("level", level.to_json()));
                fields.push(("line", line.to_json()));
                fields.push(("dirty", dirty.to_json()));
                fields.push(("invalidation", invalidation.to_json()));
            }
            EventKind::RaceCheck { line, requests } => {
                fields.push(("line", line.to_json()));
                fields.push(("requests", Json::UInt(u64::from(*requests))));
            }
            EventKind::MemtsBroadcast { count } => {
                fields.push(("count", Json::UInt(u64::from(*count))));
            }
            EventKind::WalkerPass { evicted, bound } => {
                fields.push(("evicted", evicted.to_json()));
                fields.push(("bound", bound.to_json()));
            }
            EventKind::Injection { instance, release } => {
                fields.push(("instance", instance.to_json()));
                fields.push(("release", release.to_json()));
            }
            EventKind::Migration { from, to } => {
                fields.push(("from", from.to_json()));
                fields.push(("to", to.to_json()));
            }
            EventKind::Race { addr, other_core } => {
                fields.push(("addr", addr.to_json()));
                fields.push(("other_core", other_core.to_json()));
            }
        }
        obj(fields)
    }
}

impl FromJson for TraceEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind_name = v.field("kind")?.as_str()?;
        let kind = match kind_name {
            "bus" => {
                let bus_name = v.field("bus")?.as_str()?;
                EventKind::Bus {
                    bus: BusKind::from_name(bus_name)
                        .ok_or_else(|| JsonError::new(format!("unknown bus `{bus_name}`")))?,
                    line: FromJson::from_json(v.field("line")?)?,
                }
            }
            "fill" => EventKind::Fill {
                core: FromJson::from_json(v.field("core")?)?,
                level: FromJson::from_json(v.field("level")?)?,
                line: FromJson::from_json(v.field("line")?)?,
            },
            "remove" => EventKind::Remove {
                core: FromJson::from_json(v.field("core")?)?,
                level: FromJson::from_json(v.field("level")?)?,
                line: FromJson::from_json(v.field("line")?)?,
                dirty: FromJson::from_json(v.field("dirty")?)?,
                invalidation: FromJson::from_json(v.field("invalidation")?)?,
            },
            "race_check" => EventKind::RaceCheck {
                line: FromJson::from_json(v.field("line")?)?,
                requests: FromJson::from_json(v.field("requests")?)?,
            },
            "memts_broadcast" => EventKind::MemtsBroadcast {
                count: FromJson::from_json(v.field("count")?)?,
            },
            "walker_pass" => EventKind::WalkerPass {
                evicted: FromJson::from_json(v.field("evicted")?)?,
                bound: FromJson::from_json(v.field("bound")?)?,
            },
            "injection" => EventKind::Injection {
                instance: FromJson::from_json(v.field("instance")?)?,
                release: FromJson::from_json(v.field("release")?)?,
            },
            "migration" => EventKind::Migration {
                from: FromJson::from_json(v.field("from")?)?,
                to: FromJson::from_json(v.field("to")?)?,
            },
            "race" => EventKind::Race {
                addr: FromJson::from_json(v.field("addr")?)?,
                other_core: FromJson::from_json(v.field("other_core")?)?,
            },
            other => {
                return Err(JsonError::new(format!(
                    "unknown trace event kind `{other}`"
                )));
            }
        };
        Ok(TraceEvent {
            cycle: FromJson::from_json(v.field("cycle")?)?,
            thread: FromJson::from_json(v.field("thread")?)?,
            kind,
        })
    }
}

/// A bounded drop-oldest buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, dropping the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the ring: `{"dropped": N, "events": [...]}`.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("dropped", self.dropped.to_json()),
            (
                "events",
                Json::Array(self.buf.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// A clonable, thread-safe handle to an [`EventRing`] — or nothing.
///
/// The disabled handle is the default everywhere; emission sites pay a
/// single `Option` branch and never construct the event payload:
///
/// ```
/// use cord_obs::{TraceHandle, TraceEvent, EventKind, NO_THREAD};
///
/// let off = TraceHandle::disabled();
/// off.emit(|| unreachable!("payload closure must not run"));
///
/// let on = TraceHandle::bounded(16);
/// on.emit(|| TraceEvent {
///     cycle: 3,
///     thread: NO_THREAD,
///     kind: EventKind::WalkerPass { evicted: 2, bound: 100 },
/// });
/// assert_eq!(on.snapshot().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<Mutex<EventRing>>>);

impl TraceHandle {
    /// The no-op handle: emissions are a branch and nothing else.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A handle backed by a fresh ring of `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        TraceHandle(Some(Arc::new(Mutex::new(EventRing::new(capacity)))))
    }

    /// Whether events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event built by `f` — which is only called when the
    /// handle is enabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(ring) = &self.0 {
            lock_ring(ring).push(f());
        }
    }

    /// A copy of the retained events, oldest first (empty if disabled).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.0 {
            Some(ring) => lock_ring(ring).events().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Serializes the ring, or `Json::Null` when disabled.
    pub fn to_json(&self) -> Json {
        match &self.0 {
            Some(ring) => lock_ring(ring).to_json(),
            None => Json::Null,
        }
    }
}

fn lock_ring(ring: &Mutex<EventRing>) -> MutexGuard<'_, EventRing> {
    // A panic while holding the ring lock cannot leave it inconsistent
    // (push is a pop+push); keep collecting rather than poisoning the
    // whole trace.
    match ring.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Additive named counters plus float gauges, the unified snapshot the
/// sweep writes as its aggregate metrics JSON.
///
/// Counter names are dotted paths by convention (`sim.data_reads`,
/// `cord.walker_evictions`, `sweep.jobs_failed`); merging two
/// registries adds counters pointwise and keeps the maximum of each
/// gauge unless overwritten.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// The current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Folds `other` into `self`: counters add, gauges overwrite.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("counters", self.counters.to_json()),
            (
                "gauges",
                Json::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for MetricsRegistry {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MetricsRegistry {
            counters: FromJson::from_json(v.field("counters")?)?,
            gauges: FromJson::from_json(v.field("gauges")?)?,
        })
    }
}

/// Aggregate of a wall-clock duration series: count, total, maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DurStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples, in seconds.
    pub total_s: f64,
    /// Largest sample, in seconds.
    pub max_s: f64,
}

impl DurStat {
    /// Records one duration sample (in seconds).
    pub fn record(&mut self, secs: f64) {
        self.count += 1;
        self.total_s += secs;
        if secs > self.max_s {
            self.max_s = secs;
        }
    }

    /// Mean sample length in seconds (0 with no samples).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &DurStat) {
        self.count += other.count;
        self.total_s += other.total_s;
        if other.max_s > self.max_s {
            self.max_s = other.max_s;
        }
    }
}

impl ToJson for DurStat {
    fn to_json(&self) -> Json {
        obj(vec![
            ("count", self.count.to_json()),
            ("total_s", self.total_s.to_json()),
            ("mean_s", self.mean_s().to_json()),
            ("max_s", self.max_s.to_json()),
        ])
    }
}

/// A log-bucketed latency histogram with tail quantiles — the
/// distribution-shaped sibling of [`DurStat`].
///
/// Samples are nanosecond latencies. Buckets are powers of two (bucket
/// `i` holds samples in `[2^(i-1), 2^i)`, bucket 0 holds zeros), so the
/// histogram is fixed-size, allocation-free to record into, and merges
/// pointwise across workers. Quantiles are resolved to a bucket's upper
/// bound, which bounds the relative error at 2× — plenty for the
/// order-of-magnitude questions the hot-path work asks (is the p999 a
/// cache miss or a walker pass?).
///
/// Like [`DurStat`], a histogram is timing-dependent and must only ever
/// be surfaced through the profile/finalize side of sweep output, never
/// through the deterministic merged metrics that byte-identity checks
/// cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts; bucket `i` covers `[2^(i-1), 2^i)` ns.
    buckets: [u64; 64],
    /// Total samples recorded.
    count: u64,
    /// Smallest sample seen, in ns.
    min_ns: u64,
    /// Largest sample seen, in ns.
    max_ns: u64,
    /// Sum of all samples, in ns.
    total_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            total_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(ns: u64) -> usize {
        (64 - ns.leading_zeros()) as usize
    }

    /// Upper bound (exclusive) of bucket `i` in nanoseconds, saturating
    /// at `u64::MAX` for the last bucket.
    fn bucket_upper_ns(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one latency sample, in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns).min(63)] += 1;
        self.count += 1;
        self.total_ns += ns;
        if ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample in nanoseconds (0 with no samples).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Largest sample in nanoseconds (0 with no samples).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest sample in nanoseconds (0 with no samples).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound in
    /// nanoseconds, clamped to the observed max. Returns 0 with no
    /// samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency (see [`Histogram::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Folds `other` into `self` pointwise.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        // Sparse bucket encoding: only non-empty buckets, as
        // [index, count] pairs, so empty histograms stay tiny.
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| Json::Array(vec![(i as u64).to_json(), c.to_json()]))
            .collect();
        obj(vec![
            ("count", self.count.to_json()),
            ("min_ns", self.min_ns().to_json()),
            ("mean_ns", self.mean_ns().to_json()),
            ("p50_ns", self.p50_ns().to_json()),
            ("p99_ns", self.p99_ns().to_json()),
            ("p999_ns", self.p999_ns().to_json()),
            ("max_ns", self.max_ns().to_json()),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

/// Wall-clock profile of one parallel sweep: how long jobs ran, how
/// long they waited for a worker, and how long each worker spent
/// flushing checkpoints.
#[derive(Debug, Clone, Default)]
pub struct SweepProfile {
    /// Per-job execution wall-clock.
    pub job_run: DurStat,
    /// Per-job wait between batch submission and job start.
    pub queue_wait: DurStat,
    /// Checkpoint-flush time, keyed by worker thread name.
    pub flush_by_worker: BTreeMap<String, DurStat>,
    /// Per-access detector latency across all observed runs (merged
    /// pointwise from each run's [`Histogram`]); empty unless the sweep
    /// ran with observability enabled.
    pub access_latency: Histogram,
}

impl SweepProfile {
    /// Records a checkpoint flush performed by `worker`.
    pub fn record_flush(&mut self, worker: &str, secs: f64) {
        self.flush_by_worker
            .entry(worker.to_owned())
            .or_default()
            .record(secs);
    }

    /// Writes the profile's aggregates into `reg` under `sweep.*`.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        reg.add("sweep.jobs_profiled", self.job_run.count);
        reg.gauge("sweep.job_run_total_s", self.job_run.total_s);
        reg.gauge("sweep.job_run_mean_s", self.job_run.mean_s());
        reg.gauge("sweep.job_run_max_s", self.job_run.max_s);
        reg.gauge("sweep.queue_wait_mean_s", self.queue_wait.mean_s());
        reg.gauge("sweep.queue_wait_max_s", self.queue_wait.max_s);
        let mut flush = DurStat::default();
        for stat in self.flush_by_worker.values() {
            flush.merge(stat);
        }
        reg.add("sweep.checkpoint_flushes", flush.count);
        reg.gauge("sweep.checkpoint_flush_total_s", flush.total_s);
        reg.gauge("sweep.checkpoint_flush_max_s", flush.max_s);
        reg.add("sweep.access_latency_samples", self.access_latency.count());
        if !self.access_latency.is_empty() {
            let lat = &self.access_latency;
            reg.gauge("sweep.access_latency_mean_ns", lat.mean_ns());
            reg.gauge("sweep.access_latency_p50_ns", lat.p50_ns() as f64);
            reg.gauge("sweep.access_latency_p99_ns", lat.p99_ns() as f64);
            reg.gauge("sweep.access_latency_p999_ns", lat.p999_ns() as f64);
            reg.gauge("sweep.access_latency_max_ns", lat.max_ns() as f64);
        }
    }
}

impl ToJson for SweepProfile {
    fn to_json(&self) -> Json {
        obj(vec![
            ("job_run", self.job_run.to_json()),
            ("queue_wait", self.queue_wait.to_json()),
            (
                "flush_by_worker",
                Json::Object(
                    self.flush_by_worker
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            ("access_latency", self.access_latency.to_json()),
        ])
    }
}

/// Wall-clock and failure profile of one supervised, multi-process
/// sharded campaign (the cord-shard coordinator): worker retries,
/// heartbeat misses, backoff sleeps, abandonments, and per-shard
/// worker wall-time.
///
/// Everything here is timing- or failure-dependent, so the coordinator
/// records it into a *separate* supervision document, never into the
/// deterministic merged metrics that byte-identity is checked over.
#[derive(Debug, Clone, Default)]
pub struct SupervisionProfile {
    /// Worker respawns after a crash or hang (chaos kills included).
    pub retries: u64,
    /// Heartbeat timeouts that led to a worker being killed.
    pub heartbeat_misses: u64,
    /// Shards abandoned after exhausting their retry budget.
    pub abandoned: u64,
    /// Workers killed by chaos mode (subset of `retries`' causes).
    pub chaos_kills: u64,
    /// Total milliseconds spent sleeping in retry backoff.
    pub backoff_ms: u64,
    /// Worker wall-clock across all shard attempts.
    pub shard_wall: DurStat,
    /// Worker wall-clock keyed by shard label (e.g. `"shard-3"`).
    pub shard_wall_by_shard: BTreeMap<String, DurStat>,
}

impl SupervisionProfile {
    /// Records one worker attempt for `shard` that ran `secs` seconds.
    pub fn record_shard_wall(&mut self, shard: &str, secs: f64) {
        self.shard_wall.record(secs);
        self.shard_wall_by_shard
            .entry(shard.to_owned())
            .or_default()
            .record(secs);
    }

    /// Writes the profile's aggregates into `reg` under `shard.*`.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        reg.add("shard.retries", self.retries);
        reg.add("shard.heartbeat_misses", self.heartbeat_misses);
        reg.add("shard.abandoned", self.abandoned);
        reg.add("shard.chaos_kills", self.chaos_kills);
        reg.add("shard.backoff_ms", self.backoff_ms);
        reg.add("shard.worker_attempts", self.shard_wall.count);
        reg.gauge("shard.worker_wall_total_s", self.shard_wall.total_s);
        reg.gauge("shard.worker_wall_mean_s", self.shard_wall.mean_s());
        reg.gauge("shard.worker_wall_max_s", self.shard_wall.max_s);
        for (shard, stat) in &self.shard_wall_by_shard {
            reg.gauge(&format!("shard.worker_wall_s.{shard}"), stat.total_s);
        }
    }
}

impl ToJson for SupervisionProfile {
    fn to_json(&self) -> Json {
        obj(vec![
            ("retries", self.retries.to_json()),
            ("heartbeat_misses", self.heartbeat_misses.to_json()),
            ("abandoned", self.abandoned.to_json()),
            ("chaos_kills", self.chaos_kills.to_json()),
            ("backoff_ms", self.backoff_ms.to_json()),
            ("shard_wall", self.shard_wall.to_json()),
            (
                "shard_wall_by_shard",
                Json::Object(
                    self.shard_wall_by_shard
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            thread: 0,
            kind: EventKind::MemtsBroadcast { count: 1 },
        }
    }

    #[test]
    fn histogram_empty_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p999_ns(), 0);
    }

    #[test]
    fn histogram_records_and_buckets_log2() {
        let mut h = Histogram::new();
        for ns in [0, 1, 3, 100, 1000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 1000);
        assert_eq!(h.mean_ns(), 1104.0 / 5.0);
        // 3 → bucket [2,4): upper bound 4; the median of
        // {0, 1, 3, 100, 1000} lands there.
        assert_eq!(h.p50_ns(), 4);
        // Tail quantiles resolve to the top bucket, clamped to the
        // observed max (1024-bucket upper bound would overshoot).
        assert_eq!(h.p99_ns(), 1000);
        assert_eq!(h.p999_ns(), 1000);
    }

    #[test]
    fn histogram_quantile_error_is_bounded_by_bucket_width() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record_ns(700);
        }
        // All mass in bucket [512, 1024): every quantile reports the
        // bucket's upper bound clamped to the observed max — within 2×
        // of the true value.
        for q in [0.01, 0.5, 0.99, 0.999] {
            assert_eq!(h.quantile_ns(q), 700);
        }
        h.record_ns(10_000_000);
        assert_eq!(h.p50_ns(), 1024); // now unclamped: true upper bound
        assert_eq!(h.p999_ns(), 1024);
        assert_eq!(h.max_ns(), 10_000_000);
    }

    #[test]
    fn histogram_merge_is_pointwise_and_preserves_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(10);
        a.record_ns(20);
        b.record_ns(5);
        b.record_ns(40_000);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.min_ns(), 5);
        assert_eq!(merged.max_ns(), 40_000);
        // Merging an empty histogram is the identity.
        let before = merged.clone();
        merged.merge(&Histogram::new());
        assert_eq!(merged, before);
        // Merge order does not matter.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other, merged);
    }

    #[test]
    fn histogram_json_uses_sparse_buckets() {
        let mut h = Histogram::new();
        h.record_ns(3);
        h.record_ns(3);
        h.record_ns(1000);
        let doc = h.to_json();
        let uint = |j: &Json| match j {
            Json::UInt(u) => *u,
            other => panic!("expected integer, got {other:?}"),
        };
        assert_eq!(uint(doc.field("count").expect("count")), 3);
        assert_eq!(uint(doc.field("min_ns").expect("min_ns")), 3);
        assert_eq!(uint(doc.field("max_ns").expect("max_ns")), 1000);
        let buckets = doc
            .field("buckets")
            .expect("buckets")
            .as_array()
            .expect("buckets array");
        // Two non-empty buckets: [2,4) with 2 samples, [512,1024) with 1.
        assert_eq!(buckets.len(), 2);
        let pair = buckets[0].as_array().expect("pair");
        assert_eq!(uint(&pair[0]), 2);
        assert_eq!(uint(&pair[1]), 2);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = EventRing::new(2);
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3]);
    }

    #[test]
    fn disabled_handle_never_builds_payloads() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        h.emit(|| unreachable!("disabled handle must not call the closure"));
        assert!(h.snapshot().is_empty());
        assert_eq!(h.to_json(), Json::Null);
    }

    #[test]
    fn clones_share_one_ring() {
        let a = TraceHandle::bounded(8);
        let b = a.clone();
        a.emit(|| ev(1));
        b.emit(|| ev(2));
        assert_eq!(a.snapshot().len(), 2);
        assert_eq!(b.snapshot().len(), 2);
    }

    #[test]
    fn events_serialize_with_kind_tag() {
        let e = TraceEvent {
            cycle: 7,
            thread: 3,
            kind: EventKind::Bus {
                bus: BusKind::Ts,
                line: 42,
            },
        };
        let text = e.to_json().to_string_compact();
        assert_eq!(
            text,
            "{\"cycle\":7,\"thread\":3,\"kind\":\"bus\",\"bus\":\"ts\",\"line\":42}"
        );
    }

    #[test]
    fn registry_adds_merges_and_roundtrips() {
        let mut a = MetricsRegistry::new();
        a.add("sim.data_reads", 5);
        a.add("sim.data_reads", 2);
        a.gauge("sweep.job_run_max_s", 0.25);
        let mut b = MetricsRegistry::new();
        b.add("sim.data_reads", 3);
        b.add("cord.data_races", 1);
        a.merge(&b);
        assert_eq!(a.counter("sim.data_reads"), 10);
        assert_eq!(a.counter("cord.data_races"), 1);
        assert_eq!(a.counter("absent"), 0);
        let back = MetricsRegistry::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn dur_stat_tracks_mean_and_max() {
        let mut d = DurStat::default();
        d.record(0.5);
        d.record(1.5);
        assert_eq!(d.count, 2);
        assert!((d.mean_s() - 1.0).abs() < 1e-12);
        assert!((d.max_s - 1.5).abs() < 1e-12);
        let mut p = SweepProfile {
            job_run: d,
            ..SweepProfile::default()
        };
        p.record_flush("cord-pool-0", 0.01);
        p.record_flush("cord-pool-0", 0.03);
        p.record_flush("cord-pool-1", 0.02);
        let mut reg = MetricsRegistry::new();
        p.record_into(&mut reg);
        assert_eq!(reg.counter("sweep.checkpoint_flushes"), 3);
        assert_eq!(reg.gauge_value("sweep.job_run_max_s"), Some(1.5));
    }

    #[test]
    fn supervision_profile_records_shard_metrics() {
        let mut p = SupervisionProfile {
            retries: 3,
            heartbeat_misses: 1,
            abandoned: 1,
            chaos_kills: 2,
            backoff_ms: 750,
            ..SupervisionProfile::default()
        };
        p.record_shard_wall("shard-0", 1.0);
        p.record_shard_wall("shard-0", 2.0);
        p.record_shard_wall("shard-1", 0.5);
        let mut reg = MetricsRegistry::new();
        p.record_into(&mut reg);
        assert_eq!(reg.counter("shard.retries"), 3);
        assert_eq!(reg.counter("shard.heartbeat_misses"), 1);
        assert_eq!(reg.counter("shard.abandoned"), 1);
        assert_eq!(reg.counter("shard.chaos_kills"), 2);
        assert_eq!(reg.counter("shard.backoff_ms"), 750);
        assert_eq!(reg.counter("shard.worker_attempts"), 3);
        assert_eq!(reg.gauge_value("shard.worker_wall_max_s"), Some(2.0));
        assert_eq!(reg.gauge_value("shard.worker_wall_s.shard-0"), Some(3.0));
        // JSON render keeps per-shard breakdown.
        let j = p.to_json().to_string_compact();
        assert!(j.contains("\"shard-1\""), "{j}");
    }
}
