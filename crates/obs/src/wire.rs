//! The versioned wire format for detector event streams.
//!
//! Streaming detection splits *producing* events (the simulator, or any
//! future instrumented runtime) from *checking* them (a
//! `DetectorSink`). This module defines what travels between the two:
//!
//! * [`StreamHeader`] — stream metadata plus the [`StreamGeometry`]
//!   (thread/core counts and the address-space layout) that lets a
//!   consumer resolve dense line/word indices without ever seeing a
//!   `Machine`.
//! * [`StreamEvent`] — the six detector-input events (the five
//!   [`MemoryObserver`](crate::events::MemoryObserver) callbacks plus a
//!   passthrough for [`TraceEvent`] observability records).
//! * A **compact binary codec** (tag byte + LEB128 varints) and a
//!   **JSON codec** for every event, plus length-prefixed frame
//!   helpers — the unit a socket or capture file is made of.
//!
//! The binary encoding is pinned by a golden fixture
//! (`tests/wire_golden.rs`); bump [`WIRE_VERSION`] when it changes.

use crate::events::{
    AccessEvent, AccessKind, AccessPath, CoreId, Level, LineRemoval, RemovalCause,
};
use crate::TraceEvent;
use cord_json::{obj, FromJson, Json, JsonError, ToJson};
use cord_trace::layout::{AddressLayout, DenseLineMap};
use cord_trace::types::{Addr, LineAddr, ThreadId, WORD_BYTES};
use std::fmt;
use std::io::{self, Read, Write};

/// Version of the binary event encoding and frame layout.
pub const WIRE_VERSION: u32 = 1;

/// Frame payload tag: stream header (payload is compact header JSON).
pub const FRAME_HEADER: u8 = b'H';
/// Frame payload tag: a batch of binary-encoded events.
pub const FRAME_EVENTS: u8 = b'E';

/// Events per [`FRAME_EVENTS`] frame in capture files — a fixed batch
/// size keeps capture bytes deterministic for a given event sequence.
pub const CAPTURE_BATCH: usize = 256;

/// Largest frame payload a reader will accept (defends a daemon against
/// a garbage length prefix).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Decoding failure: the stream is truncated, garbled, or from a
/// different wire version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended inside a value.
    Truncated,
    /// An unknown tag byte.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A decoded value violates an invariant (e.g. misaligned address).
    BadValue(String),
    /// The header JSON failed to parse or convert.
    Json(JsonError),
    /// The stream's version is not [`WIRE_VERSION`].
    Version {
        /// Version found in the header.
        found: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire data truncated"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::BadValue(msg) => write!(f, "bad wire value: {msg}"),
            WireError::Json(e) => write!(f, "wire header: {e}"),
            WireError::Version { found } => {
                write!(f, "wire version {found} (expected {WIRE_VERSION})")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Json(e)
    }
}

/// The machine and address-space geometry a stream was produced under —
/// everything a consumer needs to size shadow state and resolve
/// [`dense_line_index`](cord_trace::layout::dense_line_index) bounds
/// without a `Machine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamGeometry {
    /// Number of workload threads.
    pub threads: u32,
    /// Number of cores on the producing machine.
    pub cores: u32,
    /// User-allocated locks in the address layout.
    pub user_locks: u32,
    /// User-allocated flags in the address layout.
    pub user_flags: u32,
    /// Barriers in the address layout.
    pub barriers: u32,
    /// Data-heap size in words.
    pub data_words: u64,
    /// User-allocated atomic RMW words in the address layout. Zero for
    /// every stream produced before the atomic vocabulary existed; the
    /// field is omitted from the wire encoding when zero, so such
    /// streams (and their byte-pinned fixtures) are unchanged.
    pub user_atomics: u32,
}

impl StreamGeometry {
    /// Captures the geometry of a run: thread/core counts plus the
    /// workload's address layout.
    pub fn new(threads: usize, cores: usize, layout: &AddressLayout) -> Self {
        StreamGeometry {
            threads: threads as u32,
            cores: cores as u32,
            user_locks: layout.user_locks(),
            user_flags: layout.user_flags(),
            barriers: layout.barriers(),
            data_words: layout.data_words(),
            user_atomics: layout.user_atomics(),
        }
    }

    /// Reconstructs the address layout the stream was produced under.
    pub fn layout(&self) -> AddressLayout {
        AddressLayout::new(
            self.user_locks,
            self.user_flags,
            self.barriers,
            self.data_words,
        )
        .with_atomics(self.user_atomics)
    }

    /// Dense-index capacity bounds for shadow state (see
    /// [`DenseLineMap`]).
    pub fn dense_map(&self) -> DenseLineMap {
        DenseLineMap::new(&self.layout())
    }
}

impl ToJson for StreamGeometry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("threads", self.threads.to_json()),
            ("cores", self.cores.to_json()),
            ("user_locks", self.user_locks.to_json()),
            ("user_flags", self.user_flags.to_json()),
            ("barriers", self.barriers.to_json()),
            ("data_words", self.data_words.to_json()),
        ];
        if self.user_atomics != 0 {
            fields.push(("user_atomics", self.user_atomics.to_json()));
        }
        obj(fields)
    }
}

impl FromJson for StreamGeometry {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(StreamGeometry {
            threads: FromJson::from_json(v.field("threads")?)?,
            cores: FromJson::from_json(v.field("cores")?)?,
            user_locks: FromJson::from_json(v.field("user_locks")?)?,
            user_flags: FromJson::from_json(v.field("user_flags")?)?,
            barriers: FromJson::from_json(v.field("barriers")?)?,
            data_words: FromJson::from_json(v.field("data_words")?)?,
            user_atomics: match v.get("user_atomics") {
                Some(j) => FromJson::from_json(j)?,
                None => 0,
            },
        })
    }
}

/// The first frame of every stream: version, provenance, geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// Wire version ([`WIRE_VERSION`] when produced by this build).
    pub version: u32,
    /// Workload name (provenance only).
    pub workload: String,
    /// Detector configuration label the stream should be checked under
    /// (e.g. `"CORD-D16"`); daemons use it to build the sink.
    pub detector: String,
    /// Simulation seed (provenance only).
    pub seed: u64,
    /// Machine/address-space geometry.
    pub geometry: StreamGeometry,
}

impl StreamHeader {
    /// A header for a run at the current wire version.
    pub fn new(workload: &str, detector: &str, seed: u64, geometry: StreamGeometry) -> Self {
        StreamHeader {
            version: WIRE_VERSION,
            workload: workload.to_owned(),
            detector: detector.to_owned(),
            seed,
            geometry,
        }
    }

    /// Serializes the header as a [`FRAME_HEADER`] frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![FRAME_HEADER];
        out.extend_from_slice(self.to_json().to_string_compact().as_bytes());
        out
    }

    /// Decodes a [`FRAME_HEADER`] frame payload, checking the version.
    pub fn decode(payload: &[u8]) -> Result<StreamHeader, WireError> {
        match payload.split_first() {
            Some((&FRAME_HEADER, body)) => {
                let text = std::str::from_utf8(body)
                    .map_err(|_| WireError::BadValue("header is not UTF-8".into()))?;
                let header = StreamHeader::from_json(&Json::parse(text)?)?;
                if header.version != WIRE_VERSION {
                    return Err(WireError::Version {
                        found: header.version,
                    });
                }
                Ok(header)
            }
            Some((&tag, _)) => Err(WireError::BadTag { what: "frame", tag }),
            None => Err(WireError::Truncated),
        }
    }
}

impl ToJson for StreamHeader {
    fn to_json(&self) -> Json {
        obj(vec![
            ("version", self.version.to_json()),
            ("workload", self.workload.to_json()),
            ("detector", self.detector.to_json()),
            ("seed", self.seed.to_json()),
            ("geometry", self.geometry.to_json()),
        ])
    }
}

impl FromJson for StreamHeader {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(StreamHeader {
            version: FromJson::from_json(v.field("version")?)?,
            workload: FromJson::from_json(v.field("workload")?)?,
            detector: FromJson::from_json(v.field("detector")?)?,
            seed: FromJson::from_json(v.field("seed")?)?,
            geometry: FromJson::from_json(v.field("geometry")?)?,
        })
    }
}

/// One detector-input event: the `MemoryObserver` callback vocabulary,
/// reified so it can travel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A memory access retired (`on_access`).
    Access(AccessEvent),
    /// A line was filled into a cache level (`on_line_filled`).
    LineFilled {
        /// Destination core.
        core: CoreId,
        /// Cache level.
        level: Level,
        /// The line filled.
        line: LineAddr,
    },
    /// A line left a cache level (`on_line_removed`).
    LineRemoved(LineRemoval),
    /// A thread moved between cores (`on_thread_migrated`).
    ThreadMigrated {
        /// The migrating thread.
        thread: ThreadId,
        /// Source core.
        from: CoreId,
        /// Destination core.
        to: CoreId,
    },
    /// The run finished (`on_run_end`).
    RunEnd {
        /// Final retired instruction count per thread.
        instr_counts: Vec<u64>,
    },
    /// A passthrough observability record (not a detector input; lets a
    /// stream interleave trace events with the callback stream).
    Trace(TraceEvent),
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

const TAG_ACCESS: u8 = 1;
const TAG_FILL: u8 = 2;
const TAG_REMOVE: u8 = 3;
const TAG_MIGRATE: u8 = 4;
const TAG_RUN_END: u8 = 5;
const TAG_TRACE: u8 = 6;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(WireError::BadValue("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    let &b = buf.get(*pos).ok_or(WireError::Truncated)?;
    *pos += 1;
    Ok(b)
}

fn kind_code(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::DataRead => 0,
        AccessKind::DataWrite => 1,
        AccessKind::SyncRead => 2,
        AccessKind::SyncWrite => 3,
    }
}

fn kind_from_code(code: u8) -> Result<AccessKind, WireError> {
    Ok(match code {
        0 => AccessKind::DataRead,
        1 => AccessKind::DataWrite,
        2 => AccessKind::SyncRead,
        3 => AccessKind::SyncWrite,
        tag => {
            return Err(WireError::BadTag {
                what: "access kind",
                tag,
            })
        }
    })
}

fn level_code(level: Level) -> u8 {
    match level {
        Level::L1 => 1,
        Level::L2 => 2,
    }
}

fn level_from_code(code: u8) -> Result<Level, WireError> {
    Ok(match code {
        1 => Level::L1,
        2 => Level::L2,
        tag => {
            return Err(WireError::BadTag {
                what: "cache level",
                tag,
            })
        }
    })
}

fn decode_addr(raw: u64) -> Result<Addr, WireError> {
    if !raw.is_multiple_of(WORD_BYTES) {
        return Err(WireError::BadValue(format!(
            "address {raw:#x} is not word-aligned"
        )));
    }
    Ok(Addr::new(raw))
}

/// Appends the binary encoding of `ev` to `out`.
pub fn encode_event(ev: &StreamEvent, out: &mut Vec<u8>) {
    match ev {
        StreamEvent::Access(a) => {
            out.push(TAG_ACCESS);
            out.push(a.core.0);
            put_varint(out, u64::from(a.thread.0));
            put_varint(out, a.addr.byte());
            out.push(kind_code(a.kind));
            match a.path {
                AccessPath::L1Hit => out.push(0),
                AccessPath::L2Hit => out.push(1),
                AccessPath::UpgradeHit => out.push(2),
                AccessPath::FillFromSibling(sib) => {
                    out.push(3);
                    out.push(sib.0);
                }
                AccessPath::FillFromMemory => out.push(4),
            }
            put_varint(out, a.instr_index);
            put_varint(out, a.cycle);
        }
        StreamEvent::LineFilled { core, level, line } => {
            out.push(TAG_FILL);
            out.push(core.0);
            out.push(level_code(*level));
            put_varint(out, line.0);
        }
        StreamEvent::LineRemoved(r) => {
            out.push(TAG_REMOVE);
            out.push(r.core.0);
            out.push(level_code(r.level));
            put_varint(out, r.line.0);
            let mut flags = 0u8;
            if r.dirty {
                flags |= 1;
            }
            if r.cause == RemovalCause::Invalidation {
                flags |= 2;
            }
            out.push(flags);
        }
        StreamEvent::ThreadMigrated { thread, from, to } => {
            out.push(TAG_MIGRATE);
            put_varint(out, u64::from(thread.0));
            out.push(from.0);
            out.push(to.0);
        }
        StreamEvent::RunEnd { instr_counts } => {
            out.push(TAG_RUN_END);
            put_varint(out, instr_counts.len() as u64);
            for &c in instr_counts {
                put_varint(out, c);
            }
        }
        StreamEvent::Trace(t) => {
            out.push(TAG_TRACE);
            encode_trace_event(t, out);
        }
    }
}

fn encode_trace_event(t: &TraceEvent, out: &mut Vec<u8>) {
    use crate::{BusKind, EventKind};
    put_varint(out, t.cycle);
    put_varint(out, u64::from(t.thread));
    match &t.kind {
        EventKind::Bus { bus, line } => {
            out.push(0);
            out.push(match bus {
                BusKind::Data => 0,
                BusKind::Addr => 1,
                BusKind::Ts => 2,
                BusKind::Mem => 3,
            });
            put_varint(out, *line);
        }
        EventKind::Fill { core, level, line } => {
            out.push(1);
            out.push(*core);
            out.push(*level);
            put_varint(out, *line);
        }
        EventKind::Remove {
            core,
            level,
            line,
            dirty,
            invalidation,
        } => {
            out.push(2);
            out.push(*core);
            out.push(*level);
            put_varint(out, *line);
            let mut flags = 0u8;
            if *dirty {
                flags |= 1;
            }
            if *invalidation {
                flags |= 2;
            }
            out.push(flags);
        }
        EventKind::RaceCheck { line, requests } => {
            out.push(3);
            put_varint(out, *line);
            put_varint(out, u64::from(*requests));
        }
        EventKind::MemtsBroadcast { count } => {
            out.push(4);
            put_varint(out, u64::from(*count));
        }
        EventKind::WalkerPass { evicted, bound } => {
            out.push(5);
            put_varint(out, *evicted);
            put_varint(out, *bound);
        }
        EventKind::Injection { instance, release } => {
            out.push(6);
            put_varint(out, *instance);
            out.push(u8::from(*release));
        }
        EventKind::Migration { from, to } => {
            out.push(7);
            out.push(*from);
            out.push(*to);
        }
        EventKind::Race { addr, other_core } => {
            out.push(8);
            put_varint(out, *addr);
            out.push(*other_core);
        }
    }
}

fn decode_trace_event(buf: &[u8], pos: &mut usize) -> Result<TraceEvent, WireError> {
    use crate::{BusKind, EventKind};
    let cycle = get_varint(buf, pos)?;
    let thread = u16::try_from(get_varint(buf, pos)?)
        .map_err(|_| WireError::BadValue("trace thread exceeds u16".into()))?;
    let kind = match get_u8(buf, pos)? {
        0 => EventKind::Bus {
            bus: match get_u8(buf, pos)? {
                0 => BusKind::Data,
                1 => BusKind::Addr,
                2 => BusKind::Ts,
                3 => BusKind::Mem,
                tag => return Err(WireError::BadTag { what: "bus", tag }),
            },
            line: get_varint(buf, pos)?,
        },
        1 => EventKind::Fill {
            core: get_u8(buf, pos)?,
            level: get_u8(buf, pos)?,
            line: get_varint(buf, pos)?,
        },
        2 => {
            let core = get_u8(buf, pos)?;
            let level = get_u8(buf, pos)?;
            let line = get_varint(buf, pos)?;
            let flags = get_u8(buf, pos)?;
            EventKind::Remove {
                core,
                level,
                line,
                dirty: flags & 1 != 0,
                invalidation: flags & 2 != 0,
            }
        }
        3 => EventKind::RaceCheck {
            line: get_varint(buf, pos)?,
            requests: u32::try_from(get_varint(buf, pos)?)
                .map_err(|_| WireError::BadValue("race-check requests exceed u32".into()))?,
        },
        4 => EventKind::MemtsBroadcast {
            count: u32::try_from(get_varint(buf, pos)?)
                .map_err(|_| WireError::BadValue("memts count exceeds u32".into()))?,
        },
        5 => EventKind::WalkerPass {
            evicted: get_varint(buf, pos)?,
            bound: get_varint(buf, pos)?,
        },
        6 => EventKind::Injection {
            instance: get_varint(buf, pos)?,
            release: get_u8(buf, pos)? != 0,
        },
        7 => EventKind::Migration {
            from: get_u8(buf, pos)?,
            to: get_u8(buf, pos)?,
        },
        8 => EventKind::Race {
            addr: get_varint(buf, pos)?,
            other_core: get_u8(buf, pos)?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "trace event",
                tag,
            })
        }
    };
    Ok(TraceEvent {
        cycle,
        thread,
        kind,
    })
}

/// Decodes one event from `buf` at `*pos`, advancing the position.
pub fn decode_event(buf: &[u8], pos: &mut usize) -> Result<StreamEvent, WireError> {
    Ok(match get_u8(buf, pos)? {
        TAG_ACCESS => {
            let core = CoreId(get_u8(buf, pos)?);
            let thread = ThreadId(
                u16::try_from(get_varint(buf, pos)?)
                    .map_err(|_| WireError::BadValue("thread id exceeds u16".into()))?,
            );
            let addr = decode_addr(get_varint(buf, pos)?)?;
            let kind = kind_from_code(get_u8(buf, pos)?)?;
            let path = match get_u8(buf, pos)? {
                0 => AccessPath::L1Hit,
                1 => AccessPath::L2Hit,
                2 => AccessPath::UpgradeHit,
                3 => AccessPath::FillFromSibling(CoreId(get_u8(buf, pos)?)),
                4 => AccessPath::FillFromMemory,
                tag => {
                    return Err(WireError::BadTag {
                        what: "access path",
                        tag,
                    })
                }
            };
            StreamEvent::Access(AccessEvent {
                core,
                thread,
                addr,
                kind,
                path,
                instr_index: get_varint(buf, pos)?,
                cycle: get_varint(buf, pos)?,
            })
        }
        TAG_FILL => StreamEvent::LineFilled {
            core: CoreId(get_u8(buf, pos)?),
            level: level_from_code(get_u8(buf, pos)?)?,
            line: LineAddr(get_varint(buf, pos)?),
        },
        TAG_REMOVE => {
            let core = CoreId(get_u8(buf, pos)?);
            let level = level_from_code(get_u8(buf, pos)?)?;
            let line = LineAddr(get_varint(buf, pos)?);
            let flags = get_u8(buf, pos)?;
            StreamEvent::LineRemoved(LineRemoval {
                core,
                level,
                line,
                cause: if flags & 2 != 0 {
                    RemovalCause::Invalidation
                } else {
                    RemovalCause::Capacity
                },
                dirty: flags & 1 != 0,
            })
        }
        TAG_MIGRATE => StreamEvent::ThreadMigrated {
            thread: ThreadId(
                u16::try_from(get_varint(buf, pos)?)
                    .map_err(|_| WireError::BadValue("thread id exceeds u16".into()))?,
            ),
            from: CoreId(get_u8(buf, pos)?),
            to: CoreId(get_u8(buf, pos)?),
        },
        TAG_RUN_END => {
            let n = get_varint(buf, pos)?;
            if n > (1 << 20) {
                return Err(WireError::BadValue(format!("run-end claims {n} threads")));
            }
            let mut instr_counts = Vec::with_capacity(n as usize);
            for _ in 0..n {
                instr_counts.push(get_varint(buf, pos)?);
            }
            StreamEvent::RunEnd { instr_counts }
        }
        TAG_TRACE => StreamEvent::Trace(decode_trace_event(buf, pos)?),
        tag => {
            return Err(WireError::BadTag {
                what: "stream event",
                tag,
            })
        }
    })
}

/// Encodes a batch of events as one contiguous byte string.
pub fn encode_events(events: &[StreamEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 12);
    for ev in events {
        encode_event(ev, &mut out);
    }
    out
}

/// Decodes a contiguous byte string of events (a [`FRAME_EVENTS`]
/// payload without its leading tag).
pub fn decode_events(buf: &[u8]) -> Result<Vec<StreamEvent>, WireError> {
    let mut pos = 0;
    let mut events = Vec::new();
    while pos < buf.len() {
        events.push(decode_event(buf, &mut pos)?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

/// The canonical wire name of an access kind (`data-read`,
/// `data-write`, `sync-read`, `sync-write`), shared by every JSON
/// surface that serializes accesses or races.
pub fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::DataRead => "data-read",
        AccessKind::DataWrite => "data-write",
        AccessKind::SyncRead => "sync-read",
        AccessKind::SyncWrite => "sync-write",
    }
}

/// Inverse of [`kind_name`].
pub fn kind_from_name(name: &str) -> Option<AccessKind> {
    Some(match name {
        "data-read" => AccessKind::DataRead,
        "data-write" => AccessKind::DataWrite,
        "sync-read" => AccessKind::SyncRead,
        "sync-write" => AccessKind::SyncWrite,
        _ => return None,
    })
}

impl ToJson for StreamEvent {
    fn to_json(&self) -> Json {
        match self {
            StreamEvent::Access(a) => {
                let mut fields = vec![
                    ("ev", "access".to_json()),
                    ("core", a.core.0.to_json()),
                    ("thread", a.thread.0.to_json()),
                    ("addr", a.addr.byte().to_json()),
                    ("kind", kind_name(a.kind).to_json()),
                ];
                let path = match a.path {
                    AccessPath::L1Hit => "l1-hit",
                    AccessPath::L2Hit => "l2-hit",
                    AccessPath::UpgradeHit => "upgrade-hit",
                    AccessPath::FillFromSibling(_) => "fill-sibling",
                    AccessPath::FillFromMemory => "fill-memory",
                };
                fields.push(("path", path.to_json()));
                if let AccessPath::FillFromSibling(sib) = a.path {
                    fields.push(("sibling", sib.0.to_json()));
                }
                fields.push(("instr", a.instr_index.to_json()));
                fields.push(("cycle", a.cycle.to_json()));
                obj(fields)
            }
            StreamEvent::LineFilled { core, level, line } => obj(vec![
                ("ev", "fill".to_json()),
                ("core", core.0.to_json()),
                ("level", level_code(*level).to_json()),
                ("line", line.0.to_json()),
            ]),
            StreamEvent::LineRemoved(r) => obj(vec![
                ("ev", "remove".to_json()),
                ("core", r.core.0.to_json()),
                ("level", level_code(r.level).to_json()),
                ("line", r.line.0.to_json()),
                (
                    "cause",
                    match r.cause {
                        RemovalCause::Capacity => "capacity",
                        RemovalCause::Invalidation => "invalidation",
                    }
                    .to_json(),
                ),
                ("dirty", r.dirty.to_json()),
            ]),
            StreamEvent::ThreadMigrated { thread, from, to } => obj(vec![
                ("ev", "migrate".to_json()),
                ("thread", thread.0.to_json()),
                ("from", from.0.to_json()),
                ("to", to.0.to_json()),
            ]),
            StreamEvent::RunEnd { instr_counts } => obj(vec![
                ("ev", "run-end".to_json()),
                ("instr_counts", instr_counts.to_json()),
            ]),
            StreamEvent::Trace(t) => obj(vec![("ev", "trace".to_json()), ("event", t.to_json())]),
        }
    }
}

impl FromJson for StreamEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let ev = v.field("ev")?.as_str()?;
        Ok(match ev {
            "access" => {
                let kind_text = v.field("kind")?.as_str()?;
                let kind = kind_from_name(kind_text)
                    .ok_or_else(|| JsonError::new(format!("unknown access kind `{kind_text}`")))?;
                let path_text = v.field("path")?.as_str()?;
                let path = match path_text {
                    "l1-hit" => AccessPath::L1Hit,
                    "l2-hit" => AccessPath::L2Hit,
                    "upgrade-hit" => AccessPath::UpgradeHit,
                    "fill-sibling" => AccessPath::FillFromSibling(CoreId(FromJson::from_json(
                        v.field("sibling")?,
                    )?)),
                    "fill-memory" => AccessPath::FillFromMemory,
                    other => return Err(JsonError::new(format!("unknown access path `{other}`"))),
                };
                let raw: u64 = FromJson::from_json(v.field("addr")?)?;
                if !raw.is_multiple_of(WORD_BYTES) {
                    return Err(JsonError::new(format!(
                        "address {raw:#x} is not word-aligned"
                    )));
                }
                StreamEvent::Access(AccessEvent {
                    core: CoreId(FromJson::from_json(v.field("core")?)?),
                    thread: ThreadId(FromJson::from_json(v.field("thread")?)?),
                    addr: Addr::new(raw),
                    kind,
                    path,
                    instr_index: FromJson::from_json(v.field("instr")?)?,
                    cycle: FromJson::from_json(v.field("cycle")?)?,
                })
            }
            "fill" => StreamEvent::LineFilled {
                core: CoreId(FromJson::from_json(v.field("core")?)?),
                level: level_from_code(FromJson::from_json(v.field("level")?)?)
                    .map_err(|e| JsonError::new(e.to_string()))?,
                line: LineAddr(FromJson::from_json(v.field("line")?)?),
            },
            "remove" => {
                let cause_text = v.field("cause")?.as_str()?;
                StreamEvent::LineRemoved(LineRemoval {
                    core: CoreId(FromJson::from_json(v.field("core")?)?),
                    level: level_from_code(FromJson::from_json(v.field("level")?)?)
                        .map_err(|e| JsonError::new(e.to_string()))?,
                    line: LineAddr(FromJson::from_json(v.field("line")?)?),
                    cause: match cause_text {
                        "capacity" => RemovalCause::Capacity,
                        "invalidation" => RemovalCause::Invalidation,
                        other => {
                            return Err(JsonError::new(format!("unknown removal cause `{other}`")))
                        }
                    },
                    dirty: FromJson::from_json(v.field("dirty")?)?,
                })
            }
            "migrate" => StreamEvent::ThreadMigrated {
                thread: ThreadId(FromJson::from_json(v.field("thread")?)?),
                from: CoreId(FromJson::from_json(v.field("from")?)?),
                to: CoreId(FromJson::from_json(v.field("to")?)?),
            },
            "run-end" => StreamEvent::RunEnd {
                instr_counts: FromJson::from_json(v.field("instr_counts")?)?,
            },
            "trace" => StreamEvent::Trace(FromJson::from_json(v.field("event")?)?),
            other => return Err(JsonError::new(format!("unknown stream event `{other}`"))),
        })
    }
}

// ---------------------------------------------------------------------
// Frames and capture containers
// ---------------------------------------------------------------------

/// Wraps a payload in its length prefix (u32 little-endian).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF (no bytes
/// of the next frame read), an error on mid-frame EOF or an oversize
/// length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes a whole captured stream: a header frame followed by
/// [`CAPTURE_BATCH`]-sized event frames.
pub fn encode_capture(header: &StreamHeader, events: &[StreamEvent]) -> Vec<u8> {
    let mut out = encode_frame(&header.encode());
    for batch in events.chunks(CAPTURE_BATCH.max(1)) {
        let mut payload = vec![FRAME_EVENTS];
        for ev in batch {
            encode_event(ev, &mut payload);
        }
        out.extend_from_slice(&encode_frame(&payload));
    }
    out
}

/// Parses a capture produced by [`encode_capture`].
pub fn decode_capture(bytes: &[u8]) -> Result<(StreamHeader, Vec<StreamEvent>), WireError> {
    let mut cursor = io::Cursor::new(bytes);
    let first = read_frame(&mut cursor)
        .map_err(|e| WireError::BadValue(e.to_string()))?
        .ok_or(WireError::Truncated)?;
    let header = StreamHeader::decode(&first)?;
    let mut events = Vec::new();
    while let Some(payload) =
        read_frame(&mut cursor).map_err(|e| WireError::BadValue(e.to_string()))?
    {
        match payload.split_first() {
            Some((&FRAME_EVENTS, body)) => events.extend(decode_events(body)?),
            Some((&tag, _)) => return Err(WireError::BadTag { what: "frame", tag }),
            None => return Err(WireError::Truncated),
        }
    }
    Ok((header, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusKind, EventKind};

    fn sample_events() -> Vec<StreamEvent> {
        vec![
            StreamEvent::Access(AccessEvent {
                core: CoreId(1),
                thread: ThreadId(2),
                addr: Addr::new(0x1040),
                kind: AccessKind::DataWrite,
                path: AccessPath::FillFromSibling(CoreId(3)),
                instr_index: 1234,
                cycle: 567_890,
            }),
            StreamEvent::LineFilled {
                core: CoreId(0),
                level: Level::L2,
                line: LineAddr(0x41),
            },
            StreamEvent::LineRemoved(LineRemoval {
                core: CoreId(2),
                level: Level::L1,
                line: LineAddr(7),
                cause: RemovalCause::Invalidation,
                dirty: true,
            }),
            StreamEvent::ThreadMigrated {
                thread: ThreadId(3),
                from: CoreId(1),
                to: CoreId(0),
            },
            StreamEvent::Trace(TraceEvent {
                cycle: 99,
                thread: 1,
                kind: EventKind::Bus {
                    bus: BusKind::Ts,
                    line: 42,
                },
            }),
            StreamEvent::RunEnd {
                instr_counts: vec![10, 20, 30, 40],
            },
        ]
    }

    fn sample_header() -> StreamHeader {
        StreamHeader::new(
            "fft-tiny",
            "CORD-D16",
            42,
            StreamGeometry {
                threads: 4,
                cores: 4,
                user_locks: 2,
                user_flags: 1,
                barriers: 1,
                data_words: 4096,
                user_atomics: 0,
            },
        )
    }

    #[test]
    fn binary_roundtrip() {
        let events = sample_events();
        let bytes = encode_events(&events);
        assert_eq!(decode_events(&bytes).expect("decodes"), events);
    }

    #[test]
    fn json_roundtrip() {
        for ev in sample_events() {
            let back = StreamEvent::from_json(&ev.to_json()).expect("parses");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn header_roundtrip_and_version_check() {
        let h = sample_header();
        assert_eq!(StreamHeader::decode(&h.encode()).expect("decodes"), h);
        let mut stale = h.clone();
        stale.version = 999;
        match StreamHeader::decode(&stale.encode()) {
            Err(WireError::Version { found: 999 }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn geometry_reconstructs_layout() {
        let h = sample_header();
        let layout = h.geometry.layout();
        assert_eq!(layout.user_locks(), 2);
        assert_eq!(layout.data_words(), 4096);
        assert!(h.geometry.dense_map().line_capacity() > 0);
    }

    #[test]
    fn capture_roundtrip_across_batches() {
        let mut events = Vec::new();
        for i in 0..(CAPTURE_BATCH as u64 * 2 + 7) {
            events.push(StreamEvent::LineFilled {
                core: CoreId((i % 4) as u8),
                level: Level::L2,
                line: LineAddr(i),
            });
        }
        let header = sample_header();
        let bytes = encode_capture(&header, &events);
        let (h, back) = decode_capture(&bytes).expect("decodes");
        assert_eq!(h, header);
        assert_eq!(back, events);
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let bytes = encode_events(&sample_events());
        assert!(decode_events(&bytes[..bytes.len() - 1]).is_err());
        assert!(matches!(
            decode_events(&[0xff]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write");
        let mut cur = io::Cursor::new(&buf);
        assert_eq!(
            read_frame(&mut cur).expect("frame"),
            Some(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut cur).expect("frame"), Some(Vec::new()));
        assert_eq!(read_frame(&mut cur).expect("eof"), None);
    }

    #[test]
    fn misaligned_address_rejected() {
        // Hand-build an Access event with a misaligned address.
        let mut bytes = Vec::new();
        bytes.push(TAG_ACCESS);
        bytes.push(0); // core
        put_varint(&mut bytes, 0); // thread
        put_varint(&mut bytes, 0x1001); // misaligned address
        bytes.push(0); // kind
        bytes.push(0); // path
        put_varint(&mut bytes, 0);
        put_varint(&mut bytes, 0);
        assert!(matches!(decode_events(&bytes), Err(WireError::BadValue(_))));
    }
}
