//! Wire-format drift guards.
//!
//! Two layers of protection for the versioned stream format:
//!
//! * **Round-trip properties** — randomized `StreamEvent`s (including
//!   `Trace` passthroughs over all nine `EventKind`s) must survive
//!   binary encode→decode and JSON `to_json`→`from_json` unchanged,
//!   and the two codecs must agree with each other.
//! * **A pinned golden stream** — the exact bytes `encode_capture`
//!   produces for a fixed synthetic session are committed at
//!   `tests/fixtures/golden.stream`. Any change to the frame layout,
//!   tags, varint packing, or header JSON shows up as a byte diff.
//!
//! To regenerate the fixture after an *intentional* format change
//! (which must also bump `WIRE_VERSION`):
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test -p cord-obs --test wire_roundtrip
//! ```

use cord_obs::wire::{
    decode_capture, decode_events, encode_capture, encode_events, StreamGeometry,
};
use cord_obs::{
    AccessEvent, AccessKind, AccessPath, BusKind, CoreId, EventKind, Level, LineRemoval,
    RemovalCause, StreamEvent, StreamHeader, TraceEvent, NO_THREAD,
};
use cord_trace::types::{Addr, LineAddr, ThreadId, WORD_BYTES};
use proptest::prelude::*;
use std::path::PathBuf;

fn arb_core() -> impl Strategy<Value = CoreId> {
    (0u8..16).prop_map(CoreId)
}

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![Just(Level::L1), Just(Level::L2)]
}

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::DataRead),
        Just(AccessKind::DataWrite),
        Just(AccessKind::SyncRead),
        Just(AccessKind::SyncWrite),
    ]
}

fn arb_path() -> impl Strategy<Value = AccessPath> {
    prop_oneof![
        Just(AccessPath::L1Hit),
        Just(AccessPath::L2Hit),
        Just(AccessPath::UpgradeHit),
        (0u8..16).prop_map(|c| AccessPath::FillFromSibling(CoreId(c))),
        Just(AccessPath::FillFromMemory),
    ]
}

fn arb_addr() -> impl Strategy<Value = Addr> {
    // Word-aligned byte addresses (the codec stores word indices).
    (0u64..1 << 40).prop_map(|w| Addr::new(w * WORD_BYTES))
}

fn arb_line() -> impl Strategy<Value = LineAddr> {
    (0u64..1 << 40).prop_map(LineAddr)
}

/// Every one of the nine `EventKind` payloads a trace entry can carry.
fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        (
            prop_oneof![
                Just(BusKind::Data),
                Just(BusKind::Addr),
                Just(BusKind::Ts),
                Just(BusKind::Mem),
            ],
            any::<u64>()
        )
            .prop_map(|(bus, line)| EventKind::Bus { bus, line }),
        (0u8..16, 1u8..3, any::<u64>()).prop_map(|(core, level, line)| EventKind::Fill {
            core,
            level,
            line
        }),
        (0u8..16, 1u8..3, any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(core, level, line, dirty, invalidation)| EventKind::Remove {
                core,
                level,
                line,
                dirty,
                invalidation,
            }
        ),
        (any::<u64>(), any::<u32>())
            .prop_map(|(line, requests)| EventKind::RaceCheck { line, requests }),
        any::<u32>().prop_map(|count| EventKind::MemtsBroadcast { count }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(evicted, bound)| EventKind::WalkerPass { evicted, bound }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(instance, release)| EventKind::Injection { instance, release }),
        (0u8..16, 0u8..16).prop_map(|(from, to)| EventKind::Migration { from, to }),
        (any::<u64>(), 0u8..16).prop_map(|(addr, other_core)| EventKind::Race { addr, other_core }),
    ]
}

fn arb_trace_event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u64>(),
        prop_oneof![(0u16..64).boxed(), Just(NO_THREAD).boxed()],
        arb_event_kind(),
    )
        .prop_map(|(cycle, thread, kind)| TraceEvent {
            cycle,
            thread,
            kind,
        })
}

fn arb_stream_event() -> impl Strategy<Value = StreamEvent> {
    prop_oneof![
        (
            arb_core(),
            (0u16..64).prop_map(ThreadId),
            arb_addr(),
            arb_kind(),
            arb_path(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(core, thread, addr, kind, path, instr_index, cycle)| {
                StreamEvent::Access(AccessEvent {
                    core,
                    thread,
                    addr,
                    kind,
                    path,
                    instr_index,
                    cycle,
                })
            }),
        (arb_core(), arb_level(), arb_line())
            .prop_map(|(core, level, line)| StreamEvent::LineFilled { core, level, line }),
        (
            arb_core(),
            arb_level(),
            arb_line(),
            prop_oneof![
                Just(RemovalCause::Capacity),
                Just(RemovalCause::Invalidation)
            ],
            any::<bool>(),
        )
            .prop_map(|(core, level, line, cause, dirty)| {
                StreamEvent::LineRemoved(LineRemoval {
                    core,
                    level,
                    line,
                    cause,
                    dirty,
                })
            }),
        ((0u16..64).prop_map(ThreadId), arb_core(), arb_core())
            .prop_map(|(thread, from, to)| StreamEvent::ThreadMigrated { thread, from, to }),
        proptest::collection::vec(any::<u64>(), 0..8)
            .prop_map(|instr_counts| StreamEvent::RunEnd { instr_counts }),
        arb_trace_event().prop_map(StreamEvent::Trace),
    ]
}

proptest! {
    #[test]
    fn binary_codec_roundtrips(events in proptest::collection::vec(arb_stream_event(), 0..64)) {
        let bytes = encode_events(&events);
        let back = decode_events(&bytes).expect("well-formed encoding decodes");
        prop_assert_eq!(back, events);
    }

    #[test]
    fn json_codec_roundtrips(ev in arb_stream_event()) {
        use cord_json::{FromJson, ToJson};
        let back = StreamEvent::from_json(&ev.to_json()).expect("own JSON parses");
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn codecs_agree_through_each_other(ev in arb_stream_event()) {
        use cord_json::{FromJson, ToJson};
        // struct → binary → struct → JSON → struct: any asymmetry
        // between the two codecs surfaces as a mismatch here.
        let via_binary = decode_events(&encode_events(std::slice::from_ref(&ev)))
            .expect("decodes")
            .remove(0);
        let via_json = StreamEvent::from_json(&via_binary.to_json()).expect("parses");
        prop_assert_eq!(via_json, ev);
    }

    #[test]
    fn capture_roundtrips_with_header(
        events in proptest::collection::vec(arb_stream_event(), 0..40),
        seed in any::<u64>(),
        threads in 1usize..16,
    ) {
        let geometry = StreamGeometry {
            threads: threads as u32,
            cores: 4,
            user_locks: 3,
            user_flags: 2,
            barriers: 1,
            data_words: 1 << 16,
            user_atomics: 0,
        };
        let header = StreamHeader::new("prop", "CORD-D16", seed, geometry);
        let (h, back) = decode_capture(&encode_capture(&header, &events)).expect("decodes");
        prop_assert_eq!(h, header);
        prop_assert_eq!(back, events);
    }
}

// ---------------------------------------------------------------------
// Golden stream fixture
// ---------------------------------------------------------------------

/// A fixed synthetic session touching every event tag and several
/// varint width classes; its encoding is pinned byte-for-byte.
fn golden_session() -> (StreamHeader, Vec<StreamEvent>) {
    let header = StreamHeader::new(
        "golden",
        "CORD-D16",
        0xC02D,
        StreamGeometry {
            threads: 4,
            cores: 4,
            user_locks: 2,
            user_flags: 1,
            barriers: 1,
            data_words: 4096,
            user_atomics: 0,
        },
    );
    let mut events = vec![
        StreamEvent::LineFilled {
            core: CoreId(0),
            level: Level::L2,
            line: LineAddr(0x41),
        },
        StreamEvent::Access(AccessEvent {
            core: CoreId(0),
            thread: ThreadId(0),
            addr: Addr::new(0x1040),
            kind: AccessKind::DataWrite,
            path: AccessPath::FillFromMemory,
            instr_index: 1,
            cycle: 100,
        }),
        StreamEvent::Access(AccessEvent {
            core: CoreId(1),
            thread: ThreadId(1),
            addr: Addr::new(0x1040),
            kind: AccessKind::SyncRead,
            path: AccessPath::FillFromSibling(CoreId(0)),
            instr_index: 128,
            cycle: 0x1_0000,
        }),
        StreamEvent::LineRemoved(LineRemoval {
            core: CoreId(1),
            level: Level::L1,
            line: LineAddr(7),
            cause: RemovalCause::Invalidation,
            dirty: true,
        }),
        StreamEvent::ThreadMigrated {
            thread: ThreadId(3),
            from: CoreId(1),
            to: CoreId(2),
        },
        StreamEvent::Trace(TraceEvent {
            cycle: 0xFFFF_FFFF,
            thread: NO_THREAD,
            kind: EventKind::WalkerPass {
                evicted: 300,
                bound: 1 << 33,
            },
        }),
        StreamEvent::RunEnd {
            instr_counts: vec![128, 1, 0, 1 << 21],
        },
    ];
    // Enough filler to span more than one CAPTURE_BATCH frame.
    for i in 0..600u64 {
        events.push(StreamEvent::LineFilled {
            core: CoreId((i % 4) as u8),
            level: Level::L2,
            line: LineAddr(i * 3),
        });
    }
    (header, events)
}

#[test]
fn geometry_with_atomics_roundtrips_and_rebuilds_the_layout() {
    use cord_json::{FromJson, ToJson};
    let g = StreamGeometry {
        threads: 4,
        cores: 4,
        user_locks: 1,
        user_flags: 0,
        barriers: 0,
        data_words: 256,
        user_atomics: 3,
    };
    let back = StreamGeometry::from_json(&g.to_json()).expect("decodes");
    assert_eq!(back, g);
    assert_eq!(back.layout().user_atomics(), 3);
    let header = StreamHeader::new("atomics", "CORD-D16", 1, g);
    let (h, events) = decode_capture(&encode_capture(&header, &[])).expect("decodes");
    assert_eq!(h, header);
    assert!(events.is_empty());
}

#[test]
fn zero_atomics_geometry_encodes_without_the_field() {
    use cord_json::ToJson;
    let g = StreamGeometry {
        threads: 2,
        cores: 2,
        user_locks: 0,
        user_flags: 0,
        barriers: 0,
        data_words: 16,
        user_atomics: 0,
    };
    // Pre-atomics consumers parse this object field-for-field; the new
    // field must not appear for them (the golden fixture pins the full
    // encoding, this pins the reason it still passes).
    assert!(!g.to_json().to_string_compact().contains("user_atomics"));
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden.stream")
}

#[test]
fn golden_stream_matches_fixture() {
    let (header, events) = golden_session();
    let current = encode_capture(&header, &events);
    let path = fixture_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("golden stream updated: {}", path.display());
        return;
    }
    let pinned = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden stream {} ({e}); run with GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        current, pinned,
        "wire encoding drifted from the pinned stream; an intentional \
         format change must bump WIRE_VERSION and regenerate with GOLDEN_UPDATE=1"
    );
    // The pinned bytes must also still decode to the same session.
    let (h, back) = decode_capture(&pinned).expect("pinned stream decodes");
    assert_eq!(h, header);
    assert_eq!(back, events);
}
