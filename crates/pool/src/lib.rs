//! A hand-rolled, dependency-free work-stealing thread pool for the
//! injection-sweep executor.
//!
//! The sweep's job matrix is thousands of independent, seconds-long
//! simulations, so the pool optimizes for simplicity and auditability
//! over raw scheduling throughput:
//!
//! * **Work stealing** — each worker owns a deque; it pops its own jobs
//!   from the front and steals from siblings' backs when idle, so a
//!   skewed batch (one app's runs much slower than another's) still
//!   keeps every core busy.
//! * **Scoped jobs** — [`Pool::run_ordered`] accepts closures that
//!   borrow from the caller's stack (workloads, configs). It does not
//!   return until every job has finished, which is what makes the
//!   borrow sound.
//! * **Panic capture per job** — a panicking job becomes a
//!   [`JobPanic`] in its result slot; sibling jobs and the workers
//!   themselves are unaffected, and the pool stays usable.
//! * **Deterministic ordered collect** — results come back indexed by
//!   submission order, never completion order, so a parallel batch is
//!   bit-identical to a serial one when the jobs themselves are
//!   deterministic.
//! * **Progress metrics** — [`Pool::run_ordered_with`] reports jobs
//!   done/failed, elapsed and busy time (worker utilization) after
//!   every completion.
//!
//! The build environment is offline-vendored, so the pool uses only
//! `std`: per-deque `Mutex`es plus one `Condvar` for idle workers. For
//! jobs that each run for milliseconds or more (every simulation does),
//! lock overhead is unmeasurable.
//!
//! # Example
//!
//! ```
//! use cord_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let inputs = vec![3u64, 1, 4, 1, 5, 9];
//! let jobs: Vec<_> = inputs
//!     .iter()
//!     .map(|&n| move || n * n)
//!     .collect();
//! let squares: Vec<u64> = pool
//!     .run_ordered(jobs)
//!     .into_iter()
//!     .map(|r| r.expect("no job panicked"))
//!     .collect();
//! assert_eq!(squares, vec![9, 1, 16, 1, 25, 81]);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Pool state is only ever mutated in small, panic-free critical
/// sections (jobs run *outside* any lock), so a poisoned mutex carries
/// no torn state worth refusing to read.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Renders a caught panic payload as a message string (`&str` and
/// `String` payloads verbatim, anything else a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A job that panicked; the payload is its rendered panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// What one job produced: its return value, or the captured panic.
pub type JobResult<T> = Result<T, JobPanic>;

/// A snapshot of batch progress, passed to the callback of
/// [`Pool::run_ordered_with`] after every job completion.
#[derive(Debug, Clone, Copy)]
pub struct BatchProgress {
    /// Jobs finished so far (including failed ones).
    pub done: usize,
    /// Jobs submitted in this batch.
    pub total: usize,
    /// Jobs that panicked so far.
    pub failed: usize,
    /// Wall-clock time since the batch was submitted.
    pub elapsed: Duration,
    /// Summed per-job execution time across all workers.
    pub busy: Duration,
    /// Workers in the pool.
    pub workers: usize,
}

impl BatchProgress {
    /// Fraction of available worker time spent executing jobs
    /// (`busy / (elapsed * workers)`, clamped to `0..=1`).
    pub fn utilization(&self) -> f64 {
        let avail = self.elapsed.as_secs_f64() * self.workers as f64;
        if avail <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / avail).min(1.0)
    }

    /// Estimated time to completion, extrapolated from the mean
    /// wall-clock rate so far. `None` until the first job finishes.
    pub fn eta(&self) -> Option<Duration> {
        if self.done == 0 {
            return None;
        }
        let per_job = self.elapsed.as_secs_f64() / self.done as f64;
        Some(Duration::from_secs_f64(
            per_job * (self.total - self.done) as f64,
        ))
    }

    /// Accumulates this batch snapshot into `reg` under the `pool.`
    /// prefix. Counters sum across batches; the utilization gauge
    /// reflects the most recent snapshot recorded.
    pub fn record_into(&self, reg: &mut cord_obs::MetricsRegistry) {
        reg.add("pool.jobs_done", self.done as u64);
        reg.add("pool.jobs_total", self.total as u64);
        reg.add("pool.jobs_failed", self.failed as u64);
        reg.add("pool.batches", 1);
        reg.gauge("pool.workers", self.workers as f64);
        reg.gauge("pool.batch_elapsed_s", self.elapsed.as_secs_f64());
        reg.gauge("pool.batch_busy_s", self.busy.as_secs_f64());
        reg.gauge("pool.utilization", self.utilization());
    }
}

/// An erased job as it sits in a worker deque. The `'static` is a lie
/// told by [`Pool::run_ordered_with`]; see the safety comment there.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker. The owner pops from the front; thieves
    /// steal from the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Idle workers sleep on this pair; submitters notify it.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Takes a task: own queue first (front), then steal from siblings
    /// (back), scanning from the nearest neighbor for spread.
    fn grab(&self, me: usize) -> Option<Task> {
        if let Some(t) = lock_unpoisoned(&self.queues[me]).pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for k in 1..n {
            if let Some(t) = lock_unpoisoned(&self.queues[(me + k) % n]).pop_back() {
                return Some(t);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queues.iter().any(|q| !lock_unpoisoned(q).is_empty())
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.grab(me) {
            task();
            continue;
        }
        // Sleep until a submitter notifies. Work and shutdown are
        // re-checked under the idle lock (submitters notify under it),
        // so a wakeup cannot be lost; the timeout is belt-and-braces.
        let guard = lock_unpoisoned(&shared.idle);
        if shared.shutdown.load(Ordering::Acquire) || shared.has_work() {
            continue;
        }
        let _ = shared.wake.wait_timeout(guard, Duration::from_millis(50));
    }
}

/// A fixed-size work-stealing thread pool. Dropping the pool shuts the
/// workers down and joins them.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("cord-pool-{me}"))
                .spawn(move || worker_loop(&worker_shared, me));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Shut down and join the workers that did spawn, so
                    // a partial failure doesn't leak polling threads.
                    shared.shutdown.store(true, Ordering::Release);
                    {
                        let _g = lock_unpoisoned(&shared.idle);
                        shared.wake.notify_all();
                    }
                    for h in handles.drain(..) {
                        let _ = h.join();
                    }
                    panic!("failed to spawn pool worker {me}: {e}");
                }
            }
        }
        Pool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// The host's available parallelism (1 if it cannot be queried).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Runs a batch of scoped jobs and collects their results **in
    /// submission order**, regardless of completion order. Jobs may
    /// borrow from the caller's stack; the call blocks until every job
    /// has finished. A panicking job yields `Err(JobPanic)` in its own
    /// slot and nothing else.
    pub fn run_ordered<T, F>(&self, jobs: Vec<F>) -> Vec<JobResult<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_ordered_with(jobs, |_| {})
    }

    /// [`Pool::run_ordered`] with a progress callback invoked (from
    /// worker threads) after every job completion. A panicking callback
    /// is swallowed — it cannot wedge the batch.
    pub fn run_ordered_with<T, F, P>(&self, jobs: Vec<F>, progress: P) -> Vec<JobResult<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
        P: Fn(&BatchProgress) + Sync,
    {
        struct Slots<T> {
            results: Vec<Option<JobResult<T>>>,
            /// Results landed (drives progress snapshots).
            done: usize,
            failed: usize,
            /// Tasks past their last use of any caller borrow; the
            /// waiter gates on this, never on `done`.
            committed: usize,
        }
        struct Batch<T> {
            slots: Mutex<Slots<T>>,
            finished: Condvar,
            busy_nanos: AtomicU64,
            start: Instant,
        }

        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.workers();
        // The batch bookkeeping lives in an `Arc` (each task holds a
        // clone) so the mutex/condvar allocation stays valid while the
        // last worker drops its guard and wakes the caller, even if the
        // caller has already returned by then.
        let batch: Arc<Batch<T>> = Arc::new(Batch {
            slots: Mutex::new(Slots {
                results: (0..total).map(|_| None).collect(),
                done: 0,
                failed: 0,
                committed: 0,
            }),
            finished: Condvar::new(),
            busy_nanos: AtomicU64::new(0),
            start: Instant::now(),
        });

        let progress_ref = &progress;
        let mut tasks: Vec<Task> = Vec::with_capacity(total);
        for (i, job) in jobs.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(|p| JobPanic {
                    message: panic_message(p.as_ref()),
                });
                let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                batch.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
                let snapshot = {
                    let mut s = lock_unpoisoned(&batch.slots);
                    if outcome.is_err() {
                        s.failed += 1;
                    }
                    s.results[i] = Some(outcome);
                    s.done += 1;
                    BatchProgress {
                        done: s.done,
                        total,
                        failed: s.failed,
                        elapsed: batch.start.elapsed(),
                        busy: Duration::from_nanos(batch.busy_nanos.load(Ordering::Relaxed)),
                        workers,
                    }
                };
                // Outside the slots lock so a slow callback never
                // stalls result collection, and *before* this task
                // commits: the caller cannot return (destroying the
                // callback and job captures) while it runs. Panics in
                // it are dropped.
                let _ = catch_unwind(AssertUnwindSafe(|| progress_ref(&snapshot)));
                // The commit is the task's last touch of anything
                // caller-borrowed; everything below lives in the Arc.
                let mut s = lock_unpoisoned(&batch.slots);
                s.committed += 1;
                if s.committed == total {
                    batch.finished.notify_all();
                }
            });
            // SAFETY: the task borrows `progress` and the caller's job
            // captures, neither of which is `'static`. The erasure is
            // sound because this function does not return until
            // `slots.committed == total`, every task increments
            // `committed` exactly once *after* its last use of those
            // borrows (the job is consumed under `catch_unwind` above,
            // the progress callback runs before the commit, and the
            // bookkeeping itself never panics), and the commit/notify
            // happen under the slots lock, so the waiter — which
            // re-acquires that lock inside `Condvar::wait` — can only
            // observe the final count after the committing task has
            // released it. The batch state itself is `Arc`-owned, so
            // the guard drop, notify, and the task's own Arc drop
            // remain valid even once the caller's frame is gone. Tasks
            // are consumed by workers and never outlive the queue
            // drain below.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
            tasks.push(task);
        }

        // Distribute round-robin across worker deques, then wake
        // everyone under the idle lock (no lost wakeups).
        for (i, task) in tasks.into_iter().enumerate() {
            lock_unpoisoned(&self.shared.queues[i % workers]).push_back(task);
        }
        {
            let _g = lock_unpoisoned(&self.shared.idle);
            self.shared.wake.notify_all();
        }

        let mut s = lock_unpoisoned(&batch.slots);
        while s.committed < total {
            s = match batch.finished.wait(s) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        s.results
            .drain(..)
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(JobPanic {
                        message: "job lost by pool (slot never filled)".to_string(),
                    })
                })
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = lock_unpoisoned(&self.shared.idle);
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn collects_in_submission_order() {
        let pool = Pool::new(4);
        // Earlier jobs sleep longer, so completion order is roughly the
        // reverse of submission order; collection order must not be.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis((16 - i) * 2));
                    i * 10
                }
            })
            .collect();
        let out = pool.run_ordered(jobs);
        let vals: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_jobs_borrow_caller_state() {
        let pool = Pool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let slices: Vec<&[u64]> = data.chunks(7).collect();
        let jobs: Vec<_> = slices
            .iter()
            .map(|s| move || s.iter().sum::<u64>())
            .collect();
        let total: u64 = pool.run_ordered(jobs).into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn panics_are_captured_per_job_without_poisoning_siblings() {
        let pool = Pool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..12u64)
            .map(|i| {
                let f: Box<dyn FnOnce() -> u64 + Send> = if i % 3 == 0 {
                    Box::new(move || panic!("boom {i}"))
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let out = pool.run_ordered(jobs.into_iter().map(|f| move || f()).collect());
        for (i, r) in out.iter().enumerate() {
            if i % 3 == 0 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.message, format!("boom {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64);
            }
        }
        // The pool survives a batch with panics and stays correct.
        let again = pool.run_ordered((0..8u64).map(|i| move || i + 1).collect::<Vec<_>>());
        let vals: Vec<u64> = again.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (1..=8u64).collect::<Vec<_>>());
    }

    #[test]
    fn progress_reports_every_completion_and_panicking_callbacks_are_dropped() {
        let pool = Pool::new(2);
        let calls = AtomicUsize::new(0);
        let out = pool.run_ordered_with((0..10u64).map(|i| move || i).collect::<Vec<_>>(), |p| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(p.done <= p.total);
            assert_eq!(p.total, 10);
            assert_eq!(p.failed, 0);
            // A panicking callback must not wedge or fail the batch.
            panic!("callback panic");
        });
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn skewed_batches_complete_under_stealing() {
        // One long job in worker 0's deque plus many short ones: the
        // short jobs must be stolen and finished well before a serial
        // schedule could (here we only assert completion + order).
        let pool = Pool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(60));
                    }
                    i
                });
                f
            })
            .collect();
        let out = pool.run_ordered(jobs.into_iter().map(|f| move || f()).collect());
        let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_and_single_worker() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 1);
        let none: Vec<JobResult<u64>> = pool.run_ordered(Vec::<fn() -> u64>::new());
        assert!(none.is_empty());
        let one = pool.run_ordered(vec![|| 42u64]);
        assert_eq!(*one[0].as_ref().unwrap(), 42);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert!(Pool::available_parallelism() >= 1);
    }

    #[test]
    fn batch_progress_math() {
        let p = BatchProgress {
            done: 5,
            total: 10,
            failed: 1,
            elapsed: Duration::from_secs(10),
            busy: Duration::from_secs(30),
            workers: 4,
        };
        assert!((p.utilization() - 0.75).abs() < 1e-9);
        assert_eq!(p.eta(), Some(Duration::from_secs(10)));
        let fresh = BatchProgress { done: 0, ..p };
        assert_eq!(fresh.eta(), None);
        let idle = BatchProgress {
            elapsed: Duration::ZERO,
            ..p
        };
        assert_eq!(idle.utilization(), 0.0);
    }

    #[test]
    fn reruns_are_deterministic() {
        let pool = Pool::new(4);
        let run = || {
            let jobs: Vec<_> = (0..20u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9).rotate_left(7))
                .collect();
            pool.run_ordered(jobs)
                .into_iter()
                .map(|r| r.unwrap())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}
