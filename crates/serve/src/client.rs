//! A blocking client for the daemon socket.

use crate::protocol::{response_body, Query, ServeError};
use cord_obs::wire::{read_frame, write_frame};
use cord_obs::{wire, StreamEvent, StreamHeader};
use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// Talks to a [`Daemon`](crate::Daemon) over its Unix socket.
#[derive(Debug, Clone)]
pub struct ServeClient {
    socket: PathBuf,
}

impl ServeClient {
    /// A client for the daemon at `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> ServeClient {
        ServeClient {
            socket: socket.into(),
        }
    }

    /// The daemon socket path.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    fn connect(&self) -> Result<UnixStream, ServeError> {
        Ok(UnixStream::connect(&self.socket)?)
    }

    /// Streams a capture (the exact bytes of
    /// [`wire::encode_capture`]) to the daemon and drains the
    /// resulting report, returning its canonical bytes — the payload
    /// the byte-identity contract compares against inline
    /// [`SinkReport::to_bytes`](cord_core::SinkReport::to_bytes).
    ///
    /// A capture file is already the session's frame sequence (header
    /// frame, then event frames), so it goes over the socket verbatim.
    pub fn replay_capture(&self, capture: &[u8]) -> Result<Vec<u8>, ServeError> {
        let mut stream = self.connect()?;
        stream.write_all(capture)?;
        write_frame(&mut stream, &Query::Drain.encode())?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let payload = read_frame(&mut reader)?
            .ok_or_else(|| ServeError::Protocol("daemon closed before replying".into()))?;
        Ok(response_body(&payload)?.to_vec())
    }

    /// Streams header + events built in-process (no capture file) and
    /// drains the report bytes.
    pub fn replay_events(
        &self,
        header: &StreamHeader,
        events: &[StreamEvent],
    ) -> Result<Vec<u8>, ServeError> {
        self.replay_capture(&wire::encode_capture(header, events))
    }

    /// Sends one query on a fresh connection and parses the JSON
    /// response.
    pub fn query(&self, q: Query) -> Result<cord_json::Json, ServeError> {
        let mut stream = self.connect()?;
        write_frame(&mut stream, &q.encode())?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let payload = read_frame(&mut reader)?
            .ok_or_else(|| ServeError::Protocol("daemon closed before replying".into()))?;
        let body = response_body(&payload)?;
        let text = std::str::from_utf8(body)
            .map_err(|_| ServeError::Protocol("response is not UTF-8".into()))?;
        Ok(cord_json::Json::parse(text)?)
    }

    /// Asks the daemon to exit its serve loop.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.query(Query::Shutdown).map(|_| ())
    }

    /// `true` once the daemon accepts connections; polls up to
    /// `attempts` times with a short sleep — for tests and smoke
    /// scripts that just spawned the process.
    pub fn wait_ready(&self, attempts: u32) -> bool {
        for _ in 0..attempts {
            if UnixStream::connect(&self.socket).is_ok() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        false
    }
}
