//! `cord-serve`: detection as a long-running service.
//!
//! The sink redesign in `cord-core` made detectors independent of the
//! simulator: a [`DetectorSink`](cord_core::DetectorSink) consumes
//! reified [`StreamEvent`](cord_obs::StreamEvent)s from *any* producer.
//! This crate is the producer-agnostic half of that bargain — a daemon
//! that ingests event streams over a Unix domain socket, runs the
//! detector the stream's header names, and answers queries about what
//! it has seen, all with the same wire format (`cord_obs::wire`) a
//! capture file uses.
//!
//! The load-bearing contract: **replaying a captured stream through the
//! daemon produces a race report bit-identical to inline detection.**
//! Inline detection *is* stream ingestion (the Machine path is a
//! `SinkObserver` adapter over the sink API), so the daemon and the
//! simulator literally execute the same detector code on the same event
//! sequence; the cord-fuzz oracle and the CI smoke hold the two byte
//! streams against each other.
//!
//! Architecture (one session = one ingesting connection):
//!
//! * a **reader** thread decodes length-prefixed frames off the socket
//!   and hands event batches to the session worker over a *bounded*
//!   queue — when the detector falls behind, the queue fills, the
//!   reader blocks, the socket buffer fills, and the producer stalls:
//!   end-to-end backpressure with no unbounded buffering;
//! * a **worker** thread owns the detector sink and ingests batches in
//!   order. Detection itself is sequential — CORD's thread clocks are
//!   global state, which is the paper's whole point — but the daemon
//!   keeps per-shard accounting by dense line index and fans snapshot
//!   serialization across a `cord-pool` worker pool;
//! * periodic **snapshots** land as durable `cord-json` documents
//!   (sealed, crash-atomic, previous-generation rotation); abnormal
//!   recoveries at startup surface as structured
//!   [`RecoveryEvent`](cord_json::durable::RecoveryEvent)s in `status`
//!   responses instead of stderr noise.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::ServeClient;
pub use protocol::{Query, ServeError, FRAME_QUERY, FRAME_RESPONSE};
pub use server::{Daemon, DaemonConfig};
