//! The control protocol layered over the wire format's frames.
//!
//! Every frame on a daemon socket is a `u32`-length-prefixed payload
//! (see `cord_obs::wire`); the payload's first byte says what it is:
//!
//! | tag | direction | payload |
//! |-----|-----------|---------|
//! | `H` | client → daemon | stream header (starts an ingest session) |
//! | `E` | client → daemon | a batch of binary-encoded events |
//! | `Q` | client → daemon | a JSON query (`{"cmd": "status"}` …) |
//! | `R` | daemon → client | a JSON response |
//!
//! `H`/`E` are exactly the frames [`cord_obs::wire::encode_capture`]
//! produces, so a capture file can be streamed to the daemon verbatim.
//! The `drain` query's response payload is the sink report's canonical
//! bytes ([`SinkReport::to_bytes`](cord_core::SinkReport::to_bytes)) —
//! what the byte-identity contract compares.

use cord_json::{Json, JsonError, ToJson};
use cord_obs::WireError;
use std::fmt;
use std::io;

/// Frame tag of a client query (JSON payload follows).
pub const FRAME_QUERY: u8 = b'Q';
/// Frame tag of a daemon response (JSON payload follows).
pub const FRAME_RESPONSE: u8 = b'R';

/// A control query a client can send — on a dedicated connection, or
/// interleaved after event frames on an ingest session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Daemon-wide status: sessions, events, races, snapshots, shard
    /// accounting, and any snapshot-recovery events.
    Status,
    /// All races drained from completed sessions.
    Races,
    /// The merged metrics registry of completed sessions.
    Metrics,
    /// Flush and drain the *current* session's sink; the response
    /// payload is the report's canonical bytes. Only meaningful on an
    /// ingest session.
    Drain,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

impl Query {
    /// The wire name of this query.
    pub fn name(self) -> &'static str {
        match self {
            Query::Status => "status",
            Query::Races => "races",
            Query::Metrics => "metrics",
            Query::Drain => "drain",
            Query::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Query> {
        Some(match name {
            "status" => Query::Status,
            "races" => Query::Races,
            "metrics" => Query::Metrics,
            "drain" => Query::Drain,
            "shutdown" => Query::Shutdown,
            _ => return None,
        })
    }

    /// Encodes the query as a `Q` frame payload.
    pub fn encode(self) -> Vec<u8> {
        let doc = cord_json::obj(vec![("cmd", self.name().to_json())]);
        let mut payload = vec![FRAME_QUERY];
        payload.extend_from_slice(doc.to_string_compact().as_bytes());
        payload
    }

    /// Decodes a `Q` frame payload (tag byte included).
    pub fn decode(payload: &[u8]) -> Result<Query, ServeError> {
        let body = match payload.split_first() {
            Some((&FRAME_QUERY, body)) => body,
            Some((&tag, _)) => return Err(ServeError::BadFrame { tag }),
            None => return Err(ServeError::Protocol("empty query frame".into())),
        };
        let text = std::str::from_utf8(body)
            .map_err(|_| ServeError::Protocol("query frame is not UTF-8".into()))?;
        let doc = Json::parse(text)?;
        let cmd: String = cord_json::FromJson::from_json(doc.field("cmd")?)?;
        Query::from_name(&cmd).ok_or_else(|| ServeError::Protocol(format!("unknown query `{cmd}`")))
    }
}

/// Wraps a JSON document as an `R` frame payload.
pub fn encode_response(doc: &Json) -> Vec<u8> {
    let mut payload = vec![FRAME_RESPONSE];
    payload.extend_from_slice(doc.to_string_compact().as_bytes());
    payload
}

/// Wraps pre-serialized canonical bytes as an `R` frame payload (the
/// drain path — the bytes must pass through unreserialized).
pub fn encode_response_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + bytes.len());
    payload.push(FRAME_RESPONSE);
    payload.extend_from_slice(bytes);
    payload
}

/// Unwraps an `R` frame payload into its raw body bytes.
pub fn response_body(payload: &[u8]) -> Result<&[u8], ServeError> {
    match payload.split_first() {
        Some((&FRAME_RESPONSE, body)) => Ok(body),
        Some((&tag, _)) => Err(ServeError::BadFrame { tag }),
        None => Err(ServeError::Protocol("empty response frame".into())),
    }
}

/// Anything that can go wrong between a client and the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(io::Error),
    /// A frame's binary payload failed to decode.
    Wire(WireError),
    /// A JSON payload failed to parse.
    Json(JsonError),
    /// A frame arrived with an unexpected tag.
    BadFrame {
        /// The offending tag byte.
        tag: u8,
    },
    /// The peer violated the session protocol.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
            ServeError::Wire(e) => write!(f, "wire decode failure: {e}"),
            ServeError::Json(e) => write!(f, "malformed payload: {e}"),
            ServeError::BadFrame { tag } => write!(f, "unexpected frame tag {tag:#04x}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<JsonError> for ServeError {
    fn from(e: JsonError) -> Self {
        ServeError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        for q in [
            Query::Status,
            Query::Races,
            Query::Metrics,
            Query::Drain,
            Query::Shutdown,
        ] {
            assert_eq!(Query::decode(&q.encode()).expect("decodes"), q);
            assert_eq!(Query::from_name(q.name()), Some(q));
        }
        assert!(Query::decode(&[FRAME_RESPONSE, b'{', b'}']).is_err());
        assert!(Query::from_name("nonsense").is_none());
    }

    #[test]
    fn response_bytes_pass_through_unreserialized() {
        let bytes = br#"{"detector":"CORD-D16","race_count":0}"#;
        let payload = encode_response_bytes(bytes);
        assert_eq!(response_body(&payload).expect("unwraps"), bytes);
    }
}
