//! The daemon: accept loop, ingest sessions, queries, and snapshots.

use crate::protocol::{encode_response, encode_response_bytes, Query, ServeError, FRAME_QUERY};
use cord_core::{DetectorSink, ObsCtx};
use cord_detectors::DetectorConfig;
use cord_json::durable::{self, RecoveryEvent};
use cord_json::{obj, Json, ToJson};
use cord_obs::wire::{decode_events, read_frame, write_frame, FRAME_EVENTS, FRAME_HEADER};
use cord_obs::{Histogram, MetricsRegistry, StreamEvent, StreamHeader};
use cord_pool::{lock_unpoisoned, Pool};
use cord_trace::layout::dense_line_index;
use cord_trace::types::LineAddr;
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;

/// How a daemon runs: where it listens, how it snapshots, and how much
/// in-flight work it tolerates.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path. A stale file at this path is removed at
    /// startup.
    pub socket: PathBuf,
    /// Durable snapshot document path; `None` disables snapshots.
    pub snapshot: Option<PathBuf>,
    /// Events between periodic snapshots (a final snapshot is always
    /// written when a session drains); `0` keeps only final snapshots.
    pub snapshot_every: u64,
    /// Bounded depth of each session's frame queue — the backpressure
    /// knob. When the detector lags this many undigested batches, the
    /// reader stops pulling from the socket and the producer stalls.
    pub queue_depth: usize,
    /// Dense-line shards for per-shard accounting and parallel snapshot
    /// serialization.
    pub shards: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("cord-serve.sock"),
            snapshot: None,
            snapshot_every: 100_000,
            queue_depth: 64,
            shards: 8,
        }
    }
}

/// Daemon-wide state behind the queries.
#[derive(Debug, Default)]
struct DaemonState {
    sessions_started: u64,
    sessions_completed: u64,
    events_ingested: u64,
    races_reported: u64,
    snapshots_written: u64,
    /// Abnormal recoveries: snapshot generations skipped at startup.
    recovery: Vec<RecoveryEvent>,
    /// All races from drained sessions, in drain order.
    races: Vec<Json>,
    /// Merged metrics of drained sessions.
    metrics: MetricsRegistry,
    /// Per-access ingest latency across drained sessions (how long the
    /// sink spent on each Access event), merged pointwise.
    ingest_latency: Histogram,
    /// Per-shard event counts, summed across sessions.
    shard_events: Vec<u64>,
    /// Header info of the most recent session.
    last_workload: String,
    last_detector: String,
}

struct Shared {
    cfg: DaemonConfig,
    state: Mutex<DaemonState>,
    shutdown: AtomicBool,
}

/// A streaming race-detection daemon on a Unix-domain socket.
pub struct Daemon {
    shared: Arc<Shared>,
}

impl Daemon {
    /// A daemon with the given configuration (not yet listening).
    pub fn new(cfg: DaemonConfig) -> Daemon {
        let shards = cfg.shards.max(1);
        let mut state = DaemonState {
            shard_events: vec![0; shards],
            ..DaemonState::default()
        };
        // Surface prior-snapshot recovery immediately: a corrupt primary
        // generation is a structured status fact, not a stderr line.
        if let Some(path) = &cfg.snapshot {
            let load = durable::load_checkpoint(path);
            state.recovery = load.warnings;
        }
        Daemon {
            shared: Arc::new(Shared {
                cfg,
                state: Mutex::new(state),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Binds the socket and serves until a `shutdown` query arrives.
    /// Each connection gets its own session thread; ingest sessions get
    /// a reader/worker pair with a bounded queue between them.
    pub fn run(&self) -> Result<(), ServeError> {
        let socket = self.shared.cfg.socket.clone();
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket)?;
        let mut sessions = Vec::new();
        for conn in listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            sessions.push(thread::spawn(move || {
                // A failed session must not take the daemon down; the
                // error is the client's problem (their connection drops).
                let _ = handle_connection(stream, &shared);
            }));
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        for s in sessions {
            let _ = s.join();
        }
        let _ = std::fs::remove_file(&socket);
        Ok(())
    }

    /// The daemon's socket path.
    pub fn socket(&self) -> &PathBuf {
        &self.shared.cfg.socket
    }
}

/// Work items flowing from a session's reader to its worker over the
/// bounded queue.
enum Work {
    /// A decoded batch of events to ingest, in arrival order.
    Events(Vec<StreamEvent>),
    /// Flush + drain; the canonical report bytes go back on the reply
    /// channel.
    Drain(SyncSender<Vec<u8>>),
}

fn handle_connection(stream: UnixStream, shared: &Arc<Shared>) -> Result<(), ServeError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let first = match read_frame(&mut reader)? {
        Some(f) => f,
        None => return Ok(()),
    };
    match first.split_first() {
        Some((&FRAME_HEADER, _)) => {
            let header = StreamHeader::decode(&first)?;
            ingest_session(header, reader, stream, shared)
        }
        Some((&FRAME_QUERY, _)) => {
            let q = Query::decode(&first)?;
            let mut writer = BufWriter::new(stream);
            answer_query(q, shared, None, &mut writer)
        }
        Some((&tag, _)) => Err(ServeError::BadFrame { tag }),
        None => Err(ServeError::Protocol("empty first frame".into())),
    }
}

fn ingest_session(
    header: StreamHeader,
    mut reader: BufReader<UnixStream>,
    stream: UnixStream,
    shared: &Arc<Shared>,
) -> Result<(), ServeError> {
    let config = DetectorConfig::from_label(&header.detector).ok_or_else(|| {
        ServeError::Protocol(format!("unknown detector label `{}`", header.detector))
    })?;
    {
        let mut st = lock_unpoisoned(&shared.state);
        st.sessions_started += 1;
        st.last_workload = header.workload.clone();
        st.last_detector = header.detector.clone();
    }

    let (tx, rx) = sync_channel::<Work>(shared.cfg.queue_depth.max(1));
    let worker_shared = Arc::clone(shared);
    let worker_header = header.clone();
    let worker = thread::Builder::new()
        .name("cord-serve-worker".into())
        .spawn(move || session_worker(&worker_header, config, &rx, &worker_shared))
        .map_err(ServeError::Io)?;

    let mut writer = BufWriter::new(stream);
    let result = (|| -> Result<(), ServeError> {
        while let Some(payload) = read_frame(&mut reader)? {
            match payload.split_first() {
                Some((&FRAME_EVENTS, body)) => {
                    let events = decode_events(body)?;
                    // A full queue blocks here — backpressure all the
                    // way to the producer's socket writes.
                    if tx.send(Work::Events(events)).is_err() {
                        return Err(ServeError::Protocol("session worker died".into()));
                    }
                }
                Some((&FRAME_QUERY, _)) => {
                    let q = Query::decode(&payload)?;
                    answer_query(q, shared, Some(&tx), &mut writer)?;
                }
                Some((&tag, _)) => return Err(ServeError::BadFrame { tag }),
                None => return Err(ServeError::Protocol("empty frame".into())),
            }
        }
        Ok(())
    })();
    drop(tx);
    let _ = worker.join();
    result
}

/// The session worker: owns the sink, ingests in order, keeps shard
/// accounting, and snapshots periodically. Returns when the queue
/// closes (client gone) or after serving a drain.
fn session_worker(
    header: &StreamHeader,
    config: DetectorConfig,
    rx: &Receiver<Work>,
    shared: &Arc<Shared>,
) {
    let geometry = &header.geometry;
    let shards = shared.cfg.shards.max(1);
    let mut sink = config.build_boxed_sink(
        geometry.threads as usize,
        geometry.cores as usize,
        header.seed,
        ObsCtx::disabled(),
    );
    let mut shard_events = vec![0u64; shards];
    let mut ingest_latency = Histogram::new();
    let mut events: u64 = 0;
    let mut since_snapshot: u64 = 0;
    let mut drained = false;
    let pool = Pool::new(shards.min(Pool::available_parallelism()));

    for work in rx {
        match work {
            Work::Events(batch) => {
                for ev in &batch {
                    if let Some(line) = event_line(ev) {
                        shard_events[dense_line_index(line) % shards] += 1;
                    }
                    if matches!(ev, StreamEvent::Access(_)) {
                        let start = std::time::Instant::now();
                        sink.ingest(ev);
                        ingest_latency.record_ns(start.elapsed().as_nanos() as u64);
                    } else {
                        sink.ingest(ev);
                    }
                }
                let n = batch.len() as u64;
                events += n;
                since_snapshot += n;
                {
                    let mut st = lock_unpoisoned(&shared.state);
                    st.events_ingested += n;
                }
                let every = shared.cfg.snapshot_every;
                if every > 0 && since_snapshot >= every {
                    since_snapshot = 0;
                    write_snapshot(header, &mut sink, events, &shard_events, &pool, shared);
                }
            }
            Work::Drain(reply) => {
                sink.flush();
                let report = sink.drain();
                let bytes = report.to_bytes();
                record_report(&report, &shard_events, &ingest_latency, shared);
                ingest_latency = Histogram::new();
                drained = true;
                write_snapshot(header, &mut sink, events, &shard_events, &pool, shared);
                let _ = reply.send(bytes);
            }
        }
    }
    if !drained {
        // Client vanished without draining: bank the session's findings
        // anyway so daemon-wide queries still see them.
        sink.flush();
        let report = sink.drain();
        record_report(&report, &shard_events, &ingest_latency, shared);
        write_snapshot(header, &mut sink, events, &shard_events, &pool, shared);
    }
    let mut st = lock_unpoisoned(&shared.state);
    st.sessions_completed += 1;
}

/// Which cache line an event concerns, for shard accounting.
fn event_line(ev: &StreamEvent) -> Option<LineAddr> {
    match ev {
        StreamEvent::Access(a) => Some(a.addr.line()),
        StreamEvent::LineFilled { line, .. } => Some(*line),
        StreamEvent::LineRemoved(r) => Some(r.line),
        _ => None,
    }
}

fn record_report(
    report: &cord_core::SinkReport,
    shard_events: &[u64],
    ingest_latency: &Histogram,
    shared: &Arc<Shared>,
) {
    let mut st = lock_unpoisoned(&shared.state);
    st.races_reported += report.race_count;
    st.races.extend(report.races.iter().cloned());
    st.metrics.merge(&report.metrics);
    st.ingest_latency.merge(ingest_latency);
    for (acc, n) in st.shard_events.iter_mut().zip(shard_events) {
        *acc += n;
    }
}

/// Writes the durable snapshot document: session progress, the current
/// race report, and per-shard accounting. Shard summaries are
/// serialized in parallel on the pool — the one piece of snapshot work
/// that scales with the address space — then assembled in shard order
/// so the document is deterministic.
fn write_snapshot(
    header: &StreamHeader,
    sink: &mut Box<dyn DetectorSink>,
    events: u64,
    shard_events: &[u64],
    pool: &Pool,
    shared: &Arc<Shared>,
) {
    let Some(path) = shared.cfg.snapshot.clone() else {
        return;
    };
    let report = sink.drain();
    let jobs: Vec<_> = shard_events
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            move || {
                obj(vec![
                    ("shard", Json::UInt(i as u64)),
                    ("events", Json::UInt(n)),
                ])
            }
        })
        .collect();
    let shards: Vec<Json> = pool
        .run_ordered(jobs)
        .into_iter()
        .map(|r| r.unwrap_or(Json::Null))
        .collect();
    let doc = obj(vec![
        ("workload", Json::Str(header.workload.clone())),
        ("detector", Json::Str(header.detector.clone())),
        ("seed", Json::UInt(header.seed)),
        ("events", Json::UInt(events)),
        ("report", report.to_json()),
        ("shards", Json::Array(shards)),
    ]);
    if durable::write_checkpoint(&path, &doc).is_ok() {
        let mut st = lock_unpoisoned(&shared.state);
        st.snapshots_written += 1;
    }
}

/// Answers one query. `worker` is the current ingest session's queue
/// (drain needs it); daemon-wide queries work on any connection.
fn answer_query(
    q: Query,
    shared: &Arc<Shared>,
    worker: Option<&SyncSender<Work>>,
    writer: &mut BufWriter<UnixStream>,
) -> Result<(), ServeError> {
    let payload = match q {
        Query::Status => encode_response(&status_doc(shared)),
        Query::Races => {
            let st = lock_unpoisoned(&shared.state);
            encode_response(&Json::Array(st.races.clone()))
        }
        Query::Metrics => {
            let st = lock_unpoisoned(&shared.state);
            // Registry shape (counters/gauges) plus the per-access
            // ingest-latency distribution as a sibling field.
            let mut doc = st.metrics.to_json();
            if let Json::Object(fields) = &mut doc {
                fields.push(("ingest_latency".into(), st.ingest_latency.to_json()));
            }
            encode_response(&doc)
        }
        Query::Drain => {
            let worker = worker
                .ok_or_else(|| ServeError::Protocol("drain outside an ingest session".into()))?;
            let (rtx, rrx) = sync_channel(1);
            worker
                .send(Work::Drain(rtx))
                .map_err(|_| ServeError::Protocol("session worker died".into()))?;
            let bytes = rrx
                .recv()
                .map_err(|_| ServeError::Protocol("session worker died".into()))?;
            encode_response_bytes(&bytes)
        }
        Query::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Nudge the accept loop so it observes the flag.
            let _ = UnixStream::connect(&shared.cfg.socket);
            encode_response(&obj(vec![("ok", Json::Bool(true))]))
        }
    };
    write_frame(writer, &payload)?;
    writer.flush()?;
    Ok(())
}

fn status_doc(shared: &Arc<Shared>) -> Json {
    let st = lock_unpoisoned(&shared.state);
    obj(vec![
        ("sessions_started", Json::UInt(st.sessions_started)),
        ("sessions_completed", Json::UInt(st.sessions_completed)),
        ("events", Json::UInt(st.events_ingested)),
        ("races", Json::UInt(st.races_reported)),
        ("snapshots", Json::UInt(st.snapshots_written)),
        ("workload", Json::Str(st.last_workload.clone())),
        ("detector", Json::Str(st.last_detector.clone())),
        (
            "queue_depth",
            Json::UInt(shared.cfg.queue_depth.max(1) as u64),
        ),
        (
            "shard_events",
            Json::Array(st.shard_events.iter().map(|&n| Json::UInt(n)).collect()),
        ),
        (
            "recovery",
            Json::Array(st.recovery.iter().map(|e| e.to_json()).collect()),
        ),
    ])
}
