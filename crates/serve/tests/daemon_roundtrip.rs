//! End-to-end daemon tests: a replayed stream must drain to bytes
//! identical to inline detection, and queries must reflect what was
//! ingested.

use cord_core::{DetectorSink, ObsCtx};
use cord_detectors::DetectorConfig;
use cord_obs::wire;
use cord_obs::{AccessEvent, AccessKind, AccessPath, CoreId, Level, StreamEvent, StreamHeader};
use cord_serve::{Daemon, DaemonConfig, Query, ServeClient};
use cord_trace::layout::AddressLayout;
use cord_trace::types::{Addr, ThreadId, WORD_BYTES};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cord-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

/// A synthetic but detector-meaningful stream: two threads on two
/// cores racing on word 0 with no synchronization, plus line fills so
/// cache-resident history exists.
fn racy_events() -> Vec<StreamEvent> {
    let w0 = Addr::new(0);
    let line = w0.line();
    let mut events = Vec::new();
    let mut cycle = 0u64;
    let mut retired = [0u64; 2];
    let mut access = |core: u8, thread: u16, addr: Addr, kind: AccessKind, path: AccessPath| {
        cycle += 10;
        retired[thread as usize] += 1;
        StreamEvent::Access(AccessEvent {
            core: CoreId(core),
            thread: ThreadId(thread),
            addr,
            kind,
            path,
            instr_index: retired[thread as usize],
            cycle,
        })
    };
    events.push(StreamEvent::LineFilled {
        core: CoreId(0),
        level: Level::L2,
        line,
    });
    events.push(access(
        0,
        0,
        w0,
        AccessKind::DataWrite,
        AccessPath::FillFromMemory,
    ));
    events.push(StreamEvent::LineFilled {
        core: CoreId(1),
        level: Level::L2,
        line,
    });
    events.push(access(
        1,
        1,
        w0,
        AccessKind::DataWrite,
        AccessPath::FillFromSibling(CoreId(0)),
    ));
    events.push(access(
        0,
        0,
        Addr::new(WORD_BYTES),
        AccessKind::DataRead,
        AccessPath::L2Hit,
    ));
    events.push(StreamEvent::LineRemoved(cord_obs::LineRemoval {
        core: CoreId(1),
        level: Level::L2,
        line,
        cause: cord_obs::RemovalCause::Capacity,
        dirty: true,
    }));
    events.push(StreamEvent::RunEnd {
        instr_counts: vec![2, 1],
    });
    events
}

fn header(detector: &str) -> StreamHeader {
    let layout = AddressLayout::new(2, 2, 1, 64);
    let geometry = wire::StreamGeometry::new(2, 2, &layout);
    StreamHeader::new("synthetic", detector, 7, geometry)
}

fn inline_bytes(config: DetectorConfig, events: &[StreamEvent]) -> Vec<u8> {
    let mut sink = config.build_sink(2, 2, 7, ObsCtx::disabled());
    for ev in events {
        sink.ingest(ev);
    }
    sink.flush();
    sink.drain().to_bytes()
}

#[test]
fn daemon_replay_matches_inline_bytes() {
    let dir = tmpdir("roundtrip");
    let socket = dir.join("serve.sock");
    let snapshot = dir.join("snapshot.json");
    let daemon = Daemon::new(DaemonConfig {
        socket: socket.clone(),
        snapshot: Some(snapshot.clone()),
        snapshot_every: 2,
        queue_depth: 2,
        shards: 4,
    });
    let handle = std::thread::spawn(move || daemon.run());
    let client = ServeClient::new(&socket);
    assert!(client.wait_ready(250), "daemon came up");

    let events = racy_events();
    for label in ["CORD-D16", "Ideal", "L2Cache(VC)"] {
        let config = DetectorConfig::from_label(label).expect("known label");
        let inline = inline_bytes(config, &events);
        let via_daemon = client
            .replay_events(&header(label), &events)
            .expect("daemon replay");
        assert_eq!(
            via_daemon, inline,
            "daemon report for {label} must be byte-identical to inline"
        );
        assert!(
            String::from_utf8_lossy(&inline).contains(label),
            "report names its detector"
        );
    }

    let status = client.query(Query::Status).expect("status");
    let events_seen: u64 =
        cord_json::FromJson::from_json(status.field("events").expect("events field"))
            .expect("uint");
    assert_eq!(events_seen, 3 * events.len() as u64);
    let races = client.query(Query::Races).expect("races");
    assert!(
        !races.as_array().expect("array").is_empty(),
        "the unsynchronized writes race"
    );
    let metrics = client.query(Query::Metrics).expect("metrics");
    assert!(metrics.field("counters").is_ok(), "{metrics:?}");
    assert!(snapshot.exists(), "periodic snapshots landed");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_recovery_surfaces_in_status() {
    let dir = tmpdir("recovery");
    let socket = dir.join("serve.sock");
    let snapshot = dir.join("snapshot.json");
    // Two generations, then a corrupted primary: the daemon must load
    // past it and say so in status, structurally.
    cord_json::durable::write_checkpoint(&snapshot, &cord_json::Json::UInt(1)).expect("gen 1");
    cord_json::durable::write_checkpoint(&snapshot, &cord_json::Json::UInt(2)).expect("gen 2");
    std::fs::write(&snapshot, "garbage{{{").expect("corrupt");

    let daemon = Daemon::new(DaemonConfig {
        socket: socket.clone(),
        snapshot: Some(snapshot),
        ..DaemonConfig::default()
    });
    let handle = std::thread::spawn(move || daemon.run());
    let client = ServeClient::new(&socket);
    assert!(client.wait_ready(250), "daemon came up");

    let status = client.query(Query::Status).expect("status");
    let recovery = status.field("recovery").expect("recovery field");
    let events = recovery.as_array().expect("array");
    assert!(!events.is_empty(), "recovery events surfaced: {status:?}");
    let first: cord_json::durable::RecoveryEvent =
        cord_json::FromJson::from_json(&events[0]).expect("structured");
    assert_eq!(first.kind, "corrupt-primary");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_detector_label_is_rejected_cleanly() {
    let dir = tmpdir("badlabel");
    let socket = dir.join("serve.sock");
    let daemon = Daemon::new(DaemonConfig {
        socket: socket.clone(),
        snapshot: None,
        ..DaemonConfig::default()
    });
    let handle = std::thread::spawn(move || daemon.run());
    let client = ServeClient::new(&socket);
    assert!(client.wait_ready(250), "daemon came up");

    let bad = client.replay_events(&header("NoSuchDetector"), &racy_events());
    assert!(bad.is_err(), "unknown label must not produce a report");

    // The daemon survives the bad session and still answers.
    let status = client
        .query(Query::Status)
        .expect("status after bad session");
    assert!(status.field("sessions_started").is_ok());

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}
