//! Chaos mode: the supervisor killing its own workers on purpose.
//!
//! A recovery path that only runs when production breaks is a recovery
//! path that does not work. Chaos mode makes worker death an everyday
//! CI event: at each supervision poll, each running worker is killed
//! with probability `kill_rate`, up to an optional total `budget` of
//! kills. Kill decisions come from a seeded xorshift generator, so a
//! chaos run is reproducible from its spec string.
//!
//! Chaos kills deliberately do **not** charge the shard's retry
//! budget — they are self-inflicted, and checkpoint monotonicity means
//! a respawned worker strictly extends the dead one's progress.
//! Combined with a finite `budget` (always set in CI), chaos delays a
//! campaign but can never fail or livelock it.

use std::fmt;

/// Parsed `--chaos kill-rate=P[,budget=B][,seed=S]` spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Per-poll, per-worker kill probability in `[0, 1]`.
    pub kill_rate: f64,
    /// Maximum total kills (`None` = unbounded; CI always bounds it).
    pub budget: Option<u64>,
    /// RNG seed; the same spec re-kills at the same decisions.
    pub seed: u64,
}

/// Parses a chaos spec of the form `kill-rate=P[,budget=B][,seed=S]`.
///
/// # Errors
///
/// Returns a human-readable message for unknown keys, missing
/// `kill-rate`, or out-of-range values.
pub fn parse_chaos_spec(spec: &str) -> Result<ChaosConfig, String> {
    let mut kill_rate = None;
    let mut budget = None;
    let mut seed = 0u64;
    for field in spec.split(',').filter(|f| !f.is_empty()) {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("chaos field {field:?} is not key=value"))?;
        match key {
            "kill-rate" => {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("chaos kill-rate {value:?} is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos kill-rate {p} outside [0, 1]"));
                }
                kill_rate = Some(p);
            }
            "budget" => {
                budget = Some(
                    value
                        .parse()
                        .map_err(|_| format!("chaos budget {value:?} is not an integer"))?,
                );
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("chaos seed {value:?} is not an integer"))?;
            }
            other => return Err(format!("unknown chaos key {other:?}")),
        }
    }
    let kill_rate = kill_rate.ok_or_else(|| "chaos spec needs kill-rate=P".to_owned())?;
    Ok(ChaosConfig {
        kill_rate,
        budget,
        seed,
    })
}

impl fmt::Display for ChaosConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kill-rate={}", self.kill_rate)?;
        if let Some(b) = self.budget {
            write!(f, ",budget={b}")?;
        }
        write!(f, ",seed={}", self.seed)
    }
}

/// Running chaos state: the RNG stream plus the kills spent so far.
#[derive(Debug, Clone)]
pub struct ChaosState {
    cfg: ChaosConfig,
    rng: u64,
    kills: u64,
}

impl ChaosState {
    /// Starts a chaos stream from its config.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosState {
            cfg,
            // xorshift must not start at 0; mix the seed through the
            // golden gamma so seed=0 still produces a live stream.
            rng: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            kills: 0,
        }
    }

    /// Draws one kill decision for one running worker. Returns `true`
    /// at most `budget` times over the stream's lifetime.
    pub fn should_kill(&mut self) -> bool {
        if let Some(budget) = self.cfg.budget {
            if self.kills >= budget {
                return false;
            }
        }
        // xorshift64
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
        let kill = draw < self.cfg.kill_rate;
        if kill {
            self.kills += 1;
        }
        kill
    }

    /// Kills spent so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// `true` once the kill budget (if any) is exhausted.
    pub fn exhausted(&self) -> bool {
        self.cfg.budget.is_some_and(|b| self.kills >= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let cfg = parse_chaos_spec("kill-rate=0.3,budget=6,seed=2006").expect("parses");
        assert_eq!(
            cfg,
            ChaosConfig {
                kill_rate: 0.3,
                budget: Some(6),
                seed: 2006
            }
        );
        assert_eq!(cfg.to_string(), "kill-rate=0.3,budget=6,seed=2006");
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_chaos_spec("").is_err());
        assert!(parse_chaos_spec("budget=3").is_err());
        assert!(parse_chaos_spec("kill-rate=1.5").is_err());
        assert!(parse_chaos_spec("kill-rate=0.5,frobnicate=1").is_err());
        assert!(parse_chaos_spec("kill-rate").is_err());
    }

    #[test]
    fn budget_bounds_kills() {
        let mut st = ChaosState::new(ChaosConfig {
            kill_rate: 1.0,
            budget: Some(3),
            seed: 7,
        });
        let kills = (0..100).filter(|_| st.should_kill()).count();
        assert_eq!(kills, 3);
        assert!(st.exhausted());
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = ChaosConfig {
            kill_rate: 0.5,
            budget: None,
            seed: 42,
        };
        let a: Vec<bool> = {
            let mut st = ChaosState::new(cfg);
            (0..64).map(|_| st.should_kill()).collect()
        };
        let b: Vec<bool> = {
            let mut st = ChaosState::new(cfg);
            (0..64).map(|_| st.should_kill()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|&k| k) && a.iter().any(|&k| !k));
    }

    #[test]
    fn zero_rate_never_kills_even_with_seed_zero() {
        let mut st = ChaosState::new(ChaosConfig {
            kill_rate: 0.0,
            budget: None,
            seed: 0,
        });
        assert!((0..64).all(|_| !st.should_kill()));
    }
}
