//! Heartbeat files: how a supervisor tells "slow" from "hung" without
//! signals, pipes, or shared memory.
//!
//! A worker owns one heartbeat file and rewrites it with a
//! monotonically increasing beat counter between work items. The
//! supervisor polls the file; as long as the *counter value* keeps
//! changing the worker is alive, however slowly it is making progress.
//! A counter that stays put past the heartbeat timeout means the
//! worker is wedged (deadlocked simulation, stuck I/O) even though the
//! process may still exist — exactly the case `Child::try_wait` cannot
//! catch.
//!
//! Writes go through a temp-file rename so the supervisor can never
//! read a half-written counter; no fsync, because a heartbeat lost to
//! a power cut is indistinguishable from (and handled like) a dead
//! worker.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writer side: owned by a worker, beats between work items.
#[derive(Debug)]
pub struct HeartbeatWriter {
    path: PathBuf,
    beats: u64,
}

impl HeartbeatWriter {
    /// Creates a writer that will beat into `path`. Writes beat 0
    /// immediately so the supervisor sees the worker come up.
    pub fn new(path: PathBuf) -> io::Result<Self> {
        let mut w = HeartbeatWriter { path, beats: 0 };
        w.write_current()?;
        Ok(w)
    }

    /// Records one beat. Errors are returned, not panicked on — a
    /// worker that cannot beat should keep computing; the supervisor
    /// will treat it as hung and restart it, which is the correct
    /// degraded behaviour.
    pub fn beat(&mut self) -> io::Result<()> {
        self.beats += 1;
        self.write_current()
    }

    /// Number of beats recorded so far (excluding the initial 0).
    pub fn beats(&self) -> u64 {
        self.beats
    }

    fn write_current(&mut self) -> io::Result<()> {
        let tmp = self.path.with_extension("hb.tmp");
        fs::write(
            &tmp,
            format!("beat={}\npid={}\n", self.beats, std::process::id()),
        )?;
        fs::rename(&tmp, &self.path)
    }
}

/// Reader side: the current beat counter, or `None` if the file is
/// missing or unparseable (a just-spawned worker that has not beaten
/// yet looks the same as a missing one — the supervisor's staleness
/// clock starts at spawn either way).
pub fn read_heartbeat(path: &Path) -> Option<u64> {
    let text = fs::read_to_string(path).ok()?;
    let line = text.lines().find(|l| l.starts_with("beat="))?;
    line.strip_prefix("beat=")?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cord-hb-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn beats_are_monotonic_and_readable() {
        let path = tmp("mono.hb");
        let mut w = HeartbeatWriter::new(path.clone()).expect("writer");
        assert_eq!(read_heartbeat(&path), Some(0));
        w.beat().expect("beat");
        w.beat().expect("beat");
        assert_eq!(read_heartbeat(&path), Some(2));
        assert_eq!(w.beats(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_or_garbled_reads_none() {
        assert_eq!(read_heartbeat(Path::new("/nonexistent/x.hb")), None);
        let path = tmp("garbled.hb");
        fs::write(&path, "not a heartbeat").expect("write");
        assert_eq!(read_heartbeat(&path), None);
        let _ = fs::remove_file(&path);
    }
}
