//! Multi-process campaign sharding for the CORD reproduction.
//!
//! cord-pool scales a sweep or fuzz campaign across the threads of one
//! process; this crate scales it across *processes* — the prerequisite
//! for distributing CORD's (app × run × injection-config) matrix and
//! the million-case fuzz campaigns over many machines or simply over a
//! supervisor that survives its workers dying.
//!
//! The crate is deliberately dependency-light (`cord-json` for durable
//! documents, `cord-obs` for supervision metrics, otherwise `std`) and
//! knows nothing about simulations. It provides three orthogonal
//! pieces that `cord-bench`'s `shard` driver composes:
//!
//! * [`plan`] — deterministic shard assignment. A shard plan is pure
//!   arithmetic over global case indices (`index % shards`, with seeds
//!   derived from the golden-ratio mix the fuzz campaign already
//!   uses), so *which* shard runs a case can never change *what* the
//!   case computes. This is what makes the merged output byte-identical
//!   across `--shards 1`, `--shards 8`, and any kill/resume history.
//! * [`heartbeat`] — tiny monotonic-counter heartbeat files workers
//!   touch between work items, letting the supervisor tell "slow" from
//!   "hung" without signals or shared memory.
//! * [`supervisor`] + [`chaos`] — the coordinator loop: spawn workers,
//!   watch exits and heartbeats, retry crashed/hung shards with capped
//!   exponential backoff, abandon shards that exhaust their budget
//!   (with diagnostics, not a panic), drain cleanly on request, and —
//!   under chaos mode — randomly kill its own workers so the recovery
//!   path is exercised by CI rather than discovered in production.
//!
//! The crash-safety contract the supervisor leans on is *checkpoint
//! monotonicity*: workers persist progress via `cord_json::durable`
//! (atomic rename, checksum footer, previous-good fallback), so a
//! worker killed at any instruction leaves a resumable shard behind
//! and a respawn strictly extends it. Chaos kills therefore do not
//! charge the retry budget — they cannot cause livelock, only delay.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod chaos;
pub mod heartbeat;
pub mod plan;
pub mod supervisor;

pub use chaos::{parse_chaos_spec, ChaosConfig, ChaosState};
pub use heartbeat::{read_heartbeat, HeartbeatWriter};
pub use plan::ShardPlan;
pub use supervisor::{
    supervise, ShardReport, ShardStatus, SupervisionOutcome, SupervisorConfig, WorkerHooks,
};
