//! Deterministic shard plans: pure arithmetic from global case index
//! to shard, so sharding can never change what a case computes.
//!
//! The golden rule of the byte-identity guarantee is that a worker
//! never derives anything from *local* position. Every case keeps its
//! campaign-global index; the shard is `index % shards`; and the seed
//! of case `i` is the same golden-ratio mix (`master · φ⁻¹ mod 2⁶⁴ +
//! i`) that `cord_fuzz::case_seed` and the sweep runner's `run_seed`
//! already pin with tests. Merging sorted-by-global-index shard
//! outputs therefore reproduces the serial run byte for byte.
//!
//! Round-robin (rather than contiguous block) assignment is load
//! balancing: expensive cases cluster by index (e.g. the later, larger
//! injection configs of one app), and striding spreads such a cluster
//! over all shards.

use cord_json::{obj, FromJson, Json, JsonError, ToJson};

/// The golden-ratio increment (⌊2⁶⁴/φ⌋, forced odd) — the same
/// constant `cord_fuzz::case_seed` and the sweep `run_seed` use.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the deterministic seed of global case `i` from a master
/// seed. Must stay in lock-step with `cord_fuzz::case_seed` (pinned
/// there by test): shard workers re-derive seeds through the campaign
/// code itself, and this copy lets the planner reason about them
/// without depending on cord-fuzz.
pub fn derived_seed(master_seed: u64, i: usize) -> u64 {
    master_seed
        .wrapping_mul(GOLDEN_GAMMA)
        .wrapping_add(i as u64)
}

/// A deterministic partition of `total` global case indices over
/// `shards` round-robin shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Total global case count being partitioned.
    pub total: usize,
}

impl ShardPlan {
    /// Creates a plan; `shards` is clamped to at least 1.
    pub fn new(shards: usize, total: usize) -> Self {
        ShardPlan {
            shards: shards.max(1),
            total,
        }
    }

    /// The shard that owns global case `index`.
    pub fn shard_of(&self, index: usize) -> usize {
        index % self.shards
    }

    /// Global case indices owned by `shard`, in increasing order.
    pub fn indices(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (shard..self.total).step_by(self.shards)
    }

    /// Number of cases `shard` owns.
    pub fn len_of(&self, shard: usize) -> usize {
        if shard >= self.shards || shard >= self.total {
            0
        } else {
            (self.total - shard).div_ceil(self.shards)
        }
    }
}

impl ToJson for ShardPlan {
    fn to_json(&self) -> Json {
        obj(vec![
            ("shards", (self.shards as u64).to_json()),
            ("total", (self.total as u64).to_json()),
        ])
    }
}

impl FromJson for ShardPlan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ShardPlan {
            shards: (u64::from_json(v.get("shards").unwrap_or(&Json::Null))? as usize).max(1),
            total: u64::from_json(v.get("total").unwrap_or(&Json::Null))? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seed_matches_pinned_campaign_values() {
        // Mirrors cord_fuzz::campaign::case_seeds_are_stable.
        assert_eq!(derived_seed(1, 0), 0x9E37_79B9_7F4A_7C15);
        assert_eq!(derived_seed(1, 1), 0x9E37_79B9_7F4A_7C16);
    }

    #[test]
    fn shards_partition_exactly() {
        for shards in 1..=7 {
            for total in [0usize, 1, 5, 16, 97] {
                let plan = ShardPlan::new(shards, total);
                let mut seen = vec![false; total];
                for s in 0..shards {
                    let mut count = 0;
                    for i in plan.indices(s) {
                        assert_eq!(plan.shard_of(i), s);
                        assert!(!seen[i], "index {i} assigned twice");
                        seen[i] = true;
                        count += 1;
                    }
                    assert_eq!(count, plan.len_of(s), "shards={shards} total={total}");
                }
                assert!(seen.iter().all(|&b| b), "shards={shards} total={total}");
            }
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let plan = ShardPlan::new(1, 10);
        assert_eq!(
            plan.indices(0).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardPlan::new(0, 4).shards, 1);
    }

    #[test]
    fn json_roundtrip() {
        let plan = ShardPlan::new(8, 1000);
        let back = ShardPlan::from_json(&plan.to_json()).expect("roundtrip");
        assert_eq!(back, plan);
    }
}
