//! The coordinator's supervision loop: spawn shard workers, watch
//! exits and heartbeats, retry with capped exponential backoff,
//! abandon gracefully, drain cleanly, and (under chaos mode) kill its
//! own workers.
//!
//! The loop is generic over *what a worker is* via [`WorkerHooks`]:
//! three closures that spawn a worker process for a shard, decide
//! whether a shard's persisted output is complete, and locate the
//! shard's heartbeat file. That keeps this crate free of any
//! simulation knowledge and makes the loop testable with `sh -c`
//! stand-in workers.
//!
//! Failure taxonomy (one poll tick at a time):
//!
//! * **crash** — the worker exited (any status) without its shard
//!   checkpoint showing completion. Charges the retry budget.
//! * **hang** — the worker is alive but its heartbeat counter has not
//!   changed for `heartbeat_timeout`. The supervisor kills it; charges
//!   the retry budget.
//! * **chaos kill** — the supervisor killed the worker itself. Does
//!   *not* charge the retry budget: checkpoints make progress
//!   monotonic, so self-inflicted deaths can delay but never livelock
//!   a campaign (CI always bounds chaos with a kill budget).
//! * **abandonment** — a shard whose charged failures exceed
//!   `max_retries` becomes [`ShardStatus::Abandoned`] with a
//!   diagnostic string; the campaign continues and the merged report
//!   carries the gap rather than the whole run sinking.
//! * **drain** — when the drain flag (or drain file) is raised, all
//!   workers are killed and unfinished shards are reported as
//!   [`ShardStatus::Drained`]; a later invocation resumes them from
//!   their checkpoints.

use crate::chaos::{ChaosConfig, ChaosState};
use crate::heartbeat::read_heartbeat;
use cord_json::{obj, Json, ToJson};
use cord_obs::SupervisionProfile;
use std::io;
use std::path::PathBuf;
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Tuning knobs for one supervision run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Number of shards to supervise (shard ids `0..shards`).
    pub shards: usize,
    /// Maximum concurrently running workers.
    pub max_workers: usize,
    /// How often exits, heartbeats, chaos, and drain are checked.
    pub poll_interval: Duration,
    /// A heartbeat counter unchanged for this long means "hung".
    pub heartbeat_timeout: Duration,
    /// Charged failures allowed per shard before abandonment.
    pub max_retries: u32,
    /// First retry backoff; doubles per charged failure.
    pub backoff_base: Duration,
    /// Upper bound on the backoff.
    pub backoff_cap: Duration,
    /// Chaos mode, if any.
    pub chaos: Option<ChaosConfig>,
    /// Existence of this file requests a drain (SIGTERM stand-in for
    /// an environment without signal handling).
    pub drain_file: Option<PathBuf>,
}

impl SupervisorConfig {
    /// A config with sensible defaults for `shards` shards.
    pub fn new(shards: usize) -> Self {
        SupervisorConfig {
            shards,
            max_workers: shards.max(1),
            poll_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_secs(30),
            max_retries: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            chaos: None,
            drain_file: None,
        }
    }

    fn backoff_for(&self, charged: u32) -> Duration {
        let factor = 1u32 << charged.min(16).saturating_sub(1);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Terminal state of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// The shard's output is complete.
    Completed,
    /// Retry budget exhausted; `reason` is the diagnostic trail.
    Abandoned {
        /// Human-readable diagnosis (last failures, exit statuses).
        reason: String,
    },
    /// Supervision was drained before the shard finished; resumable.
    Drained,
}

impl ShardStatus {
    /// Stable lower-case tag (`"completed"` / `"abandoned"` /
    /// `"drained"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ShardStatus::Completed => "completed",
            ShardStatus::Abandoned { .. } => "abandoned",
            ShardStatus::Drained => "drained",
        }
    }
}

/// Outcome of one shard across all its attempts.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard id.
    pub shard: usize,
    /// Terminal status.
    pub status: ShardStatus,
    /// Worker processes spawned for this shard.
    pub attempts: u32,
    /// Failures that charged the retry budget (crashes + hangs).
    pub retries_charged: u32,
    /// Times this shard's worker was chaos-killed.
    pub chaos_kills: u64,
    /// Times this shard's worker was killed for a stale heartbeat.
    pub heartbeat_misses: u64,
    /// Total worker wall-clock across attempts, in seconds.
    pub wall_s: f64,
}

impl ToJson for ShardReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("shard", (self.shard as u64).to_json()),
            ("status", Json::Str(self.status.kind().to_owned())),
        ];
        if let ShardStatus::Abandoned { reason } = &self.status {
            fields.push(("reason", Json::Str(reason.clone())));
        }
        fields.push(("attempts", u64::from(self.attempts).to_json()));
        fields.push(("retries_charged", u64::from(self.retries_charged).to_json()));
        fields.push(("chaos_kills", self.chaos_kills.to_json()));
        fields.push(("heartbeat_misses", self.heartbeat_misses.to_json()));
        fields.push(("wall_s", self.wall_s.to_json()));
        obj(fields)
    }
}

/// Everything a supervision run produced.
#[derive(Debug, Clone)]
pub struct SupervisionOutcome {
    /// One report per shard, in shard order.
    pub reports: Vec<ShardReport>,
    /// Aggregated supervision metrics (`shard.*`).
    pub profile: SupervisionProfile,
    /// `true` when the run ended because drain was requested.
    pub drained: bool,
}

impl SupervisionOutcome {
    /// `true` iff every shard completed.
    pub fn all_completed(&self) -> bool {
        self.reports
            .iter()
            .all(|r| r.status == ShardStatus::Completed)
    }

    /// Shard ids that were abandoned.
    pub fn abandoned_shards(&self) -> Vec<usize> {
        self.reports
            .iter()
            .filter(|r| matches!(r.status, ShardStatus::Abandoned { .. }))
            .map(|r| r.shard)
            .collect()
    }
}

/// The environment-specific half of supervision: how to start a
/// worker, how to recognise a finished shard, where its heartbeat is.
pub struct WorkerHooks<'a> {
    /// Spawns a worker for `(shard, attempt)`. The hook owns stdio
    /// redirection (per-shard log files and the like).
    pub spawn: Box<dyn FnMut(usize, u32) -> io::Result<Child> + 'a>,
    /// `true` when the shard's persisted output is complete. Must be
    /// based on durable state (the shard checkpoint), not on worker
    /// exit codes — a worker can die *after* finishing.
    pub is_done: Box<dyn FnMut(usize) -> bool + 'a>,
    /// The shard's heartbeat file, or `None` to disable hang
    /// detection for it.
    pub heartbeat_path: Box<dyn FnMut(usize) -> Option<PathBuf> + 'a>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillCause {
    Chaos,
    Hang,
    Drain,
}

struct Running {
    child: Child,
    started: Instant,
    last_beat: Option<u64>,
    last_change: Instant,
    kill_cause: Option<KillCause>,
}

enum Slot {
    /// Waiting to (re)spawn once `eligible_at` passes.
    Pending {
        eligible_at: Instant,
    },
    Running(Running),
    Done(ShardStatus),
}

struct ShardState {
    slot: Slot,
    attempts: u32,
    retries_charged: u32,
    chaos_kills: u64,
    heartbeat_misses: u64,
    wall_s: f64,
    last_failure: String,
}

/// Runs the supervision loop to completion (all shards terminal) or
/// drain. `drain` may be flipped from another thread; the
/// `drain_file` in the config serves the same purpose across
/// processes.
pub fn supervise(
    cfg: &SupervisorConfig,
    hooks: &mut WorkerHooks<'_>,
    drain: &AtomicBool,
) -> SupervisionOutcome {
    let mut chaos = cfg.chaos.map(ChaosState::new);
    let mut profile = SupervisionProfile::default();
    let now = Instant::now();
    let mut shards: Vec<ShardState> = (0..cfg.shards)
        .map(|_| ShardState {
            slot: Slot::Pending { eligible_at: now },
            attempts: 0,
            retries_charged: 0,
            chaos_kills: 0,
            heartbeat_misses: 0,
            wall_s: 0.0,
            last_failure: String::new(),
        })
        .collect();
    let mut drained = false;

    loop {
        let drain_requested =
            drain.load(Ordering::Relaxed) || cfg.drain_file.as_ref().is_some_and(|p| p.exists());
        if drain_requested {
            drained = true;
            for (s, st) in shards.iter_mut().enumerate() {
                let started = if let Slot::Running(r) = &mut st.slot {
                    r.kill_cause = Some(KillCause::Drain);
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    Some(r.started)
                } else {
                    None
                };
                if let Some(started) = started {
                    record_wall(&mut profile, s, st, started);
                    st.slot = if (hooks.is_done)(s) {
                        Slot::Done(ShardStatus::Completed)
                    } else {
                        Slot::Done(ShardStatus::Drained)
                    };
                }
                if matches!(st.slot, Slot::Pending { .. }) {
                    st.slot = Slot::Done(if (hooks.is_done)(s) {
                        ShardStatus::Completed
                    } else {
                        ShardStatus::Drained
                    });
                }
            }
            break;
        }

        // Reap exits and police heartbeats/chaos on running workers.
        for (s, st) in shards.iter_mut().enumerate() {
            let Slot::Running(r) = &mut st.slot else {
                continue;
            };
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    let started = r.started;
                    let cause = r.kill_cause;
                    record_wall(&mut profile, s, st, started);
                    if (hooks.is_done)(s) {
                        st.slot = Slot::Done(ShardStatus::Completed);
                        continue;
                    }
                    // Failure: classify and decide charge.
                    let charge = match cause {
                        Some(KillCause::Chaos) => {
                            st.chaos_kills += 1;
                            profile.chaos_kills += 1;
                            st.last_failure = "chaos kill".to_owned();
                            false
                        }
                        Some(KillCause::Hang) => {
                            st.heartbeat_misses += 1;
                            profile.heartbeat_misses += 1;
                            st.last_failure =
                                format!("heartbeat stale for {:?} (killed)", cfg.heartbeat_timeout);
                            true
                        }
                        Some(KillCause::Drain) => unreachable!("drain handled above"),
                        None => {
                            st.last_failure =
                                format!("worker exited ({status}) without completing its shard");
                            true
                        }
                    };
                    if charge {
                        st.retries_charged += 1;
                    }
                    if st.retries_charged > cfg.max_retries {
                        profile.abandoned += 1;
                        st.slot = Slot::Done(ShardStatus::Abandoned {
                            reason: format!(
                                "gave up after {} attempts ({} charged of {} allowed): {}",
                                st.attempts,
                                st.retries_charged,
                                cfg.max_retries + 1,
                                st.last_failure
                            ),
                        });
                    } else {
                        profile.retries += 1;
                        let backoff = if charge {
                            cfg.backoff_for(st.retries_charged)
                        } else {
                            Duration::ZERO
                        };
                        profile.backoff_ms += backoff.as_millis() as u64;
                        st.slot = Slot::Pending {
                            eligible_at: Instant::now() + backoff,
                        };
                    }
                }
                Ok(None) => {
                    // Still running: heartbeat staleness, then chaos.
                    if r.kill_cause.is_none() {
                        if let Some(hb) = (hooks.heartbeat_path)(s) {
                            let beat = read_heartbeat(&hb);
                            if beat != r.last_beat {
                                r.last_beat = beat;
                                r.last_change = Instant::now();
                            } else if r.last_change.elapsed() > cfg.heartbeat_timeout {
                                r.kill_cause = Some(KillCause::Hang);
                                let _ = r.child.kill();
                            }
                        }
                    }
                    if r.kill_cause.is_none() {
                        if let Some(c) = chaos.as_mut() {
                            if c.should_kill() {
                                r.kill_cause = Some(KillCause::Chaos);
                                let _ = r.child.kill();
                            }
                        }
                    }
                }
                Err(e) => {
                    // try_wait failing is exotic (EINTR-ish); treat as
                    // a charged failure rather than spinning forever.
                    let started = r.started;
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    record_wall(&mut profile, s, st, started);
                    st.retries_charged += 1;
                    st.last_failure = format!("wait failed: {e}");
                    st.slot = if st.retries_charged > cfg.max_retries {
                        profile.abandoned += 1;
                        Slot::Done(ShardStatus::Abandoned {
                            reason: st.last_failure.clone(),
                        })
                    } else {
                        profile.retries += 1;
                        Slot::Pending {
                            eligible_at: Instant::now() + cfg.backoff_for(st.retries_charged),
                        }
                    };
                }
            }
        }

        // Spawn eligible pending shards into free slots.
        let mut running = shards
            .iter()
            .filter(|st| matches!(st.slot, Slot::Running(_)))
            .count();
        for (s, st) in shards.iter_mut().enumerate() {
            if running >= cfg.max_workers {
                break;
            }
            let Slot::Pending { eligible_at } = st.slot else {
                continue;
            };
            if eligible_at > Instant::now() {
                continue;
            }
            // Resume fast path: a shard whose checkpoint is already
            // complete (earlier run, or an orphaned worker that
            // finished after its coordinator died) needs no worker.
            if (hooks.is_done)(s) {
                st.slot = Slot::Done(ShardStatus::Completed);
                continue;
            }
            st.attempts += 1;
            match (hooks.spawn)(s, st.attempts - 1) {
                Ok(child) => {
                    let now = Instant::now();
                    st.slot = Slot::Running(Running {
                        child,
                        started: now,
                        last_beat: None,
                        last_change: now,
                        kill_cause: None,
                    });
                    running += 1;
                }
                Err(e) => {
                    st.retries_charged += 1;
                    st.last_failure = format!("spawn failed: {e}");
                    if st.retries_charged > cfg.max_retries {
                        profile.abandoned += 1;
                        st.slot = Slot::Done(ShardStatus::Abandoned {
                            reason: st.last_failure.clone(),
                        });
                    } else {
                        profile.retries += 1;
                        let backoff = cfg.backoff_for(st.retries_charged);
                        profile.backoff_ms += backoff.as_millis() as u64;
                        st.slot = Slot::Pending {
                            eligible_at: Instant::now() + backoff,
                        };
                    }
                }
            }
        }

        if shards.iter().all(|st| matches!(st.slot, Slot::Done(_))) {
            break;
        }
        std::thread::sleep(cfg.poll_interval);
    }

    let reports = shards
        .into_iter()
        .enumerate()
        .map(|(s, st)| ShardReport {
            shard: s,
            status: match st.slot {
                Slot::Done(status) => status,
                // Unreachable in practice; defensive for drain races.
                _ => ShardStatus::Drained,
            },
            attempts: st.attempts,
            retries_charged: st.retries_charged,
            chaos_kills: st.chaos_kills,
            heartbeat_misses: st.heartbeat_misses,
            wall_s: st.wall_s,
        })
        .collect();
    SupervisionOutcome {
        reports,
        profile,
        drained,
    }
}

fn record_wall(
    profile: &mut SupervisionProfile,
    shard: usize,
    st: &mut ShardState,
    started: Instant,
) {
    let secs = started.elapsed().as_secs_f64();
    st.wall_s += secs;
    profile.record_shard_wall(&format!("shard-{shard}"), secs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;
    use std::process::{Command, Stdio};
    use std::sync::atomic::AtomicBool;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cord-sup-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("temp dir");
        d
    }

    fn sh(script: String) -> io::Result<Child> {
        Command::new("sh")
            .arg("-c")
            .arg(script)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    }

    fn fast_cfg(shards: usize) -> SupervisorConfig {
        let mut cfg = SupervisorConfig::new(shards);
        cfg.poll_interval = Duration::from_millis(20);
        cfg.backoff_base = Duration::from_millis(10);
        cfg.backoff_cap = Duration::from_millis(50);
        cfg
    }

    fn done_marker(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("done-{shard}"))
    }

    #[test]
    fn clean_workers_complete() {
        let dir = tmpdir("clean");
        let cfg = fast_cfg(3);
        let mut hooks = WorkerHooks {
            spawn: Box::new(|s, _a| sh(format!("touch {}", done_marker(&dir, s).display()))),
            is_done: Box::new(|s| done_marker(&dir, s).exists()),
            heartbeat_path: Box::new(|_| None),
        };
        let out = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
        assert!(out.all_completed(), "{:?}", out.reports);
        assert!(!out.drained);
        assert_eq!(out.profile.retries, 0);
        assert_eq!(out.profile.shard_wall.count, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exit_zero_without_done_is_charged_and_abandoned() {
        let dir = tmpdir("abandon");
        let mut cfg = fast_cfg(1);
        cfg.max_retries = 1;
        let mut hooks = WorkerHooks {
            spawn: Box::new(|_s, _a| sh("true".to_owned())),
            is_done: Box::new(|_s| false),
            heartbeat_path: Box::new(|_| None),
        };
        let out = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
        let r = &out.reports[0];
        assert_eq!(r.status.kind(), "abandoned");
        assert_eq!(r.attempts, 2, "{r:?}");
        assert_eq!(r.retries_charged, 2);
        let ShardStatus::Abandoned { reason } = &r.status else {
            panic!("not abandoned: {r:?}");
        };
        assert!(reason.contains("without completing"), "{reason}");
        assert_eq!(out.profile.abandoned, 1);
        assert_eq!(out.profile.retries, 1); // one respawn before giving up
        assert!(out.profile.backoff_ms > 0);
        assert!(!out.all_completed());
        assert_eq!(out.abandoned_shards(), vec![0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_worker_is_killed_and_retried() {
        let dir = tmpdir("hang");
        let mut cfg = fast_cfg(1);
        cfg.heartbeat_timeout = Duration::from_millis(100);
        let hb = dir.join("hb");
        fs::write(&hb, "beat=0\n").expect("seed heartbeat");
        let dir2 = dir.clone();
        let mut hooks = WorkerHooks {
            spawn: Box::new(move |s, attempt| {
                if attempt == 0 {
                    // Hangs: never beats.
                    sh("sleep 30".to_owned())
                } else {
                    sh(format!("touch {}", done_marker(&dir2, s).display()))
                }
            }),
            is_done: Box::new(|s| done_marker(&dir, s).exists()),
            heartbeat_path: Box::new(move |_| Some(hb.clone())),
        };
        let out = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
        let r = &out.reports[0];
        assert_eq!(r.status, ShardStatus::Completed, "{r:?}");
        assert_eq!(r.heartbeat_misses, 1);
        assert_eq!(r.attempts, 2);
        assert_eq!(out.profile.heartbeat_misses, 1);
        assert_eq!(out.profile.retries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_kills_workers_and_is_resumable_state() {
        let dir = tmpdir("drain");
        let cfg = fast_cfg(2);
        let drain = AtomicBool::new(false);
        let mut hooks = WorkerHooks {
            spawn: Box::new(|_s, _a| sh("sleep 30".to_owned())),
            is_done: Box::new(|_s| false),
            heartbeat_path: Box::new(|_| None),
        };
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(150));
                drain.store(true, Ordering::Relaxed);
            });
            let out = supervise(&cfg, &mut hooks, &drain);
            assert!(out.drained);
            for r in &out.reports {
                assert_eq!(r.status, ShardStatus::Drained, "{r:?}");
            }
        });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_file_requests_drain() {
        let dir = tmpdir("drainfile");
        let mut cfg = fast_cfg(1);
        let flag = dir.join("DRAIN");
        cfg.drain_file = Some(flag.clone());
        fs::write(&flag, "").expect("raise drain");
        let mut hooks = WorkerHooks {
            spawn: Box::new(|_s, _a| sh("sleep 30".to_owned())),
            is_done: Box::new(|_s| false),
            heartbeat_path: Box::new(|_| None),
        };
        let out = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
        assert!(out.drained);
        assert_eq!(out.reports[0].status, ShardStatus::Drained);
        assert_eq!(out.reports[0].attempts, 0, "drain beat the first spawn");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_kills_do_not_charge_retries_and_campaign_recovers() {
        let dir = tmpdir("chaos");
        let mut cfg = fast_cfg(1);
        cfg.max_retries = 0; // any *charged* failure would abandon
        cfg.chaos = Some(ChaosConfig {
            kill_rate: 1.0,
            budget: Some(2),
            seed: 1,
        });
        let mut hooks = WorkerHooks {
            spawn: Box::new(|s, _a| {
                sh(format!(
                    "sleep 0.3 && touch {}",
                    done_marker(&dir, s).display()
                ))
            }),
            is_done: Box::new(|s| done_marker(&dir, s).exists()),
            heartbeat_path: Box::new(|_| None),
        };
        let out = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
        let r = &out.reports[0];
        assert_eq!(r.status, ShardStatus::Completed, "{r:?}");
        assert_eq!(r.chaos_kills, 2);
        assert_eq!(r.retries_charged, 0);
        assert_eq!(r.attempts, 3);
        assert_eq!(out.profile.chaos_kills, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn already_done_shards_complete_without_spawning() {
        let dir = tmpdir("resume");
        let cfg = fast_cfg(2);
        fs::write(done_marker(&dir, 0), "").expect("pre-complete shard 0");
        let dir2 = dir.clone();
        let mut hooks = WorkerHooks {
            spawn: Box::new(move |s, _a| sh(format!("touch {}", done_marker(&dir2, s).display()))),
            is_done: Box::new(|s| done_marker(&dir, s).exists()),
            heartbeat_path: Box::new(|_| None),
        };
        let out = supervise(&cfg, &mut hooks, &AtomicBool::new(false));
        assert!(out.all_completed());
        assert_eq!(
            out.reports[0].attempts, 0,
            "resumed shard spawned no worker"
        );
        assert_eq!(out.reports[1].attempts, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
