//! Shared-bus timing with FIFO arbitration and contention accounting.
//!
//! The machine has three buses (§3.1):
//!
//! * the on-chip **data bus** (128-bit, 1 GHz) that carries line
//!   transfers between L2 caches and to/from the memory controller;
//! * the on-chip **address/timestamp bus**, which "is ordinarily less
//!   occupied than the data bus, so it runs at half the frequency of the
//!   data bus" (§4.1) — every coherence transaction posts its address
//!   here, and CORD's race-check requests and memory-timestamp updates
//!   ride *only* here ("our race check requests only use the
//!   less-utilized address and timestamp buses and cause no data bus
//!   contention", §2.7.2);
//! * the off-chip **memory bus** (quad-pumped 64-bit, 200 MHz).
//!
//! Each bus is a single resource with a `free_at` horizon: a transaction
//! arriving at `t` starts at `max(t, free_at)`, occupies the bus for its
//! occupancy, and the difference is recorded as contention. This is the
//! mechanism by which CORD's extra address-bus traffic turns into the
//! (small) execution-time overhead of Figure 11 — e.g. cholesky's
//! frequent synchronization causes "bursts of timestamp removals and race
//! check requests", raising address-bus contention.

/// A single shared bus resource.
#[derive(Debug, Clone, Default)]
pub struct Bus {
    free_at: u64,
    busy_cycles: u64,
    contention_cycles: u64,
    transactions: u64,
}

impl Bus {
    /// A bus that is free at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the bus at time `now` for `occupancy` cycles; returns the
    /// cycle at which the transaction *starts* (≥ `now`).
    pub fn acquire(&mut self, now: u64, occupancy: u64) -> u64 {
        let start = self.free_at.max(now);
        self.contention_cycles += start - now;
        self.free_at = start + occupancy;
        self.busy_cycles += occupancy;
        self.transactions += 1;
        start
    }

    /// Total cycles the bus spent transferring.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total cycles requesters spent waiting for the bus.
    pub fn contention_cycles(&self) -> u64 {
        self.contention_cycles
    }

    /// Number of transactions served.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// The cycle at which the bus next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }
}

/// The machine's buses.
#[derive(Debug, Clone, Default)]
pub struct Buses {
    /// On-chip data bus.
    pub data: Bus,
    /// On-chip address bus (coherence transactions: misses, upgrades).
    pub addr: Bus,
    /// On-chip timestamp bus: CORD's race-check requests and
    /// memory-timestamp update broadcasts ride here (§2.7.2: they "only
    /// use the less-utilized address and timestamp buses and cause no
    /// data bus contention"). Demand misses are prioritized onto the
    /// address bus, so check traffic slows the processor only through
    /// the retirement-delay mechanism of §3.1.
    pub ts: Bus,
    /// Off-chip memory bus.
    pub mem: Bus,
}

impl Buses {
    /// All buses free at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transaction_starts_immediately() {
        let mut b = Bus::new();
        assert_eq!(b.acquire(100, 16), 100);
        assert_eq!(b.busy_cycles(), 16);
        assert_eq!(b.contention_cycles(), 0);
        assert_eq!(b.free_at(), 116);
    }

    #[test]
    fn back_to_back_transactions_queue() {
        let mut b = Bus::new();
        b.acquire(0, 16);
        // Second request at cycle 4 must wait until 16.
        let start = b.acquire(4, 16);
        assert_eq!(start, 16);
        assert_eq!(b.contention_cycles(), 12);
        assert_eq!(b.transactions(), 2);
    }

    #[test]
    fn idle_gap_resets_waiting() {
        let mut b = Bus::new();
        b.acquire(0, 8);
        let start = b.acquire(100, 8);
        assert_eq!(start, 100);
        assert_eq!(b.contention_cycles(), 0);
        assert_eq!(b.busy_cycles(), 16);
    }

    #[test]
    fn buses_are_independent() {
        let mut buses = Buses::new();
        buses.data.acquire(0, 16);
        assert_eq!(buses.addr.acquire(0, 8), 0);
        assert_eq!(buses.mem.acquire(0, 40), 0);
    }
}
